//! A vendored miniature benchmark harness exposing the subset of the
//! [criterion](https://docs.rs/criterion) API this workspace uses.
//!
//! The workspace builds offline, so the real criterion crate cannot be
//! fetched.  This harness genuinely measures wall-clock time: every benchmark
//! runs a warm-up phase, sizes iteration batches so one sample costs at least
//! ~1 ms, collects up to `sample_size` samples within `measurement_time`, and
//! reports the minimum / mean / maximum per-iteration time on stdout in a
//! `name  time: [min mean max]` format.
//!
//! Supported surface: [`Criterion::benchmark_group`], [`BenchmarkGroup`]
//! configuration (`sample_size`, `measurement_time`, `warm_up_time`),
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros.

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver; collects and prints measurements.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
    default_warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            default_measurement_time: Duration::from_secs(2),
            default_warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// No-op compatibility hook (the real criterion parses CLI flags here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        let (sample_size, measurement_time, warm_up_time) = (
            self.default_sample_size,
            self.default_measurement_time,
            self.default_warm_up_time,
        );
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            measurement_time,
            warm_up_time,
        }
    }
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the measurement-phase duration budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Benchmarks a closure against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints a trailing newline for readability).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Collected `(iterations, elapsed)` samples.
    samples: Vec<(u64, Duration)>,
}

impl Bencher {
    /// Runs the benchmarked routine repeatedly and records samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run until the warm-up budget is spent, measuring the cost
        // of one iteration on the way.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size batches so one sample costs at least ~1 ms.
        let batch = ((1e-3 / per_iter.max(1e-9)).ceil() as u64).max(1);
        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push((batch, start.elapsed()));
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id}  (no samples)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|(n, d)| d.as_secs_f64() / *n as f64)
            .collect();
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{group}/{id}  time: [{} {} {}]  ({} samples)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            per_iter.len()
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.3} s", seconds)
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` function, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_runs_and_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test_group");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = 0u64;
        group.bench_function("trivial", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("inputs");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let data = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", data.len()), &data, |b, d| {
            b.iter(|| d.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn fmt_time_units() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(5.0).contains(" s"));
    }
}
