//! A vendored, dependency-free subset of the [rayon](https://docs.rs/rayon)
//! API implemented on `std::thread::scope`.
//!
//! This workspace builds in fully offline environments, so the real rayon
//! crate cannot be fetched; this crate provides the small slice of its API the
//! workspace actually uses, with genuine data parallelism:
//!
//! * [`join`] — potentially-parallel execution of two closures,
//! * [`prelude`] — `par_iter` / `into_par_iter` / `par_chunks_mut` style
//!   adapters over slices, vectors and ranges (eager, order-preserving),
//! * [`current_num_threads`] — the configured worker count.
//!
//! # Thread count
//!
//! The worker count is read once from the `RAYON_NUM_THREADS` environment
//! variable (like rayon's global pool) and defaults to
//! [`std::thread::available_parallelism`].  Setting `RAYON_NUM_THREADS=1`
//! makes every operation run sequentially on the calling thread.
//!
//! A global "extra thread" budget of `current_num_threads() - 1` bounds the
//! total number of worker threads alive at any moment, so nested parallelism
//! (e.g. parallel recursive bisection inside a parallel instance sweep)
//! degrades gracefully to sequential execution instead of oversubscribing.
//!
//! # Determinism
//!
//! All adapters preserve input order and assign work by position, never by
//! arrival time, so results are identical for every thread count.

use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::OnceLock;

/// The number of worker threads (`RAYON_NUM_THREADS`, defaulting to the
/// available parallelism). Always at least 1.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

fn budget() -> &'static AtomicIsize {
    static B: OnceLock<AtomicIsize> = OnceLock::new();
    B.get_or_init(|| AtomicIsize::new(current_num_threads() as isize - 1))
}

/// Tries to reserve `want` extra worker threads; returns how many were
/// granted (possibly 0).
fn acquire_threads(want: usize) -> usize {
    let b = budget();
    let mut granted = 0usize;
    while granted < want {
        let cur = b.load(Ordering::Relaxed);
        if cur <= 0 {
            break;
        }
        if b.compare_exchange(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            granted += 1;
        }
    }
    granted
}

fn release_threads(n: usize) {
    if n > 0 {
        budget().fetch_add(n as isize, Ordering::Relaxed);
    }
}

/// Returns the reserved threads to the budget on drop, so a panicking
/// closure inside a parallel region cannot permanently drain the budget
/// (which would silently degrade all later parallel calls to sequential).
struct BudgetGuard(usize);

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        release_threads(self.0);
    }
}

/// Runs `oper_a` and `oper_b`, potentially in parallel, and returns both
/// results. Mirrors `rayon::join`: `oper_b` runs on a second thread when one
/// is available, otherwise both run sequentially on the calling thread.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if acquire_threads(1) == 1 {
        let _guard = BudgetGuard(1);
        std::thread::scope(|scope| {
            let handle = scope.spawn(oper_b);
            let ra = oper_a();
            let rb = handle.join().expect("rayon::join worker panicked");
            (ra, rb)
        })
    } else {
        (oper_a(), oper_b())
    }
}

/// Applies `f` to every element of `items` using up to
/// [`current_num_threads`] threads, preserving order.
fn parallel_map_vec<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let workers = acquire_threads((current_num_threads() - 1).min(n - 1));
    if workers == 0 {
        return items.into_iter().map(f).collect();
    }
    let _guard = BudgetGuard(workers);
    let chunks = split_owned(items, workers + 1);
    let f = &f;
    let mut out: Vec<Vec<U>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(chunks.len());
        let mut iter = chunks.into_iter();
        let first = iter.next().expect("at least one chunk");
        for chunk in iter {
            handles.push(scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()));
        }
        let mut results = vec![first.into_iter().map(f).collect::<Vec<U>>()];
        for h in handles {
            results.push(h.join().expect("parallel map worker panicked"));
        }
        results
    });
    // the first chunk ran on the calling thread but is first in input order
    let mut flat = Vec::with_capacity(out.iter().map(Vec::len).sum());
    for v in &mut out {
        flat.append(v);
    }
    flat
}

/// Splits a vector into at most `parts` contiguous owned chunks.
fn split_owned<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    // split from the back so each split_off is O(chunk)
    let mut sizes: Vec<usize> = (0..parts).map(|i| base + usize::from(i < rem)).collect();
    while sizes.len() > 1 {
        let last = sizes.pop().expect("non-empty");
        let at = items.len() - last;
        out.push(items.split_off(at));
    }
    out.push(items);
    out.reverse();
    out
}

/// An eager, order-preserving parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: parallel_map_vec(self.items, f),
        }
    }

    /// Applies `f` (returning a serial iterator) to every item in parallel
    /// and concatenates the results in input order.
    pub fn flat_map_iter<U, I, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Sync,
    {
        let nested = parallel_map_vec(self.items, |t| f(t).into_iter().collect::<Vec<U>>());
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }

    /// Keeps the items for which `f` returns true.
    pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T> {
        let nested = parallel_map_vec(self.items, |t| if f(&t) { Some(t) } else { None });
        ParIter {
            items: nested.into_iter().flatten().collect(),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map_vec(self.items, |t| {
            f(t);
        });
    }

    /// Pairs every item with its position (order-preserving).
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Collects the items into any `FromIterator` collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A parallel iterator over an index range, chunked without materialising the
/// indices.
pub struct ParRange {
    start: usize,
    end: usize,
}

impl ParRange {
    /// Applies `f` to every index in parallel, preserving order.
    pub fn map<U: Send, F: Fn(usize) -> U + Sync>(self, f: F) -> ParIter<U> {
        let n = self.end.saturating_sub(self.start);
        if n <= 1 {
            return ParIter {
                items: (self.start..self.end).map(f).collect(),
            };
        }
        let workers = acquire_threads((current_num_threads() - 1).min(n - 1));
        if workers == 0 {
            return ParIter {
                items: (self.start..self.end).map(f).collect(),
            };
        }
        let _guard = BudgetGuard(workers);
        let parts = workers + 1;
        let base = n / parts;
        let rem = n % parts;
        let mut bounds = Vec::with_capacity(parts + 1);
        let mut acc = self.start;
        bounds.push(acc);
        for i in 0..parts {
            acc += base + usize::from(i < rem);
            bounds.push(acc);
        }
        let f = &f;
        let mut out: Vec<Vec<U>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(parts - 1);
            for w in 1..parts {
                let (lo, hi) = (bounds[w], bounds[w + 1]);
                handles.push(scope.spawn(move || (lo..hi).map(f).collect::<Vec<U>>()));
            }
            let mut results = vec![(bounds[0]..bounds[1]).map(f).collect::<Vec<U>>()];
            for h in handles {
                results.push(h.join().expect("parallel range worker panicked"));
            }
            results
        });
        let mut flat = Vec::with_capacity(n);
        for v in &mut out {
            flat.append(v);
        }
        ParIter { items: flat }
    }

    /// Runs `f` on every index in parallel.
    pub fn for_each<F: Fn(usize) + Sync>(self, f: F) {
        self.map(|i| {
            f(i);
        });
    }
}

/// Conversion into a parallel iterator (owned items).
pub trait IntoParallelIterator {
    /// The produced parallel iterator.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end,
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowing conversion into a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Send + 'a;
    /// Converts `&self` into a parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Parallel operations over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into contiguous chunks of at most `chunk_size`
    /// elements and exposes them as a parallel iterator, preserving order.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Glob-import the adapter traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn nested_joins_do_not_deadlock() {
        let (a, (b, c)) = join(|| join(|| 1, || 2), || join(|| 3, || 4));
        assert_eq!((a, (b, c)), ((1, 2), (3, 4)));
    }

    #[test]
    fn range_map_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_flat_map_preserves_order() {
        let v = vec![1usize, 2, 3];
        let out: Vec<usize> = v.par_iter().flat_map_iter(|&x| vec![x, x * 10]).collect();
        assert_eq!(out, vec![1, 10, 2, 20, 3, 30]);
    }

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut v = vec![0u32; 97];
        v.par_chunks_mut(10).for_each(|chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn filter_preserves_order() {
        let out: Vec<usize> = (0..100)
            .into_par_iter()
            .map(|i| i)
            .filter(|&i| i % 7 == 0)
            .collect();
        assert_eq!(out, (0..100).filter(|i| i % 7 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn split_owned_covers_all_items() {
        let chunks = split_owned((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(chunks.concat(), (0..10).collect::<Vec<_>>());
        let chunks = split_owned(Vec::<u8>::new(), 4);
        assert_eq!(chunks.len(), 1);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn budget_recovers_after_a_panicking_closure() {
        // a panic inside a parallel region must not leak reserved threads
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            (0..64)
                .into_par_iter()
                .map(|i| if i == 32 { panic!("boom") } else { i })
                .collect::<Vec<_>>()
        }));
        assert!(result.is_err());
        // other tests of this binary may hold budget concurrently; wait for
        // quiescence instead of asserting an instantaneous value
        let expected = current_num_threads() as isize - 1;
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while budget().load(Ordering::Relaxed) != expected && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(
            budget().load(Ordering::Relaxed),
            expected,
            "thread budget must be fully restored after a panic"
        );
    }
}
