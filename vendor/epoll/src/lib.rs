//! Minimal `epoll(7)` binding, vendored for the offline build.
//!
//! The workspace's vendoring policy is dependency-free API subsets: std has
//! no readiness API and the `libc`/`mio` crates are unavailable offline, so
//! this crate declares the three `epoll` syscall wrappers directly (std
//! already links libc) and wraps them in a small safe-ish interface sized
//! for `stencil-serve`'s needs:
//!
//! * [`Epoll::new`] — one epoll instance (`EPOLL_CLOEXEC`).
//! * [`Epoll::add`] / [`Epoll::rearm`] / [`Epoll::delete`] — register a file
//!   descriptor for *readable* readiness, level-triggered, optionally
//!   one-shot (`EPOLLONESHOT`): the event fires once and the registration
//!   disarms until the owner re-arms it, which is exactly the hand-off a
//!   worker pool needs (one worker holds a connection at a time; re-arming
//!   re-polls readiness level-style, so bytes that arrived in between are
//!   never lost).
//! * [`Epoll::wait`] — blocks until events arrive or the timeout elapses,
//!   filling a caller-owned buffer of [`Event`]s.
//!
//! On non-Linux targets every constructor returns
//! [`std::io::ErrorKind::Unsupported`] and the caller is expected to fall
//! back to its portable polling path; the API still compiles so callers
//! need no `cfg` of their own.

#![deny(missing_docs)]

use std::io;

/// Raw file descriptor, aliased locally so callers on non-Unix targets can
/// still name the type without `std::os::unix`.
pub type RawFd = i32;

/// One readiness event returned by [`Epoll::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The `u64` token the file descriptor was registered with.
    pub token: u64,
    /// Raw `EPOLL*` event bits (`EPOLLIN`, `EPOLLHUP`, `EPOLLERR`, …).
    /// Hang-ups and errors are reported even when only `EPOLLIN` was
    /// requested; readers should simply attempt the read and let it fail.
    pub events: u32,
}

/// `EPOLLIN`: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `EPOLLERR`: error condition (always reported).
pub const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP`: hang-up (always reported).
pub const EPOLLHUP: u32 = 0x010;
/// `EPOLLONESHOT`: disarm the registration after one reported event.
pub const EPOLLONESHOT: u32 = 1 << 30;

#[cfg(target_os = "linux")]
mod sys {
    use super::RawFd;

    pub const EPOLL_CLOEXEC: i32 = 0x80000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    /// Kernel ABI of `struct epoll_event`.  On x86 and x86-64 the kernel
    /// declares it packed; on every other architecture it has natural
    /// alignment — mirroring glibc/libc exactly.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> RawFd;
        pub fn epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(
            epfd: RawFd,
            events: *mut EpollEvent,
            maxevents: i32,
            timeout: i32,
        ) -> i32;
        pub fn close(fd: RawFd) -> i32;
    }
}

/// An epoll instance.  Closed on drop.
#[derive(Debug)]
pub struct Epoll {
    #[cfg_attr(not(target_os = "linux"), allow(dead_code))]
    fd: RawFd,
}

#[cfg(target_os = "linux")]
impl Epoll {
    /// Creates an epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Epoll> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` for readable readiness under `token`.  With `oneshot`
    /// the registration disarms after the first reported event until
    /// [`Epoll::rearm`] is called.
    pub fn add(&self, fd: RawFd, token: u64, oneshot: bool) -> io::Result<()> {
        let flags = EPOLLIN | if oneshot { EPOLLONESHOT } else { 0 };
        self.ctl(sys::EPOLL_CTL_ADD, fd, flags, token)
    }

    /// Re-arms a one-shot registration that has fired (or not — re-arming an
    /// armed registration just refreshes it).  Level-triggered: if `fd` is
    /// already readable, the event fires on the next [`Epoll::wait`].
    pub fn rearm(&self, fd: RawFd, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, EPOLLIN | EPOLLONESHOT, token)
    }

    /// Removes `fd` from the interest list.  Closing the fd removes it
    /// implicitly; this exists for callers that keep the fd open.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until at least one registered fd has events, the timeout
    /// elapses (`Ok(0)`), or a signal interrupts the wait (`Ok(0)` as well —
    /// callers loop anyway).  `timeout_ms < 0` blocks indefinitely.  Fills
    /// `events` (cleared first) up to its capacity, at least one slot.
    pub fn wait(&self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        events.clear();
        let cap = events.capacity().clamp(1, 1024) as i32;
        let mut raw: [sys::EpollEvent; 1024] = [sys::EpollEvent { events: 0, data: 0 }; 1024];
        let rc = unsafe { sys::epoll_wait(self.fd, raw.as_mut_ptr(), cap, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in raw.iter().take(rc as usize) {
            events.push(Event {
                token: ev.data,
                events: ev.events,
            });
        }
        Ok(rc as usize)
    }
}

#[cfg(not(target_os = "linux"))]
impl Epoll {
    /// Unsupported on this target: always returns
    /// [`io::ErrorKind::Unsupported`] so callers fall back to their portable
    /// polling path.
    pub fn new() -> io::Result<Epoll> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is only available on Linux",
        ))
    }

    /// Unreachable on this target ([`Epoll::new`] never succeeds).
    pub fn add(&self, _fd: RawFd, _token: u64, _oneshot: bool) -> io::Result<()> {
        unreachable!("Epoll::new never succeeds off-Linux")
    }

    /// Unreachable on this target ([`Epoll::new`] never succeeds).
    pub fn rearm(&self, _fd: RawFd, _token: u64) -> io::Result<()> {
        unreachable!("Epoll::new never succeeds off-Linux")
    }

    /// Unreachable on this target ([`Epoll::new`] never succeeds).
    pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
        unreachable!("Epoll::new never succeeds off-Linux")
    }

    /// Unreachable on this target ([`Epoll::new`] never succeeds).
    pub fn wait(&self, _events: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<usize> {
        unreachable!("Epoll::new never succeeds off-Linux")
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.fd);
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn listener_readiness_fires_on_connect() {
        let epoll = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        epoll.add(listener.as_raw_fd(), 7, false).unwrap();

        let mut events = Vec::with_capacity(8);
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0, "nothing pending");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = epoll.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert_ne!(events[0].events & EPOLLIN, 0);
        // level-triggered without oneshot: still pending until accepted
        let n = epoll.wait(&mut events, 100).unwrap();
        assert_eq!(n, 1);
        let _ = listener.accept().unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn oneshot_disarms_until_rearmed_and_rearm_sees_pending_bytes() {
        let epoll = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        let fd = server_side.as_raw_fd();
        epoll.add(fd, 42, true).unwrap();

        client.write_all(b"x").unwrap();
        let mut events = Vec::with_capacity(8);
        assert_eq!(epoll.wait(&mut events, 2000).unwrap(), 1);
        assert_eq!(events[0].token, 42);
        // oneshot: the registration is disarmed even though the byte was
        // never read
        assert_eq!(epoll.wait(&mut events, 100).unwrap(), 0);
        // re-arming is level-triggered: the still-unread byte fires again
        epoll.rearm(fd, 42).unwrap();
        assert_eq!(epoll.wait(&mut events, 2000).unwrap(), 1);
        assert_eq!(events[0].token, 42);
    }

    #[test]
    fn hangup_is_reported_on_peer_close() {
        let epoll = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        epoll.add(server_side.as_raw_fd(), 1, true).unwrap();
        drop(client);
        let mut events = Vec::with_capacity(8);
        assert_eq!(epoll.wait(&mut events, 2000).unwrap(), 1);
        // EOF surfaces as EPOLLIN (read returns 0) possibly with EPOLLHUP
        assert_ne!(events[0].events & (EPOLLIN | EPOLLHUP), 0);
    }

    #[test]
    fn delete_removes_the_registration() {
        let epoll = Epoll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        epoll.add(listener.as_raw_fd(), 3, false).unwrap();
        epoll.delete(listener.as_raw_fd()).unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Vec::with_capacity(8);
        assert_eq!(epoll.wait(&mut events, 200).unwrap(), 0);
    }
}
