//! A vendored, dependency-free subset of the [rand](https://docs.rs/rand)
//! API.
//!
//! This workspace builds offline, so the real rand crate cannot be fetched.
//! This crate provides the slice of the API the workspace uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, uniform range sampling via
//! [`Rng::gen_range`], Bernoulli draws via [`Rng::gen_bool`] and Fisher–Yates
//! shuffling via [`seq::SliceRandom`].
//!
//! The integer range sampler uses the widening-multiply method, so results
//! are deterministic across platforms for a given generator; they are **not**
//! bit-compatible with the upstream rand crate (nothing in this workspace
//! depends on upstream streams).

/// A low-level generator of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling methods, automatically available for every generator.
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped into `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A random-number generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (typically a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// different `state` values give independent streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// The SplitMix64 generator, used for seed expansion and as a cheap
/// general-purpose deterministic generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from its 64-bit state.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<G: RngCore>(self, rng: &mut G) -> T;
}

/// Samples uniformly from `[0, span)` using the widening-multiply method.
#[inline]
fn sample_u64_below<G: RngCore>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = sample_u64_below(rng, span);
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = sample_u64_below(rng, span as u64);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<G: RngCore>(self, rng: &mut G) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Random sequence operations (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions: shuffling and random element selection.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Generator implementations re-exported under the upstream module path.
pub mod rngs {
    pub use super::SplitMix64;
}

/// Glob-import of the common traits, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SplitMix64::new(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 items should move");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = SplitMix64::new(3);
        let v = [10, 20, 30];
        assert!(v.contains(v.as_slice().choose(&mut rng).unwrap()));
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
