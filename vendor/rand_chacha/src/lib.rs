//! A vendored ChaCha8 random-number generator compatible with the vendored
//! [`rand`] trait subset.
//!
//! Implements the genuine ChaCha block function (RFC 8439 layout) with 8
//! rounds, a 256-bit seed, a zero nonce and a 64-bit block counter.  Streams
//! are deterministic across platforms; they are not required to be
//! bit-compatible with the upstream `rand_chacha` crate (nothing in this
//! workspace depends on upstream streams).

use rand::{RngCore, SeedableRng};

/// The number of ChaCha double-rounds (ChaCha8 = 4 double-rounds).
const DOUBLE_ROUNDS: usize = 4;

/// A ChaCha8 stream cipher used as a random-number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter state words 4..16 of the initial block state.
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..DOUBLE_ROUNDS {
            // column round
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn stream_is_reasonably_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn clone_continues_the_stream_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..20 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
