//! A vendored miniature property-testing harness exposing the subset of the
//! [proptest](https://docs.rs/proptest) macro surface this workspace uses.
//!
//! The workspace builds offline, so the real proptest crate cannot be
//! fetched.  This crate supports:
//!
//! * the [`proptest!`] macro with `arg in strategy` bindings, optional
//!   `#![proptest_config(...)]` and multiple test functions per block,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * strategies: numeric ranges (`2usize..7`, `-1.0f64..1.0`),
//!   [`collection::vec`] and [`bool::ANY`].
//!
//! Inputs are generated from a deterministic per-test SplitMix64 stream (the
//! test name seeds the stream), so failures are reproducible run-to-run.
//! There is no shrinking: a failing case panics with the generated inputs
//! printed, which is sufficient for the small input domains used here.

/// Configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Creates a configuration with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property assertion, carrying the formatted message.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The deterministic generator driving input generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one test case, seeded from the test name and
    /// the case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// A uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                ((self.start as i128) + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                ((lo as i128) + rng.below(span.saturating_add(1).max(1)) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy producing `Vec`s with lengths drawn from `len` and elements
    /// drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies over booleans.
pub mod bool {
    use super::{Strategy, TestRng};

    /// A strategy producing uniformly random booleans.
    pub struct Any;

    /// Uniformly random booleans (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> ::core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current property case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current property case if both expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Defines property tests: `proptest! { #[test] fn f(x in 0usize..4) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __proptest_case in 0..config.cases {
                    let mut __proptest_rng =
                        $crate::TestRng::for_case(stringify!($name), __proptest_case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    let __proptest_inputs = {
                        let mut s = ::std::string::String::new();
                        $(s.push_str(&format!("{} = {:?}; ", stringify!($arg), &$arg));)*
                        s
                    };
                    let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __proptest_result {
                        panic!(
                            "property {} failed at case {}:\n{}\ninputs: {}",
                            stringify!($name), __proptest_case, e, __proptest_inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Glob-import of the macro surface and helper types.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -4i64..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..4).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_bounds(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn configured_case_count_runs(x in 0usize..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn bool_any_generates_both_values() {
        let mut rng = TestRng::for_case("bool_any", 0);
        let vals: Vec<bool> = (0..64)
            .map(|_| Strategy::generate(&crate::bool::ANY, &mut rng))
            .collect();
        assert!(vals.contains(&true) && vals.contains(&false));
    }

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let a = TestRng::for_case("t", 3).next_u64();
        let b = TestRng::for_case("t", 3).next_u64();
        let c = TestRng::for_case("t", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
