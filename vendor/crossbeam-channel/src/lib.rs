//! A vendored subset of the `crossbeam-channel` API backed by
//! `std::sync::mpsc`.
//!
//! The workspace builds offline, so the real crate cannot be fetched; the
//! message-passing runtime only needs unbounded MPSC channels with cloneable,
//! shareable senders, which `std::sync::mpsc` provides (`Sender` is `Sync`
//! since Rust 1.72).

use std::sync::mpsc;

/// The sending half of an unbounded channel.
pub struct Sender<T>(mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

/// The receiving half of an unbounded channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

/// Error returned by [`Sender::send`] when the receiver is gone; carries the
/// unsent message.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

impl<T> Sender<T> {
    /// Sends a message, never blocking.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv().map_err(|_| RecvError)
    }

    /// Returns a message if one is ready, without blocking.
    pub fn try_recv(&self) -> Option<T> {
        self.0.try_recv().ok()
    }
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(10).unwrap());
            s.spawn(move || tx2.send(20).unwrap());
        });
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![10, 20]);
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn senders_are_shareable_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        let tx = std::sync::Arc::new(tx);
        std::thread::scope(|s| {
            for i in 0..4 {
                let tx = std::sync::Arc::clone(&tx);
                s.spawn(move || tx.send(i).unwrap());
            }
        });
        let mut got: Vec<usize> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
