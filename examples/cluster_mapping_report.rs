//! Produces a mapping-quality report over a sweep of cluster configurations,
//! in the spirit of Section VI-C (Fig. 8) of the paper: for every instance of
//! a node-count × processes-per-node × dimensionality grid, the reduction of
//! inter-node communication (`Jsum`, `Jmax`) over the blocked mapping is
//! computed for every algorithm and summarised per stencil.
//!
//! ```text
//! cargo run --release --example cluster_mapping_report            # small sweep
//! cargo run --release --example cluster_mapping_report -- --full  # the paper's 144 instances
//! ```

use stencilmap::mapping::analysis::{
    paper_instance_set, reductions_over_blocked, small_instance_set,
};
use stencilmap::prelude::*;
use stencilmap::sim::stats;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let instances = if full {
        paper_instance_set()
    } else {
        small_instance_set()
    };
    println!(
        "Sweeping {} instances ({} mode)\n",
        instances.len(),
        if full { "paper" } else { "small" }
    );

    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(Hyperplane::default()),
        Box::new(KdTree),
        Box::new(StencilStrips),
        Box::new(Nodecart),
    ];

    for stencil in StencilKind::all() {
        println!("== {} stencil ==", stencil.name());
        let records = reductions_over_blocked(&instances, stencil, &mappers);
        for mapper in &mappers {
            let name = mapper.name();
            let reductions: Vec<f64> = records
                .iter()
                .filter(|r| r.algorithm == name)
                .map(|r| r.j_sum_reduction)
                .collect();
            let jmax_reductions: Vec<f64> = records
                .iter()
                .filter(|r| r.algorithm == name)
                .map(|r| r.j_max_reduction)
                .collect();
            if reductions.is_empty() {
                continue;
            }
            println!(
                "  {:<14} Jsum reduction: median {:.3} (±{:.3}), [Q1 {:.3}, Q3 {:.3}]   Jmax: median {:.3}",
                name,
                stats::median(&reductions),
                stats::ci95_median(&reductions),
                stats::quantile(&reductions, 0.25),
                stats::quantile(&reductions, 0.75),
                stats::median(&jmax_reductions),
            );
        }
        // which algorithm wins most often?
        let mut wins = std::collections::HashMap::<String, usize>::new();
        for spec in &instances {
            let best = records
                .iter()
                .filter(|r| r.instance == *spec)
                .min_by(|a, b| a.j_sum.cmp(&b.j_sum));
            if let Some(best) = best {
                *wins.entry(best.algorithm.clone()).or_insert(0) += 1;
            }
        }
        let mut wins: Vec<_> = wins.into_iter().collect();
        wins.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        let summary: Vec<String> = wins.iter().map(|(a, c)| format!("{a}: {c}")).collect();
        println!("  best-Jsum wins per instance: {}\n", summary.join(", "));
    }

    println!("Reductions below 1.0 mean less inter-node communication than the blocked mapping.");
}
