//! The NP-hardness gadget of Theorem IV.3 / Figure 3: reducing
//! 3-WAY-PARTITION to GRID-PARTITION.
//!
//! Given a multiset `I' = {6, 3, 3, 2, 2, 2}` of integers, the reduction
//! builds a Cartesian grid `D = [Σ/3, 3]` with the one-dimensional component
//! stencil communicating along the first dimension, and uses the integers as
//! (heterogeneous!) node sizes.  The multiset can be split into three equal
//! halves exactly when the grid admits a mapping with
//! `Jsum ≤ 2·|I'| − 6` — each node then occupies a contiguous run inside one
//! column.
//!
//! This example builds the gadget, lets the k-d tree / Stencil Strips
//! heuristics and the VieM-style mapper attack it, and reports whether they
//! reach the bound of a *yes* instance.
//!
//! ```text
//! cargo run --release --example hardness_gadget
//! ```

use stencilmap::prelude::*;

fn main() {
    // The instance from Fig. 3 of the paper.
    let multiset: Vec<usize> = vec![6, 3, 3, 2, 2, 2];
    let total: usize = multiset.iter().sum();
    assert_eq!(
        total % 3,
        0,
        "a 3-WAY-PARTITION instance needs Σ divisible by 3"
    );
    let column_height = total / 3;

    // GRID-PARTITION instance: grid [Σ/3, 3], communication along dim 0 only.
    // (The paper draws the transposed [3, Σ/3] grid with communication along
    // dimension 1 — the construction is symmetric.)
    let dims = Dims::from_slice(&[column_height, 3]);
    let stencil = Stencil::component_along(2, 0);
    let alloc = NodeAllocation::heterogeneous(multiset.clone()).unwrap();
    let problem = MappingProblem::new(dims.clone(), stencil.clone(), alloc).unwrap();
    let graph = CartGraph::build(&dims, &stencil, false);

    let yes_bound = (2 * multiset.len() - 6) as u64;
    println!(
        "3-WAY-PARTITION instance I' = {multiset:?} (Σ = {total})\n\
         GRID-PARTITION gadget: grid {dims}, component stencil along dim 0, node sizes = I'\n\
         yes-instance bound: Jsum ≤ 2|I'| − 6 = {yes_bound}\n"
    );

    // A hand-constructed certificate: {6}, {3, 3}, {2, 2, 2} — each column of
    // the grid is filled by one group, so only the within-column node
    // boundaries cost communication.
    let certificate_groups: Vec<Vec<usize>> = vec![vec![0], vec![1, 2], vec![3, 4, 5]];
    let mut node_of_position = vec![0usize; dims.volume()];
    for (column, group) in certificate_groups.iter().enumerate() {
        let mut row = 0usize;
        for &node in group {
            for _ in 0..multiset[node] {
                node_of_position[dims.rank_of(&[row, column])] = node;
                row += 1;
            }
        }
        assert_eq!(row, column_height, "each group must fill one column");
    }
    let certificate = Mapping::from_node_of_position(&problem, &node_of_position).unwrap();
    let cert_cost = metrics::evaluate(&graph, &certificate);
    println!(
        "hand-built certificate:        Jsum = {:>2}, Jmax = {}  -> {}",
        cert_cost.j_sum,
        cert_cost.j_max,
        verdict(cert_cost.j_sum, yes_bound)
    );

    // Heuristics from the paper.
    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(Blocked),
        Box::new(KdTree),
        Box::new(StencilStrips),
        Box::new(Hyperplane::default()),
        Box::new(GraphMapper::with_seed(3)),
    ];
    for mapper in &mappers {
        match mapper.compute(&problem) {
            Ok(mapping) => {
                let cost = metrics::evaluate(&graph, &mapping);
                println!(
                    "{:<30} Jsum = {:>2}, Jmax = {}  -> {}",
                    mapper.name(),
                    cost.j_sum,
                    cost.j_max,
                    verdict(cost.j_sum, yes_bound)
                );
            }
            Err(e) => println!("{:<30} not applicable: {e}", mapper.name()),
        }
    }

    println!(
        "\nBecause GRID-PARTITION is NP-hard (Theorem IV.3), no polynomial algorithm can\n\
         certify *no* instances; the paper's heuristics nevertheless find the optimal\n\
         layout for this yes instance — exactly the behaviour reported for the\n\
         component stencil in Section VI."
    );
}

fn verdict(j_sum: u64, bound: u64) -> &'static str {
    if j_sum <= bound {
        "matches the yes-instance bound"
    } else {
        "above the bound"
    }
}
