//! A 2-d Jacobi heat-diffusion stencil computation running on the
//! message-passing runtime, with and without rank reordering.
//!
//! Every rank owns one cell of a `16 × 12` process grid (for clarity; in a
//! real application each rank owns a block of the physical domain) and
//! repeatedly averages its value with its nearest neighbors using the
//! reordered `StencilComm::neighbor_alltoall`.  The example demonstrates:
//!
//! * the distributed reordering (`MPIX_Cart_stencil_comm` analogue) — every
//!   rank computes its new coordinate locally,
//! * that the reordering does not change the numerical result — only *which
//!   node* owns which part of the domain,
//! * how much inter-node traffic the reordering removes and what that means
//!   for the simulated exchange time on the paper's machines.
//!
//! ```text
//! cargo run --release --example heat_diffusion
//! ```

use stencilmap::mpc::{Runtime, StencilComm};
use stencilmap::prelude::*;

const DIMS: [usize; 2] = [16, 12];
const NODES: usize = 8;
const PER_NODE: usize = 24;
const ITERATIONS: usize = 50;

/// Runs the Jacobi iteration under a given reordering and returns the final
/// field indexed by grid position (machine-independent result).
fn run_simulation(reorder: ReorderAlgorithm) -> Vec<f64> {
    let results = Runtime::run(DIMS[0] * DIMS[1], move |mut p| {
        let comm = StencilComm::create(
            &mut p,
            Dims::from_slice(&DIMS),
            false,
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(NODES, PER_NODE),
            reorder,
            0,
        );
        // initial condition: a hot spot in one corner of the *grid* (not of
        // the rank space), so the result is independent of the reordering
        let coord = comm.coords();
        let mut value = if coord == vec![0, 0] { 100.0f64 } else { 0.0 };

        for _ in 0..ITERATIONS {
            let send: Vec<Vec<u8>> = comm
                .destinations()
                .iter()
                .map(|_| value.to_le_bytes().to_vec())
                .collect();
            let recv = comm.neighbor_alltoall(&mut p, &send);
            let neighbor_sum: f64 = recv
                .iter()
                .map(|b| f64::from_le_bytes(b.as_slice().try_into().unwrap()))
                .sum();
            // Jacobi relaxation with implicit zero-gradient boundaries
            let degree = comm.out_degree() as f64;
            value = 0.5 * value + 0.5 * neighbor_sum / degree.max(1.0);
        }
        (comm.new_rank(), value)
    });

    let mut field = vec![0.0f64; DIMS[0] * DIMS[1]];
    for (position, value) in results {
        field[position] = value;
    }
    field
}

fn main() {
    println!(
        "Jacobi heat diffusion on a {}x{} process grid, {} iterations, {} nodes x {} ranks\n",
        DIMS[0], DIMS[1], ITERATIONS, NODES, PER_NODE
    );

    // 1. numerical equivalence under reordering -----------------------------
    let reference = run_simulation(ReorderAlgorithm::None);
    for alg in [
        ReorderAlgorithm::Hyperplane,
        ReorderAlgorithm::KdTree,
        ReorderAlgorithm::StencilStrips,
    ] {
        let field = run_simulation(alg);
        let max_diff = reference
            .iter()
            .zip(&field)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!(
            "{:?}: max deviation from the non-reordered run = {:.3e} (must be ~0)",
            alg, max_diff
        );
        assert!(max_diff < 1e-12, "reordering must not change the numerics");
    }

    // 2. what the reordering buys in communication --------------------------
    let problem = MappingProblem::new(
        Dims::from_slice(&DIMS),
        Stencil::nearest_neighbor(2),
        NodeAllocation::homogeneous(NODES, PER_NODE),
    )
    .unwrap();
    let graph = CartGraph::build(problem.dims(), problem.stencil(), false);
    let model = ExchangeModel::new(&Machine::vsc4());
    let blocked = Blocked.compute(&problem).unwrap();
    println!("\nCommunication cost of the halo exchange (64 KiB per neighbor):");
    for (name, mapping) in [
        ("Blocked", blocked.clone()),
        (
            "Hyperplane",
            Hyperplane::default().compute(&problem).unwrap(),
        ),
        ("k-d Tree", KdTree.compute(&problem).unwrap()),
        ("Stencil Strips", StencilStrips.compute(&problem).unwrap()),
    ] {
        let cost = metrics::evaluate(&graph, &mapping);
        let t = model.exchange_time(&graph, &mapping, 1 << 16);
        println!(
            "  {:<14} Jsum = {:>4}  Jmax = {:>3}  simulated exchange = {:>8.1} µs  speedup = {:.2}x",
            name,
            cost.j_sum,
            cost.j_max,
            t * 1e6,
            model.exchange_time(&graph, &blocked, 1 << 16) / t
        );
    }
}
