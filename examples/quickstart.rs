//! Quickstart: map the paper's headline instance (50 nodes × 48 processes on
//! a 50 × 48 grid, nearest-neighbor stencil) with every algorithm, compare
//! mapping quality and simulate the resulting `MPI_Neighbor_alltoall` time.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use stencilmap::prelude::*;

fn main() {
    // 1. Describe the problem: grid, stencil, node allocation ---------------
    let problem = MappingProblem::new(
        Dims::from_slice(&[50, 48]),
        Stencil::nearest_neighbor(2),
        NodeAllocation::homogeneous(50, 48),
    )
    .expect("consistent problem");
    let graph = CartGraph::build(problem.dims(), problem.stencil(), false);

    println!(
        "Instance: {} grid, {} nodes x {} processes, {} stencil offsets\n",
        problem.dims(),
        problem.num_nodes(),
        problem.node_size_parameter(),
        problem.stencil().k()
    );

    // 2. Run every mapping algorithm of the paper ---------------------------
    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(Blocked),
        Box::new(Hyperplane::default()),
        Box::new(KdTree),
        Box::new(StencilStrips),
        Box::new(Nodecart),
        Box::new(GraphMapper::with_seed(42)),
        Box::new(RandomMapping::with_seed(42)),
    ];

    let machine = Machine::vsc4();
    let model = ExchangeModel::new(&machine);
    let blocked_mapping = Blocked.compute(&problem).unwrap();
    let blocked_time = model.exchange_time(&graph, &blocked_mapping, 1 << 19);

    println!(
        "{:<14} {:>8} {:>8} {:>14} {:>10}",
        "algorithm", "Jsum", "Jmax", "512KiB time", "speedup"
    );
    for mapper in &mappers {
        match mapper.compute(&problem) {
            Ok(mapping) => {
                let cost = metrics::evaluate(&graph, &mapping);
                let time = model.exchange_time(&graph, &mapping, 1 << 19);
                println!(
                    "{:<14} {:>8} {:>8} {:>11.2} ms {:>9.2}x",
                    mapper.name(),
                    cost.j_sum,
                    cost.j_max,
                    time * 1e3,
                    blocked_time / time
                );
            }
            Err(e) => println!("{:<14} not applicable: {e}", mapper.name()),
        }
    }

    // 3. The MPIX_Cart_stencil_comm-style front-end --------------------------
    let comm = CartStencilComm::create(
        Dims::from_slice(&[50, 48]),
        false,
        Stencil::nearest_neighbor(2),
        NodeAllocation::homogeneous(50, 48),
        ReorderAlgorithm::StencilStrips,
        0,
    )
    .unwrap();
    println!(
        "\nCartStencilComm with {}: rank 0 -> new rank {}, coordinate {:?}, {} neighbors",
        comm.algorithm(),
        comm.new_rank_of(0),
        comm.coords_of_new_rank(comm.new_rank_of(0)),
        comm.neighbors_of_new_rank(comm.new_rank_of(0)).len()
    );
    println!(
        "Mapping cost via the communicator: Jsum = {}, Jmax = {}",
        comm.cost().j_sum,
        comm.cost().j_max
    );
}
