//! Regenerates the golden cut sizes asserted by `tests/fm_goldens.rs`.
//!
//! The goldens were captured from the linear-scan FM implementation that
//! preceded the gain-bucket rewrite; the regression test pins the bucket-queue
//! refinement to "never worse than the recorded linear-scan cut" on this
//! fixed instance set.  Run with:
//!
//! ```text
//! cargo run --release --example fm_goldens
//! ```
//!
//! and compare the printed table against the `GOLDENS` constant in the test.

use stencilmap::partition::{partition, Graph, PartitionConfig};

/// The fixed instance set: `(rows, cols, parts, seed)` grid-partitioning
/// problems with exact part sizes `rows * cols / parts`.
pub const INSTANCES: &[(u32, u32, usize, u64)] = &[
    (8, 8, 4, 1),
    (8, 8, 4, 2),
    (10, 10, 5, 1),
    (12, 18, 6, 3),
    (16, 16, 8, 1),
    (16, 16, 8, 7),
    (15, 16, 10, 2),
    (20, 20, 4, 1),
    (24, 24, 16, 5),
    (32, 32, 8, 1),
    (32, 32, 8, 9),
    (36, 28, 12, 4),
];

/// Builds the `rows x cols` 4-point grid graph used by the golden instances.
pub fn grid_graph(rows: u32, cols: u32) -> Graph {
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                edges.push((v, v + 1, 1));
            }
            if r + 1 < rows {
                edges.push((v, v + cols, 1));
            }
        }
    }
    Graph::from_edges((rows * cols) as usize, &edges)
}

fn main() {
    println!("// (rows, cols, parts, seed, cut)");
    for &(rows, cols, parts, seed) in INSTANCES {
        let g = grid_graph(rows, cols);
        let total = (rows * cols) as usize;
        assert_eq!(total % parts, 0, "instance must divide evenly");
        let cfg = PartitionConfig::new(vec![total / parts; parts]).with_seed(seed);
        let assignment = partition(&g, &cfg).unwrap();
        println!("({rows}, {cols}, {parts}, {seed}, {}),", g.cut(&assignment));
    }
}
