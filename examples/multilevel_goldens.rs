//! Regenerates the golden cut sizes asserted by `tests/multilevel_goldens.rs`.
//!
//! The goldens pin the end-to-end multilevel pipeline (coarsening → initial
//! bisection → FM projection → recursive bisection) on a fixed instance set,
//! complementing `fm_goldens` which pins the refinement stage alone.  They
//! were captured from the flat-array coarsening rework (PR 10); the
//! regression test asserts the pipeline never cuts worse than these numbers.
//! Run with:
//!
//! ```text
//! cargo run --release --example multilevel_goldens
//! ```
//!
//! and compare the printed table against the `GOLDENS` constant in the test.

use stencilmap::partition::{partition, Graph, PartitionConfig};

/// Vertex/edge weighting of a golden instance.
#[derive(Clone, Copy, Debug)]
pub enum Weighting {
    /// Unit vertex and edge weights.
    Unit,
    /// Vertex `v` weighs `1 + (v % 3)`; unit edge weights.
    VertexMod3,
    /// Unit vertex weights; horizontal edges weigh 3, vertical edges 1
    /// (heavy-edge matching must prefer rows).
    HeavyRows,
}

/// The fixed instance set: `(rows, cols, parts, seed, weighting)` grid
/// partitioning problems.  Instances are large enough that every one runs
/// through multiple coarsening levels (`coarsen_threshold` is 48).
pub const INSTANCES: &[(u32, u32, usize, u64, Weighting)] = &[
    (40, 40, 8, 1, Weighting::Unit),
    (40, 40, 8, 5, Weighting::Unit),
    (64, 32, 16, 2, Weighting::Unit),
    (48, 48, 12, 3, Weighting::Unit),
    (60, 40, 10, 4, Weighting::Unit),
    (32, 32, 8, 1, Weighting::VertexMod3),
    (48, 32, 12, 6, Weighting::VertexMod3),
    (56, 44, 7, 2, Weighting::VertexMod3),
    (40, 40, 8, 7, Weighting::HeavyRows),
];

/// Builds the `rows x cols` 4-point grid graph of a golden instance.
pub fn instance_graph(rows: u32, cols: u32, weighting: Weighting) -> Graph {
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                let w = match weighting {
                    Weighting::HeavyRows => 3,
                    _ => 1,
                };
                edges.push((v, v + 1, w));
            }
            if r + 1 < rows {
                edges.push((v, v + cols, 1));
            }
        }
    }
    let mut g = Graph::from_edges((rows * cols) as usize, &edges);
    if let Weighting::VertexMod3 = weighting {
        for v in 0..g.num_vertices() {
            g.set_vertex_weight(v, 1 + (v % 3) as u32);
        }
    }
    g
}

/// Fair-share part sizes: total vertex weight split as evenly as integer
/// targets allow (the first `total % parts` parts get one extra unit).
pub fn fair_sizes(g: &Graph, parts: usize) -> Vec<usize> {
    let total = g.total_vertex_weight() as usize;
    (0..parts)
        .map(|i| total / parts + usize::from(i < total % parts))
        .collect()
}

fn main() {
    println!("// (rows, cols, parts, seed, weighting, cut)");
    for &(rows, cols, parts, seed, weighting) in INSTANCES {
        let g = instance_graph(rows, cols, weighting);
        let sizes = fair_sizes(&g, parts);
        let cfg = PartitionConfig::new(sizes.clone()).with_seed(seed);
        let assignment = partition(&g, &cfg).unwrap();
        let weights = g.part_weights(&assignment, parts);
        let max_dev = weights
            .iter()
            .zip(&sizes)
            .map(|(&w, &s)| (w as i64 - s as i64).unsigned_abs())
            .max()
            .unwrap();
        println!(
            "({rows}, {cols}, {parts}, {seed}, Weighting::{weighting:?}, {}), // max part-size deviation {max_dev}",
            g.cut(&assignment)
        );
    }
}
