//! Golden regression suite for the end-to-end multilevel pipeline.
//!
//! `fm_goldens` pins the refinement stage; this suite pins the whole
//! pipeline — coarsening, initial bisection, FM projection and recursive
//! bisection — on a fixed instance set that includes non-unit vertex weights
//! and non-unit edge weights, so a coarsening rework cannot silently trade
//! quality for speed.  The `GOLDENS` table records the cuts produced by the
//! flat-array coarsening of PR 10; future implementations must never cut
//! worse than these numbers, and part sizes must stay exact.
//!
//! Regenerate the current implementation's numbers with
//! `cargo run --release --example multilevel_goldens`; the goldens are
//! historical and must not be bumped upwards.
//!
//! The suite also property-checks the hierarchy retention policy: retained
//! levels must shrink geometrically, so the peak retained memory of
//! `coarsen_hierarchy` stays O(n + m) regardless of instance shape or seed.

use stencilmap::partition::coarsen::coarsen_hierarchy;
use stencilmap::partition::{partition, Graph, PartitionConfig};

use proptest::prelude::*;

/// Vertex/edge weighting of a golden instance.
#[derive(Clone, Copy, Debug)]
enum Weighting {
    /// Unit vertex and edge weights.
    Unit,
    /// Vertex `v` weighs `1 + (v % 3)`; unit edge weights.
    VertexMod3,
    /// Unit vertex weights; horizontal edges weigh 3, vertical edges 1
    /// (heavy-edge matching must prefer rows).
    HeavyRows,
}

/// `(rows, cols, parts, seed, weighting, cut)` — cuts recorded from the
/// flat-array coarsening rework (PR 10).  Must match the instance list in
/// `examples/multilevel_goldens.rs`.  Every instance is large enough to run
/// through multiple coarsening levels (`coarsen_threshold` is 48).
const GOLDENS: &[(u32, u32, usize, u64, Weighting, u64)] = &[
    (40, 40, 8, 1, Weighting::Unit, 160),
    (40, 40, 8, 5, Weighting::Unit, 160),
    (64, 32, 16, 2, Weighting::Unit, 288),
    (48, 48, 12, 3, Weighting::Unit, 258),
    (60, 40, 10, 4, Weighting::Unit, 232),
    (32, 32, 8, 1, Weighting::VertexMod3, 138),
    (48, 32, 12, 6, Weighting::VertexMod3, 219),
    (56, 44, 7, 2, Weighting::VertexMod3, 182),
    (40, 40, 8, 7, Weighting::HeavyRows, 240),
];

/// Builds the `rows x cols` 4-point grid graph of a golden instance.
fn instance_graph(rows: u32, cols: u32, weighting: Weighting) -> Graph {
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                let w = match weighting {
                    Weighting::HeavyRows => 3,
                    _ => 1,
                };
                edges.push((v, v + 1, w));
            }
            if r + 1 < rows {
                edges.push((v, v + cols, 1));
            }
        }
    }
    let mut g = Graph::from_edges((rows * cols) as usize, &edges);
    if let Weighting::VertexMod3 = weighting {
        for v in 0..g.num_vertices() {
            g.set_vertex_weight(v, 1 + (v % 3) as u32);
        }
    }
    g
}

/// Fair-share part sizes: total vertex weight split as evenly as integer
/// targets allow (the first `total % parts` parts get one extra unit).
fn fair_sizes(g: &Graph, parts: usize) -> Vec<usize> {
    let total = g.total_vertex_weight() as usize;
    (0..parts)
        .map(|i| total / parts + usize::from(i < total % parts))
        .collect()
}

#[test]
fn multilevel_pipeline_is_never_worse_than_recorded_goldens() {
    for &(rows, cols, parts, seed, weighting, golden_cut) in GOLDENS {
        let g = instance_graph(rows, cols, weighting);
        let sizes = fair_sizes(&g, parts);
        let cfg = PartitionConfig::new(sizes.clone()).with_seed(seed);
        let assignment = partition(&g, &cfg).unwrap();
        // exact part sizes must hold, including on weighted vertices
        let weights = g.part_weights(&assignment, parts);
        assert!(
            weights
                .iter()
                .zip(&sizes)
                .all(|(&w, &s)| w == s as u64),
            "{rows}x{cols}/{parts} seed {seed} ({weighting:?}): sizes {weights:?} != targets {sizes:?}"
        );
        let cut = g.cut(&assignment);
        assert!(
            cut <= golden_cut,
            "{rows}x{cols} into {parts} parts, seed {seed} ({weighting:?}): \
             cut {cut} worse than recorded golden {golden_cut}"
        );
    }
}

#[test]
fn heavy_rows_golden_respects_edge_weights() {
    // sanity for the HeavyRows instance: cutting a horizontal edge costs 3,
    // so a good partition prefers row-aligned parts; the golden cut must be
    // strictly below the naive column-strip cut (40 rows x 7 boundaries x 3
    // would be the all-horizontal worst case among balanced strip layouts)
    let &(rows, cols, parts, seed, weighting, golden_cut) = GOLDENS
        .iter()
        .find(|g| matches!(g.4, Weighting::HeavyRows))
        .expect("HeavyRows instance present");
    let g = instance_graph(rows, cols, weighting);
    let cfg = PartitionConfig::new(fair_sizes(&g, parts)).with_seed(seed);
    let assignment = partition(&g, &cfg).unwrap();
    let vertical_strip_cut = (rows * (parts as u32 - 1) * 3) as u64;
    assert!(
        g.cut(&assignment) < vertical_strip_cut,
        "cut {} should beat the vertical-strip layout {vertical_strip_cut}",
        g.cut(&assignment)
    );
    assert!(g.cut(&assignment) <= golden_cut);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Retained hierarchy levels shrink geometrically (each retained level
    /// has at most ~0.45x the previous level's vertices, the documented
    /// retention policy), so the peak retained memory of `coarsen_hierarchy`
    /// — all level graphs plus their projection maps — is O(n + m).
    #[test]
    fn prop_hierarchy_retained_memory_is_linear(
        rows in 6u32..40,
        cols in 6u32..40,
        seed in 0u64..1000,
        target in 10usize..40,
    ) {
        let g = instance_graph(rows, cols, Weighting::Unit);
        let n = g.num_vertices();
        let m = g.num_edges();
        let levels = coarsen_hierarchy(&g, target, seed);
        // geometric decrease: every retained level except possibly the last
        // (which may stall near the target) shrinks below the retention
        // fraction of its predecessor
        let mut prev = n;
        for (i, level) in levels.iter().enumerate() {
            let ln = level.graph.num_vertices();
            let goal = ((prev as f64 * 0.45).ceil() as usize).max(target);
            prop_assert!(
                ln <= goal || i == levels.len() - 1,
                "level {i} retains {ln} vertices, retention goal {goal} (prev {prev})"
            );
            prop_assert!(ln < prev, "level {i} did not shrink: {ln} >= {prev}");
            prev = ln;
        }
        // O(n + m) peak: the sum over retained levels is bounded by the
        // geometric series n / (1 - 0.45) ~= 1.82n (slack 2x for stalls)
        let retained_vertices: usize =
            levels.iter().map(|l| l.graph.num_vertices()).sum();
        let retained_edges: usize =
            levels.iter().map(|l| l.graph.num_edges()).sum();
        let retained_maps: usize =
            levels.iter().map(|l| l.fine_to_coarse.len()).sum();
        prop_assert!(retained_vertices <= 2 * n, "{retained_vertices} vs n = {n}");
        prop_assert!(retained_edges <= 2 * m, "{retained_edges} vs m = {m}");
        // each level's projection map has the *finer* level's length, so the
        // total is bounded by n + retained_vertices
        prop_assert!(retained_maps <= n + retained_vertices);
    }
}
