//! End-to-end integration tests across the workspace crates: reordering +
//! message-passing runtime + cluster simulation + benchmark harness.

use stencilmap::mpc::{Runtime, StencilComm};
use stencilmap::prelude::*;

/// A reordered halo exchange on the message-passing runtime delivers exactly
/// the data a blocked exchange delivers (per grid position), for every
/// algorithm.
#[test]
fn reordered_exchange_is_data_equivalent_to_blocked() {
    let dims = [8usize, 6];
    let nodes = 6;
    let per_node = 8;

    let run = |alg: ReorderAlgorithm| -> Vec<Vec<u32>> {
        let mut per_position: Vec<Vec<u32>> = vec![Vec::new(); dims[0] * dims[1]];
        let results = Runtime::run(dims[0] * dims[1], move |mut p| {
            let comm = StencilComm::create(
                &mut p,
                Dims::from_slice(&dims),
                false,
                Stencil::nearest_neighbor(2),
                NodeAllocation::homogeneous(nodes, per_node),
                alg,
                1,
            );
            // every process sends its grid position; the receive side
            // collects the positions of its neighbors
            let send: Vec<Vec<u8>> = comm
                .destinations()
                .iter()
                .map(|_| (comm.new_rank() as u32).to_le_bytes().to_vec())
                .collect();
            let recv = comm.neighbor_alltoall(&mut p, &send);
            let mut got: Vec<u32> = recv
                .iter()
                .map(|b| u32::from_le_bytes(b.as_slice().try_into().unwrap()))
                .collect();
            got.sort_unstable();
            (comm.new_rank(), got)
        });
        for (position, got) in results {
            per_position[position] = got;
        }
        per_position
    };

    let reference = run(ReorderAlgorithm::None);
    for alg in [
        ReorderAlgorithm::Hyperplane,
        ReorderAlgorithm::KdTree,
        ReorderAlgorithm::StencilStrips,
        ReorderAlgorithm::Nodecart,
    ] {
        let got = run(alg);
        assert_eq!(got, reference, "{alg:?} changed the exchanged data");
    }
}

/// The simulated exchange times and the mapping metrics must agree in sign:
/// whenever an algorithm reduces `Jmax` substantially, the simulated exchange
/// gets faster on every machine.
#[test]
fn simulated_speedups_follow_metric_reductions() {
    let problem = MappingProblem::new(
        Dims::from_slice(&[24, 16]),
        Stencil::nearest_neighbor(2),
        NodeAllocation::homogeneous(16, 24),
    )
    .unwrap();
    let graph = CartGraph::build(problem.dims(), problem.stencil(), false);
    let blocked = Blocked.compute(&problem).unwrap();
    let blocked_cost = metrics::evaluate(&graph, &blocked);

    for machine in Machine::paper_machines() {
        let model = ExchangeModel::new(&machine);
        for mapper in [
            Box::new(Hyperplane::default()) as Box<dyn Mapper>,
            Box::new(KdTree),
            Box::new(StencilStrips),
        ] {
            let mapping = mapper.compute(&problem).unwrap();
            let cost = metrics::evaluate(&graph, &mapping);
            if cost.j_max * 2 <= blocked_cost.j_max {
                let speedup = model.exchange_time(&graph, &blocked, 1 << 19)
                    / model.exchange_time(&graph, &mapping, 1 << 19);
                assert!(
                    speedup > 1.2,
                    "{} on {}: Jmax {} vs {} but speedup only {speedup}",
                    mapper.name(),
                    machine.name,
                    cost.j_max,
                    blocked_cost.j_max
                );
            }
        }
    }
}

/// The figure harness runs end to end on shrunk configurations and produces
/// internally consistent output.
#[test]
fn figure_harness_smoke_test() {
    use stencil_bench::figures::{figure67, figure8, Figure67Config, Figure8Config};

    let (scores, speedups) = figure67(&Figure67Config {
        nodes: 6,
        machines: vec![Machine::vsc4()],
        message_sizes: vec![1 << 12, 1 << 20],
        measurement: Measurement {
            repetitions: 10,
            ..Measurement::default()
        },
        seed: 3,
    });
    assert!(!scores.is_empty());
    assert!(!speedups.is_empty());
    for row in &speedups {
        assert!(row.mean_time > 0.0);
        assert!((row.speedup - row.blocked_time / row.mean_time).abs() < 1e-9);
    }

    let rows = figure8(&Figure8Config {
        instances: stencilmap::mapping::analysis::small_instance_set()
            .into_iter()
            .take(3)
            .collect(),
        include_graph_mapper: false,
        seed: 3,
    });
    assert!(!rows.is_empty());
    for r in &rows {
        assert!(r.median.is_finite());
        assert!(r.q1 <= r.q3 + 1e-12);
    }
}

/// The instantiation-time harness reports the runtime hierarchy of Fig. 9:
/// the distributed algorithms are far faster than the VieM-style mapper.
#[test]
fn instantiation_time_hierarchy() {
    use stencil_bench::timing::time_instantiations;

    let problem = MappingProblem::new(
        Dims::from_slice(&[24, 20]),
        Stencil::nearest_neighbor(2),
        NodeAllocation::homogeneous(20, 24),
    )
    .unwrap();
    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(Hyperplane::default()),
        Box::new(KdTree),
        Box::new(StencilStrips),
        Box::new(GraphMapper::with_seed(1)),
    ];
    let timings = time_instantiations(&problem, &mappers, 3);
    assert_eq!(timings.len(), 4);
    let viem = timings
        .iter()
        .find(|t| t.algorithm == "VieM-style")
        .unwrap()
        .summary
        .mean;
    for t in &timings {
        if t.algorithm != "VieM-style" {
            assert!(
                viem > 3.0 * t.summary.mean,
                "VieM-style ({viem}s) should be much slower than {} ({}s)",
                t.algorithm,
                t.summary.mean
            );
        }
    }
}

/// Heterogeneous allocations work across the whole pipeline (the paper's
/// motivation for factorisation-free algorithms).
#[test]
fn heterogeneous_allocation_pipeline() {
    let alloc = NodeAllocation::heterogeneous(vec![20, 16, 12, 12, 12]).unwrap();
    let problem = MappingProblem::new(
        Dims::from_slice(&[12, 6]),
        Stencil::nearest_neighbor_with_hops(2),
        alloc,
    )
    .unwrap();
    let graph = CartGraph::build(problem.dims(), problem.stencil(), false);
    let blocked = metrics::evaluate(&graph, &Blocked.compute(&problem).unwrap());
    for mapper in [
        Box::new(Hyperplane::default()) as Box<dyn Mapper>,
        Box::new(KdTree),
        Box::new(StencilStrips),
        Box::new(GraphMapper::with_seed(9)),
    ] {
        let mapping = mapper.compute(&problem).unwrap();
        assert!(
            mapping.respects_allocation(problem.alloc()),
            "{}",
            mapper.name()
        );
        let cost = metrics::evaluate(&graph, &mapping);
        assert!(
            cost.j_sum <= blocked.j_sum,
            "{} should not be worse than blocked here",
            mapper.name()
        );
    }
    // Nodecart must refuse the heterogeneous allocation
    assert!(Nodecart.compute(&problem).is_err());
}
