//! Golden regression test for the bucket-queue FM rewrite.
//!
//! The `GOLDENS` table records the edge cuts the **old linear-scan FM**
//! (pre-bucket-queue, as of PR 1) produced for a fixed set of grid
//! partitioning instances.  The bucket-queue refinement must never be worse
//! than those recorded cuts on any of the instances — quality is locked in
//! while the selection structure underneath is free to evolve.
//!
//! Regenerate the current implementation's numbers with
//! `cargo run --release --example fm_goldens`; the goldens themselves are
//! historical and must not be bumped upwards.

use stencilmap::partition::{partition, Graph, PartitionConfig};

/// `(rows, cols, parts, seed, cut)` — cut sizes recorded from the linear-scan
/// FM at commit fa83d97 ("Add parallel allocation-free mapping engine").
/// Must match the instance list in `examples/fm_goldens.rs`.
const GOLDENS: &[(u32, u32, usize, u64, u64)] = &[
    (8, 8, 4, 1, 16),
    (8, 8, 4, 2, 16),
    (10, 10, 5, 1, 28),
    (12, 18, 6, 3, 48),
    (16, 16, 8, 1, 64),
    (16, 16, 8, 7, 64),
    (15, 16, 10, 2, 76),
    (20, 20, 4, 1, 44),
    (24, 24, 16, 5, 144),
    (32, 32, 8, 1, 138),
    (32, 32, 8, 9, 133),
    (36, 28, 12, 4, 183),
];

fn grid_graph(rows: u32, cols: u32) -> Graph {
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                edges.push((v, v + 1, 1));
            }
            if r + 1 < rows {
                edges.push((v, v + cols, 1));
            }
        }
    }
    Graph::from_edges((rows * cols) as usize, &edges)
}

#[test]
fn bucket_queue_fm_is_never_worse_than_linear_scan_goldens() {
    let mut improvements = 0u32;
    for &(rows, cols, parts, seed, golden_cut) in GOLDENS {
        let g = grid_graph(rows, cols);
        let total = (rows * cols) as usize;
        assert_eq!(total % parts, 0, "golden instance must divide evenly");
        let cfg = PartitionConfig::new(vec![total / parts; parts]).with_seed(seed);
        let assignment = partition(&g, &cfg).unwrap();
        // exact part sizes must hold as before
        let weights = g.part_weights(&assignment, parts);
        assert!(
            weights.iter().all(|&w| w == (total / parts) as u64),
            "{rows}x{cols}/{parts} seed {seed}: sizes {weights:?}"
        );
        let cut = g.cut(&assignment);
        assert!(
            cut <= golden_cut,
            "{rows}x{cols} into {parts} parts, seed {seed}: \
             bucket-queue FM cut {cut} worse than linear-scan golden {golden_cut}"
        );
        if cut < golden_cut {
            improvements += 1;
        }
    }
    // the tie-break alternation should keep beating the old scan somewhere;
    // if this starts failing the refinement has silently lost search power
    assert!(
        improvements >= 1,
        "bucket-queue FM no longer improves on any golden instance"
    );
}
