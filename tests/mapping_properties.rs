//! Property-based integration tests over the public API: every algorithm
//! produces valid, allocation-respecting permutations on arbitrary instances,
//! and the core invariants of the paper hold across the crates.

use proptest::prelude::*;
use stencilmap::prelude::*;

fn arbitrary_problem(
    d0: usize,
    d1: usize,
    groups: usize,
    stencil_choice: u8,
) -> Option<MappingProblem> {
    let p = d0 * d1;
    if !p.is_multiple_of(groups) {
        return None;
    }
    let stencil = match stencil_choice % 3 {
        0 => Stencil::nearest_neighbor(2),
        1 => Stencil::nearest_neighbor_with_hops(2),
        _ => Stencil::component(2),
    };
    MappingProblem::new(
        Dims::from_slice(&[d0, d1]),
        stencil,
        NodeAllocation::homogeneous(groups, p / groups),
    )
    .ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every distributed algorithm yields a bijective rank→position map that
    /// respects the allocation, on arbitrary 2-d instances and stencils.
    #[test]
    fn all_distributed_algorithms_yield_valid_mappings(
        d0 in 2usize..12,
        d1 in 2usize..12,
        groups in 1usize..8,
        stencil_choice in 0u8..3,
    ) {
        if let Some(problem) = arbitrary_problem(d0, d1, groups, stencil_choice) {
            for mapper in [
                Box::new(Hyperplane::default()) as Box<dyn Mapper>,
                Box::new(KdTree),
                Box::new(StencilStrips),
            ] {
                let mapping = mapper.compute(&problem).unwrap();
                prop_assert!(mapping.respects_allocation(problem.alloc()));
                // bijection: every position owned exactly once
                let mut seen = vec![false; problem.num_processes()];
                for r in 0..problem.num_processes() {
                    let pos = mapping.position_of_rank(r);
                    prop_assert!(!seen[pos]);
                    seen[pos] = true;
                    prop_assert_eq!(mapping.rank_of_position(pos), r);
                }
            }
        }
    }

    /// Jsum and Jmax are invariant under relabeling nodes and bounded by the
    /// number of directed edges; the blocked mapping never beats the best of
    /// the three new algorithms by more than a small margin.
    #[test]
    fn metric_invariants(
        d0 in 2usize..10,
        d1 in 2usize..10,
        groups in 2usize..6,
        stencil_choice in 0u8..3,
    ) {
        if let Some(problem) = arbitrary_problem(d0, d1, groups, stencil_choice) {
            let graph = CartGraph::build(problem.dims(), problem.stencil(), false);
            let blocked = metrics::evaluate(&graph, &Blocked.compute(&problem).unwrap());
            prop_assert!(blocked.j_sum <= graph.num_directed_edges() as u64);
            prop_assert!(blocked.j_max <= blocked.j_sum);

            let best_new = [
                metrics::evaluate(&graph, &Hyperplane::default().compute(&problem).unwrap()).j_sum,
                metrics::evaluate(&graph, &KdTree.compute(&problem).unwrap()).j_sum,
                metrics::evaluate(&graph, &StencilStrips.compute(&problem).unwrap()).j_sum,
            ]
            .into_iter()
            .min()
            .unwrap();
            // the best of the three specialised algorithms never loses to
            // blocked on these regular instances (paper, Section VI-C)
            prop_assert!(best_new <= blocked.j_sum,
                "best new {} vs blocked {}", best_new, blocked.j_sum);
        }
    }

    /// The exchange-time model is monotone: adding bytes or inter-node
    /// messages never makes the simulated exchange faster.
    #[test]
    fn exchange_model_monotonicity(
        d0 in 2usize..10,
        d1 in 2usize..10,
        groups in 2usize..6,
        msg_exp in 6u32..20,
    ) {
        if let Some(problem) = arbitrary_problem(d0, d1, groups, 0) {
            let graph = CartGraph::build(problem.dims(), problem.stencil(), false);
            let model = ExchangeModel::new(&Machine::vsc4());
            let blocked = Blocked.compute(&problem).unwrap();
            let small = model.exchange_time(&graph, &blocked, 1 << msg_exp);
            let large = model.exchange_time(&graph, &blocked, 1 << (msg_exp + 1));
            prop_assert!(large >= small);

            // a mapping with strictly larger Jmax and Jsum is never faster
            let random = RandomMapping::with_seed(7).compute(&problem).unwrap();
            let cb = metrics::evaluate(&graph, &blocked);
            let cr = metrics::evaluate(&graph, &random);
            if cr.j_max > cb.j_max && cr.j_sum > cb.j_sum {
                prop_assert!(
                    model.exchange_time(&graph, &random, 1 << msg_exp) >= small
                );
            }
        }
    }

    /// CartStencilComm permutations are involutions of each other:
    /// `old_rank_of(new_rank_of(r)) == r` and node assignments stay blocked.
    #[test]
    fn cart_stencil_comm_consistency(
        d0 in 2usize..10,
        d1 in 2usize..10,
        groups in 1usize..6,
        alg_choice in 0u8..4,
    ) {
        let p = d0 * d1;
        if p % groups == 0 {
            let alg = match alg_choice % 4 {
                0 => ReorderAlgorithm::Hyperplane,
                1 => ReorderAlgorithm::KdTree,
                2 => ReorderAlgorithm::StencilStrips,
                _ => ReorderAlgorithm::None,
            };
            let comm = CartStencilComm::create(
                Dims::from_slice(&[d0, d1]),
                false,
                Stencil::nearest_neighbor(2),
                NodeAllocation::homogeneous(groups, p / groups),
                alg,
                0,
            )
            .unwrap();
            for r in 0..p {
                prop_assert_eq!(comm.old_rank_of(comm.new_rank_of(r)), r);
                let node = comm.problem().alloc().node_of_rank(r);
                prop_assert_eq!(comm.node_of_new_rank(comm.new_rank_of(r)), node);
            }
        }
    }
}
