//! Integration test: the mapping scores of the paper's headline instances
//! (left panels of Figures 6 and 7) are reproduced by the Rust
//! implementation.  Exact equality is asserted where our runs match the
//! published numbers exactly; small tolerances are used where the paper's
//! value depends on tie-breaking choices that are not fully specified.

use stencilmap::prelude::*;

fn score(problem: &MappingProblem, mapper: &dyn Mapper) -> MappingCost {
    let graph = CartGraph::build(problem.dims(), problem.stencil(), problem.periodic());
    metrics::evaluate(&graph, &mapper.compute(problem).unwrap())
}

fn instance(dims: &[usize], nodes: usize, stencil: Stencil) -> MappingProblem {
    MappingProblem::new(
        Dims::from_slice(dims),
        stencil,
        NodeAllocation::homogeneous(nodes, 48),
    )
    .unwrap()
}

#[test]
fn figure6_nearest_neighbor_scores() {
    let p = instance(&[50, 48], 50, Stencil::nearest_neighbor(2));
    // Paper: Standard 4704/96, Nodecart 2404/50, Hyperplane 1328/38,
    //        k-d Tree 1732/46, Stencil Strips 1244/28, VieM 1342/36.
    let blocked = score(&p, &Blocked);
    assert_eq!((blocked.j_sum, blocked.j_max), (4704, 96));
    let nodecart = score(&p, &Nodecart);
    assert_eq!((nodecart.j_sum, nodecart.j_max), (2404, 50));
    let hyperplane = score(&p, &Hyperplane::default());
    assert_eq!((hyperplane.j_sum, hyperplane.j_max), (1328, 38));
    let kdtree = score(&p, &KdTree);
    assert_eq!((kdtree.j_sum, kdtree.j_max), (1732, 46));
    let strips = score(&p, &StencilStrips);
    assert!(strips.j_sum <= 1350, "paper: 1244, ours: {}", strips.j_sum);
    assert_eq!(strips.j_max, 28);
    // the ranking of the paper holds
    assert!(strips.j_sum < hyperplane.j_sum);
    assert!(hyperplane.j_sum < kdtree.j_sum);
    assert!(kdtree.j_sum < nodecart.j_sum);
    assert!(nodecart.j_sum < blocked.j_sum);
}

#[test]
fn figure6_component_scores() {
    let p = instance(&[50, 48], 50, Stencil::component(2));
    // Paper: k-d Tree 96/2, Stencil Strips 96/2, VieM 154/17, Hyperplane
    //        288/16, Nodecart 2304/48, Standard 4704/96.
    assert_eq!(score(&p, &Blocked).j_sum, 4704);
    assert_eq!(score(&p, &Nodecart).j_sum, 2304);
    assert_eq!(score(&p, &KdTree).j_sum, 96);
    assert_eq!(score(&p, &KdTree).j_max, 2);
    assert_eq!(score(&p, &StencilStrips).j_sum, 96);
    let hp = score(&p, &Hyperplane::default());
    assert!(hp.j_sum <= 400, "paper: 288, ours: {}", hp.j_sum);
}

#[test]
fn figure6_hops_scores() {
    let p = instance(&[50, 48], 50, Stencil::nearest_neighbor_with_hops(2));
    // Paper: VieM 3160, Hyperplane 3268, Stencil Strips 3868, k-d Tree 4364,
    //        Nodecart 11524, Standard 13824.
    let blocked = score(&p, &Blocked);
    assert_eq!((blocked.j_sum, blocked.j_max), (13824, 288));
    let nodecart = score(&p, &Nodecart);
    assert_eq!(nodecart.j_sum, 11524);
    let hp = score(&p, &Hyperplane::default());
    let kd = score(&p, &KdTree);
    let ss = score(&p, &StencilStrips);
    for (name, cost, paper) in [
        ("Hyperplane", &hp, 3268u64),
        ("k-d Tree", &kd, 4364),
        ("Stencil Strips", &ss, 3868),
    ] {
        let tolerance = paper / 5; // within 20% of the published score
        assert!(
            cost.j_sum <= paper + tolerance,
            "{name}: paper {paper}, ours {}",
            cost.j_sum
        );
        assert!(cost.j_sum < nodecart.j_sum / 2);
    }
}

#[test]
fn figure7_scores_n100() {
    // N = 100, grid 75 x 64.
    let nn = instance(&[75, 64], 100, Stencil::nearest_neighbor(2));
    // Paper: Standard 9622/98, Nodecart 3522/38, Stencil Strips 2654/30,
    //        Hyperplane 2802/38, k-d Tree 3490/46, VieM 2818/36.
    let blocked = score(&nn, &Blocked);
    assert_eq!((blocked.j_sum, blocked.j_max), (9622, 98));
    let nodecart = score(&nn, &Nodecart);
    assert_eq!(nodecart.j_sum, 3522);
    let hp = score(&nn, &Hyperplane::default());
    assert!(hp.j_sum <= 3100, "paper: 2802, ours: {}", hp.j_sum);
    let ss = score(&nn, &StencilStrips);
    assert!(ss.j_sum <= 2900, "paper: 2654, ours: {}", ss.j_sum);
    let kd = score(&nn, &KdTree);
    assert!(kd.j_sum <= 3800, "paper: 3490, ours: {}", kd.j_sum);

    let comp = instance(&[75, 64], 100, Stencil::component(2));
    // Paper: k-d Tree and Stencil Strips find the optimum 192/2.
    assert_eq!(score(&comp, &KdTree).j_sum, 192);
    assert_eq!(score(&comp, &StencilStrips).j_sum, 192);
    assert_eq!(score(&comp, &Blocked).j_sum, 9472);

    let hops = instance(&[75, 64], 100, Stencil::nearest_neighbor_with_hops(2));
    // Paper: Standard 28182/290, Nodecart 18882/198.
    let blocked = score(&hops, &Blocked);
    assert_eq!((blocked.j_sum, blocked.j_max), (28182, 290));
    assert_eq!(score(&hops, &Nodecart).j_sum, 18882);
}

#[test]
fn viem_style_quality_is_close_to_the_specialised_algorithms() {
    // The paper finds VieM's quality comparable to the new algorithms on the
    // nearest-neighbor stencil.  Our from-scratch VieM-style mapper should be
    // clearly better than Nodecart and within ~25% of Stencil Strips.
    let p = instance(&[50, 48], 50, Stencil::nearest_neighbor(2));
    let viem = score(&p, &GraphMapper::with_seed(42));
    let strips = score(&p, &StencilStrips);
    let nodecart = score(&p, &Nodecart);
    assert!(viem.j_sum < nodecart.j_sum);
    assert!(
        (viem.j_sum as f64) < strips.j_sum as f64 * 1.25,
        "viem {} vs strips {}",
        viem.j_sum,
        strips.j_sum
    );
}
