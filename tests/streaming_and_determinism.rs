//! Property tests for the parallel mapping engine:
//!
//! * the streaming metrics evaluator (no graph materialisation) agrees bit
//!   for bit with the CSR evaluator on random grids and stencils, periodic
//!   and non-periodic,
//! * the chunked parallel mapping computation agrees with the rank-local
//!   definition (`remap_rank`) for every rank,
//! * the parallel and sequential multilevel partitioner produce identical
//!   results for the same seed.

use proptest::prelude::*;
use stencilmap::partition::{partition, Graph, PartitionConfig};
use stencilmap::prelude::*;

fn stencil_for(ndims: usize, choice: u8) -> Stencil {
    match choice % 3 {
        0 => Stencil::nearest_neighbor(ndims),
        1 => Stencil::nearest_neighbor_with_hops(ndims),
        _ => {
            if ndims >= 2 {
                Stencil::component(ndims)
            } else {
                Stencil::nearest_neighbor(ndims)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streaming and CSR evaluation agree exactly on the paper stencils, for
    /// arbitrary grids, node counts and boundary conditions.
    #[test]
    fn streaming_metrics_equal_csr_metrics(
        sizes in proptest::collection::vec(1usize..8, 2..4),
        stencil_choice in 0u8..3,
        periodic in proptest::bool::ANY,
        groups in 1usize..7,
    ) {
        let p: usize = sizes.iter().product();
        if p.is_multiple_of(groups) {
            let dims = Dims::new(sizes).unwrap();
            let stencil = stencil_for(dims.ndims(), stencil_choice);
            let problem = MappingProblem::with_periodicity(
                dims,
                stencil,
                NodeAllocation::homogeneous(groups, p / groups),
                periodic,
            )
            .unwrap();
            let graph = CartGraph::build(problem.dims(), problem.stencil(), periodic);
            for mapping in [
                Blocked.compute(&problem).unwrap(),
                KdTree.compute(&problem).unwrap(),
                RandomMapping::with_seed(9).compute(&problem).unwrap(),
            ] {
                let csr = metrics::evaluate(&graph, &mapping);
                let streaming = metrics::evaluate_streaming(
                    problem.dims(),
                    problem.stencil(),
                    periodic,
                    &mapping,
                );
                prop_assert_eq!(&csr, &streaming);
            }
        }
    }

    /// Streaming evaluation also agrees on arbitrary (random-offset)
    /// stencils, not just the paper's three families.
    #[test]
    fn streaming_metrics_equal_csr_on_random_stencils(
        d0 in 1usize..7,
        d1 in 1usize..7,
        raw in proptest::collection::vec(-3i64..4, 2..12),
        periodic in proptest::bool::ANY,
    ) {
        let usable = raw.len() - raw.len() % 2;
        if usable >= 2 {
            if let Ok(stencil) = Stencil::from_flat(2, &raw[..usable]) {
                let p = d0 * d1;
                let problem = MappingProblem::with_periodicity(
                    Dims::from_slice(&[d0, d1]),
                    stencil,
                    NodeAllocation::homogeneous(1, p),
                    periodic,
                )
                .unwrap();
                let graph = CartGraph::build(problem.dims(), problem.stencil(), periodic);
                let mapping = Blocked.compute(&problem).unwrap();
                let csr = metrics::evaluate(&graph, &mapping);
                let streaming = metrics::evaluate_streaming(
                    problem.dims(),
                    problem.stencil(),
                    periodic,
                    &mapping,
                );
                prop_assert_eq!(&csr, &streaming);
            }
        }
    }

    /// The chunked parallel full-mapping computation matches the rank-local
    /// definition for every rank (and is therefore independent of chunking
    /// and thread count).
    #[test]
    fn parallel_mapping_matches_rank_local_definition(
        d0 in 2usize..10,
        d1 in 2usize..10,
        groups in 1usize..6,
        alg in 0u8..3,
    ) {
        let p = d0 * d1;
        if p % groups == 0 {
            let problem = MappingProblem::new(
                Dims::from_slice(&[d0, d1]),
                Stencil::nearest_neighbor(2),
                NodeAllocation::homogeneous(groups, p / groups),
            )
            .unwrap();
            let mapper: Box<dyn Mapper> = match alg % 3 {
                0 => Box::new(Hyperplane::default()),
                1 => Box::new(KdTree),
                _ => Box::new(StencilStrips),
            };
            let mapping = mapper.compute(&problem).unwrap();
            let rank_local: Vec<usize> = (0..p)
                .map(|r| match alg % 3 {
                    0 => problem.dims().rank_of(&RankLocalMapper::remap_rank(
                        &Hyperplane::default(), &problem, r)),
                    1 => problem.dims().rank_of(&RankLocalMapper::remap_rank(&KdTree, &problem, r)),
                    _ => problem.dims().rank_of(&RankLocalMapper::remap_rank(
                        &StencilStrips, &problem, r)),
                })
                .collect();
            prop_assert_eq!(mapping.position_of_rank_slice(), &rank_local[..]);
        }
    }

    /// Parallel and sequential partitioner runs with the same seed produce
    /// identical assignments.
    #[test]
    fn partitioner_parallel_matches_sequential(
        rows in 2u32..8,
        cols in 2u32..8,
        parts in 2usize..5,
        seed in 0u64..10,
    ) {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    edges.push((v, v + 1, 1));
                }
                if r + 1 < rows {
                    edges.push((v, v + cols, 1));
                }
            }
        }
        let g = Graph::from_edges((rows * cols) as usize, &edges);
        let total = (rows * cols) as usize;
        if total.is_multiple_of(parts) {
            let sizes = vec![total / parts; parts];
            let par = partition(&g, &PartitionConfig::new(sizes.clone()).with_seed(seed)).unwrap();
            let seq = partition(
                &g,
                &PartitionConfig::new(sizes).with_seed(seed).with_parallel(false),
            )
            .unwrap();
            prop_assert_eq!(par, seq);
        }
    }
}

/// Same-seed determinism of the full VieM-style pipeline on an instance large
/// enough (4800 vertices) to take the genuinely parallel recursion path.
#[test]
fn graph_mapper_parallel_path_is_deterministic() {
    let problem = MappingProblem::new(
        Dims::from_slice(&[80, 60]),
        Stencil::nearest_neighbor(2),
        NodeAllocation::homogeneous(40, 120),
    )
    .unwrap();
    let a = GraphMapper::with_effort(5, 0).compute(&problem).unwrap();
    let b = GraphMapper::with_effort(5, 0).compute(&problem).unwrap();
    assert_eq!(a, b);
    assert!(a.respects_allocation(problem.alloc()));
}
