//! Property tests for the parallel mapping engine:
//!
//! * the streaming metrics evaluator (no graph materialisation) agrees bit
//!   for bit with the CSR evaluator on random grids and stencils, periodic
//!   and non-periodic,
//! * the chunked parallel mapping computation agrees with the rank-local
//!   definition (`remap_rank`) for every rank,
//! * the parallel and sequential multilevel partitioner produce identical
//!   results for the same seed,
//! * the parallel k-way swap refinement produces identical partitions for
//!   every thread count (verified across real `RAYON_NUM_THREADS` settings
//!   via subprocesses) and with parallelism disabled outright.

use proptest::prelude::*;
use stencilmap::partition::{partition, refine_kway_with, Graph, PartitionConfig, RefineConfig};
use stencilmap::prelude::*;

fn stencil_for(ndims: usize, choice: u8) -> Stencil {
    match choice % 3 {
        0 => Stencil::nearest_neighbor(ndims),
        1 => Stencil::nearest_neighbor_with_hops(ndims),
        _ => {
            if ndims >= 2 {
                Stencil::component(ndims)
            } else {
                Stencil::nearest_neighbor(ndims)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streaming and CSR evaluation agree exactly on the paper stencils, for
    /// arbitrary grids, node counts and boundary conditions.
    #[test]
    fn streaming_metrics_equal_csr_metrics(
        sizes in proptest::collection::vec(1usize..8, 2..4),
        stencil_choice in 0u8..3,
        periodic in proptest::bool::ANY,
        groups in 1usize..7,
    ) {
        let p: usize = sizes.iter().product();
        if p.is_multiple_of(groups) {
            let dims = Dims::new(sizes).unwrap();
            let stencil = stencil_for(dims.ndims(), stencil_choice);
            let problem = MappingProblem::with_periodicity(
                dims,
                stencil,
                NodeAllocation::homogeneous(groups, p / groups),
                periodic,
            )
            .unwrap();
            let graph = CartGraph::build(problem.dims(), problem.stencil(), periodic);
            for mapping in [
                Blocked.compute(&problem).unwrap(),
                KdTree.compute(&problem).unwrap(),
                RandomMapping::with_seed(9).compute(&problem).unwrap(),
            ] {
                let csr = metrics::evaluate(&graph, &mapping);
                let streaming = metrics::evaluate_streaming(
                    problem.dims(),
                    problem.stencil(),
                    periodic,
                    &mapping,
                );
                prop_assert_eq!(&csr, &streaming);
            }
        }
    }

    /// Streaming evaluation also agrees on arbitrary (random-offset)
    /// stencils, not just the paper's three families.
    #[test]
    fn streaming_metrics_equal_csr_on_random_stencils(
        d0 in 1usize..7,
        d1 in 1usize..7,
        raw in proptest::collection::vec(-3i64..4, 2..12),
        periodic in proptest::bool::ANY,
    ) {
        let usable = raw.len() - raw.len() % 2;
        if usable >= 2 {
            if let Ok(stencil) = Stencil::from_flat(2, &raw[..usable]) {
                let p = d0 * d1;
                let problem = MappingProblem::with_periodicity(
                    Dims::from_slice(&[d0, d1]),
                    stencil,
                    NodeAllocation::homogeneous(1, p),
                    periodic,
                )
                .unwrap();
                let graph = CartGraph::build(problem.dims(), problem.stencil(), periodic);
                let mapping = Blocked.compute(&problem).unwrap();
                let csr = metrics::evaluate(&graph, &mapping);
                let streaming = metrics::evaluate_streaming(
                    problem.dims(),
                    problem.stencil(),
                    periodic,
                    &mapping,
                );
                prop_assert_eq!(&csr, &streaming);
            }
        }
    }

    /// The chunked parallel full-mapping computation matches the rank-local
    /// definition for every rank (and is therefore independent of chunking
    /// and thread count).
    #[test]
    fn parallel_mapping_matches_rank_local_definition(
        d0 in 2usize..10,
        d1 in 2usize..10,
        groups in 1usize..6,
        alg in 0u8..3,
    ) {
        let p = d0 * d1;
        if p % groups == 0 {
            let problem = MappingProblem::new(
                Dims::from_slice(&[d0, d1]),
                Stencil::nearest_neighbor(2),
                NodeAllocation::homogeneous(groups, p / groups),
            )
            .unwrap();
            let mapper: Box<dyn Mapper> = match alg % 3 {
                0 => Box::new(Hyperplane::default()),
                1 => Box::new(KdTree),
                _ => Box::new(StencilStrips),
            };
            let mapping = mapper.compute(&problem).unwrap();
            let rank_local: Vec<usize> = (0..p)
                .map(|r| match alg % 3 {
                    0 => problem.dims().rank_of(&RankLocalMapper::remap_rank(
                        &Hyperplane::default(), &problem, r)),
                    1 => problem.dims().rank_of(&RankLocalMapper::remap_rank(&KdTree, &problem, r)),
                    _ => problem.dims().rank_of(&RankLocalMapper::remap_rank(
                        &StencilStrips, &problem, r)),
                })
                .collect();
            prop_assert_eq!(mapping.position_of_rank_slice(), &rank_local[..]);
        }
    }

    /// Parallel and sequential partitioner runs with the same seed produce
    /// identical assignments.
    #[test]
    fn partitioner_parallel_matches_sequential(
        rows in 2u32..8,
        cols in 2u32..8,
        parts in 2usize..5,
        seed in 0u64..10,
    ) {
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let v = r * cols + c;
                if c + 1 < cols {
                    edges.push((v, v + 1, 1));
                }
                if r + 1 < rows {
                    edges.push((v, v + cols, 1));
                }
            }
        }
        let g = Graph::from_edges((rows * cols) as usize, &edges);
        let total = (rows * cols) as usize;
        if total.is_multiple_of(parts) {
            let sizes = vec![total / parts; parts];
            let par = partition(&g, &PartitionConfig::new(sizes.clone()).with_seed(seed)).unwrap();
            let seq = partition(
                &g,
                &PartitionConfig::new(sizes).with_seed(seed).with_parallel(false),
            )
            .unwrap();
            prop_assert_eq!(par, seq);
        }
    }
}

/// Builds the 48x48 grid instance shared by the refinement determinism
/// tests: a 12-way partition plus its refined variant.
fn refined_grid_partition(parallel: bool) -> (Graph, Vec<u32>) {
    let mut edges = Vec::new();
    for r in 0..48u32 {
        for c in 0..48u32 {
            let v = r * 48 + c;
            if c + 1 < 48 {
                edges.push((v, v + 1, 1));
            }
            if r + 1 < 48 {
                edges.push((v, v + 48, 1));
            }
        }
    }
    let g = Graph::from_edges(48 * 48, &edges);
    let cfg = PartitionConfig::new(vec![192; 12])
        .with_seed(3)
        .with_parallel(parallel);
    let mut part = partition(&g, &cfg).unwrap();
    refine_kway_with(
        &g,
        &mut part,
        &RefineConfig::new(5, 17).with_parallel(parallel),
    );
    (g, part)
}

/// `RefineConfig::parallel = false` (alongside `PartitionConfig::parallel =
/// false`) reproduces the parallel sweep's result exactly.
#[test]
fn refine_kway_sequential_flag_matches_parallel_exactly() {
    let (g, par) = refined_grid_partition(true);
    let (_, seq) = refined_grid_partition(false);
    assert_eq!(par, seq);
    assert_eq!(g.part_weights(&par, 12), vec![192u64; 12]);
}

/// The parallel `refine_kway` yields identical partitions for
/// `RAYON_NUM_THREADS` ∈ {1, 2, 4}.  The vendored rayon reads the variable
/// once per process, so each thread count runs in a child process (this same
/// test re-invoked with `STENCILMAP_DETERMINISM_CHILD` set) that prints a
/// fingerprint of the refined partition.
#[test]
fn refine_kway_identical_across_thread_counts() {
    const CHILD_VAR: &str = "STENCILMAP_DETERMINISM_CHILD";
    if std::env::var(CHILD_VAR).is_ok() {
        let (_, part) = refined_grid_partition(true);
        // FNV-1a over the assignment
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &p in &part {
            h ^= p as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        println!("fingerprint:{h:016x}");
        return;
    }
    let exe = std::env::current_exe().expect("test executable path");
    let mut fingerprints = Vec::new();
    for threads in ["1", "2", "4"] {
        let out = std::process::Command::new(&exe)
            .args([
                "refine_kway_identical_across_thread_counts",
                "--exact",
                "--nocapture",
                "--test-threads=1",
            ])
            .env(CHILD_VAR, "1")
            .env("RAYON_NUM_THREADS", threads)
            .output()
            .expect("spawning the child test process");
        assert!(
            out.status.success(),
            "child with RAYON_NUM_THREADS={threads} failed:\n{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        // with --nocapture the marker may share a line with harness output
        let fp = stdout
            .lines()
            .find_map(|l| l.split("fingerprint:").nth(1))
            .unwrap_or_else(|| panic!("no fingerprint in child output:\n{stdout}"))
            .split_whitespace()
            .next()
            .expect("fingerprint value")
            .to_string();
        fingerprints.push((threads, fp));
    }
    let (_, reference) = &fingerprints[0];
    for (threads, fp) in &fingerprints {
        assert_eq!(
            fp, reference,
            "RAYON_NUM_THREADS={threads} produced a different partition"
        );
    }
}

/// Same-seed determinism of the full VieM-style pipeline on an instance large
/// enough (4800 vertices) to take the genuinely parallel recursion path.
#[test]
fn graph_mapper_parallel_path_is_deterministic() {
    let problem = MappingProblem::new(
        Dims::from_slice(&[80, 60]),
        Stencil::nearest_neighbor(2),
        NodeAllocation::homogeneous(40, 120),
    )
    .unwrap();
    let a = GraphMapper::with_effort(5, 0).compute(&problem).unwrap();
    let b = GraphMapper::with_effort(5, 0).compute(&problem).unwrap();
    assert_eq!(a, b);
    assert!(a.respects_allocation(problem.alloc()));
}
