//! Instance-set generation and reduction analysis (Section VI-C / Fig. 8).
//!
//! The paper evaluates mapping quality on a machine-independent instance set
//! `I = N × P × D` with `N = {10, 13, …, 31}` nodes,
//! `P = {10, 13, …, 31} ∪ {32}` processes per node and `D = {2, 3}`
//! dimensions (144 instances).  For every instance and algorithm, the
//! *reduction* `C_X / C_blocked` of `Jsum` and `Jmax` over the blocked
//! mapping is recorded; Fig. 8 plots the distribution of these reductions.

use crate::baselines::Blocked;
use crate::metrics::evaluate;
use crate::problem::{Mapper, MappingProblem};
use rayon::prelude::*;
use stencil_grid::{dims_create, CartGraph, Dims, NodeAllocation, Stencil};

/// The three stencil families of the paper (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StencilKind {
    /// Nearest neighbor in every dimension.
    NearestNeighbor,
    /// Nearest neighbor plus 2- and 3-hops along the first dimension.
    NearestNeighborHops,
    /// Nearest neighbor in every dimension except the last (component).
    Component,
}

impl StencilKind {
    /// Builds the stencil for `ndims` dimensions.
    pub fn build(&self, ndims: usize) -> Stencil {
        match self {
            StencilKind::NearestNeighbor => Stencil::nearest_neighbor(ndims),
            StencilKind::NearestNeighborHops => Stencil::nearest_neighbor_with_hops(ndims),
            StencilKind::Component => Stencil::component(ndims),
        }
    }

    /// All stencil kinds in the order used by the paper's figures.
    pub fn all() -> [StencilKind; 3] {
        [
            StencilKind::NearestNeighbor,
            StencilKind::NearestNeighborHops,
            StencilKind::Component,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            StencilKind::NearestNeighbor => "Nearest neighbor",
            StencilKind::NearestNeighborHops => "Nearest neighbor with hops",
            StencilKind::Component => "Component",
        }
    }
}

/// One instance of the evaluation set: a node count, a per-node process
/// count and a dimensionality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InstanceSpec {
    /// Number of compute nodes `N`.
    pub nodes: usize,
    /// Number of processes per node `n`.
    pub procs_per_node: usize,
    /// Grid dimensionality `d`.
    pub ndims: usize,
}

impl InstanceSpec {
    /// Total number of processes of the instance.
    pub fn num_processes(&self) -> usize {
        self.nodes * self.procs_per_node
    }

    /// Builds the mapping problem for this instance and stencil kind, using
    /// an `MPI_Dims_create`-style balanced grid (Section VI-B).
    pub fn build_problem(&self, stencil: StencilKind) -> MappingProblem {
        let dims = dims_create(self.num_processes(), self.ndims);
        MappingProblem::new(
            Dims::new(dims).expect("dims_create returns valid dims"),
            stencil.build(self.ndims),
            NodeAllocation::homogeneous(self.nodes, self.procs_per_node),
        )
        .expect("instance specification is consistent")
    }
}

/// The full instance set of Section VI-C (144 instances).
pub fn paper_instance_set() -> Vec<InstanceSpec> {
    let nodes: Vec<usize> = (10..=31).step_by(3).collect();
    let mut procs: Vec<usize> = (10..=31).step_by(3).collect();
    procs.push(32);
    let mut out = Vec::new();
    for &ndims in &[2usize, 3] {
        for &n in &nodes {
            for &p in &procs {
                out.push(InstanceSpec {
                    nodes: n,
                    procs_per_node: p,
                    ndims,
                });
            }
        }
    }
    out
}

/// A smaller instance set for quick experiments and CI runs.
pub fn small_instance_set() -> Vec<InstanceSpec> {
    let mut out = Vec::new();
    for &ndims in &[2usize, 3] {
        for &n in &[4usize, 6, 8] {
            for &p in &[8usize, 12, 16] {
                out.push(InstanceSpec {
                    nodes: n,
                    procs_per_node: p,
                    ndims,
                });
            }
        }
    }
    out
}

/// The reduction of one algorithm over the blocked mapping on one instance.
#[derive(Debug, Clone)]
pub struct ReductionRecord {
    /// The instance.
    pub instance: InstanceSpec,
    /// The stencil kind.
    pub stencil: StencilKind,
    /// Name of the algorithm.
    pub algorithm: String,
    /// `Jsum` of the algorithm's mapping.
    pub j_sum: u64,
    /// `Jmax` of the algorithm's mapping.
    pub j_max: u64,
    /// `Jsum(algorithm) / Jsum(blocked)`, the Fig. 8 reduction (lower is better).
    pub j_sum_reduction: f64,
    /// `Jmax(algorithm) / Jmax(blocked)`.
    pub j_max_reduction: f64,
}

/// Computes reductions over the blocked mapping for every instance and every
/// mapper, in parallel over the instances.
///
/// Mappers that are not applicable to an instance (e.g. `Nodecart` on a
/// heterogeneous allocation) are silently skipped, as in the paper.
pub fn reductions_over_blocked(
    instances: &[InstanceSpec],
    stencil: StencilKind,
    mappers: &[Box<dyn Mapper>],
) -> Vec<ReductionRecord> {
    instances
        .par_iter()
        .flat_map_iter(|spec| {
            let problem = spec.build_problem(stencil);
            let graph = CartGraph::build(problem.dims(), problem.stencil(), problem.periodic());
            let blocked = evaluate(&graph, &Blocked.compute(&problem).expect("blocked maps"));
            let mut records = Vec::new();
            for mapper in mappers {
                if let Ok(mapping) = mapper.compute(&problem) {
                    let cost = evaluate(&graph, &mapping);
                    let (rs, rm) = cost.reduction_over(&blocked);
                    records.push(ReductionRecord {
                        instance: *spec,
                        stencil,
                        algorithm: mapper.name().to_string(),
                        j_sum: cost.j_sum,
                        j_max: cost.j_max,
                        j_sum_reduction: rs,
                        j_max_reduction: rm,
                    });
                }
            }
            records
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperplane::Hyperplane;
    use crate::kdtree::KdTree;
    use crate::stencil_strips::StencilStrips;

    #[test]
    fn paper_instance_set_has_144_instances() {
        let set = paper_instance_set();
        assert_eq!(set.len(), 144);
        // bounds of the sets
        assert!(set.iter().all(|s| (10..=31).contains(&s.nodes)));
        assert!(set.iter().all(|s| (10..=32).contains(&s.procs_per_node)));
        assert!(set.iter().all(|s| s.ndims == 2 || s.ndims == 3));
        // both dimensionalities present
        assert_eq!(set.iter().filter(|s| s.ndims == 2).count(), 72);
    }

    #[test]
    fn instance_builds_balanced_grid() {
        let spec = InstanceSpec {
            nodes: 10,
            procs_per_node: 10,
            ndims: 2,
        };
        let p = spec.build_problem(StencilKind::NearestNeighbor);
        assert_eq!(p.num_processes(), 100);
        assert_eq!(p.dims().as_slice(), &[10, 10]);
        let p3 = InstanceSpec {
            nodes: 8,
            procs_per_node: 8,
            ndims: 3,
        }
        .build_problem(StencilKind::Component);
        assert_eq!(p3.dims().as_slice(), &[4, 4, 4]);
        assert_eq!(p3.stencil().k(), 4);
    }

    #[test]
    fn stencil_kind_builders() {
        assert_eq!(StencilKind::NearestNeighbor.build(3).k(), 6);
        assert_eq!(StencilKind::NearestNeighborHops.build(2).k(), 8);
        assert_eq!(StencilKind::Component.build(3).k(), 4);
        assert_eq!(StencilKind::all().len(), 3);
        assert_eq!(StencilKind::Component.name(), "Component");
    }

    #[test]
    fn reductions_show_improvement_on_small_set() {
        let instances = vec![
            InstanceSpec {
                nodes: 6,
                procs_per_node: 10,
                ndims: 2,
            },
            InstanceSpec {
                nodes: 8,
                procs_per_node: 12,
                ndims: 3,
            },
        ];
        let mappers: Vec<Box<dyn Mapper>> = vec![
            Box::new(Hyperplane::default()),
            Box::new(KdTree),
            Box::new(StencilStrips),
        ];
        let records = reductions_over_blocked(&instances, StencilKind::NearestNeighbor, &mappers);
        assert_eq!(records.len(), instances.len() * mappers.len());
        // the median reduction of the new algorithms is below 1 (improvement)
        let mean: f64 =
            records.iter().map(|r| r.j_sum_reduction).sum::<f64>() / records.len() as f64;
        assert!(mean < 1.0, "mean reduction {mean}");
        for r in &records {
            assert!(r.j_sum_reduction.is_finite());
            assert!(r.j_max_reduction >= 0.0);
        }
    }
}
