//! Mapping quality metrics: `Jsum`, `Jmax` and per-node communication loads.
//!
//! Following Section II of the paper, the cost function
//! `σ(u, v) ∈ {0, 1}` indicates whether the directed communication edge
//! `(u, v)` of the Cartesian graph crosses a compute-node boundary.
//! `Jsum = Σ_{(u,v) ∈ E} σ(u,v)` is the total amount of inter-node
//! communication and `Jmax` is the number of outgoing inter-node edges of the
//! *bottleneck* node (the node with the most outgoing inter-node edges).
//!
//! Two evaluators are provided:
//!
//! * [`evaluate`] walks a materialised [`CartGraph`] (CSR) — use it when the
//!   graph already exists for other purposes,
//! * [`evaluate_streaming`] enumerates the stencil neighbors of every grid
//!   position on the fly from [`Dims`] + [`Stencil`], so figure-scale runs
//!   score a mapping in `O(p)` memory without ever materialising the
//!   `O(p·k)` graph.  Both evaluators agree bit for bit.

use crate::mapping::Mapping;
use rayon::prelude::*;
use stencil_grid::{CartGraph, Dims, Stencil};

/// The communication cost of a mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingCost {
    /// Total number of directed inter-node communication edges (`Jsum`).
    pub j_sum: u64,
    /// Outgoing inter-node edges of the bottleneck node (`Jmax`).
    pub j_max: u64,
    /// Outgoing inter-node edges of every node (`j_max = max(per_node_egress)`).
    pub per_node_egress: Vec<u64>,
}

impl MappingCost {
    /// Index of the bottleneck node.
    pub fn bottleneck_node(&self) -> usize {
        self.per_node_egress
            .iter()
            .enumerate()
            .max_by_key(|&(_, &e)| e)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Average egress per node.
    pub fn mean_egress(&self) -> f64 {
        if self.per_node_egress.is_empty() {
            0.0
        } else {
            self.j_sum as f64 / self.per_node_egress.len() as f64
        }
    }

    /// Reduction of this cost relative to a reference cost (typically the
    /// blocked mapping), as used in Fig. 8 of the paper:
    /// `(Jsum_self / Jsum_ref, Jmax_self / Jmax_ref)`.
    ///
    /// Values below 1 mean an improvement over the reference.  If the
    /// reference cost is zero, the reduction is reported as 1 when this cost
    /// is also zero and as infinity otherwise.
    pub fn reduction_over(&self, reference: &MappingCost) -> (f64, f64) {
        (
            ratio(self.j_sum, reference.j_sum),
            ratio(self.j_max, reference.j_max),
        )
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        if a == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a as f64 / b as f64
    }
}

/// Evaluates the communication cost of a mapping on the given Cartesian
/// communication graph.
///
/// # Panics
///
/// Panics if the graph and the mapping were built for different grid sizes.
pub fn evaluate(graph: &CartGraph, mapping: &Mapping) -> MappingCost {
    assert_eq!(
        graph.num_vertices(),
        mapping.num_processes(),
        "graph and mapping must describe the same grid"
    );
    let mut per_node_egress = vec![0u64; mapping.num_nodes()];
    let mut j_sum = 0u64;
    for u in 0..graph.num_vertices() {
        let nu = mapping.node_of_position(u);
        for &v in graph.neighbors(u) {
            let nv = mapping.node_of_position(v as usize);
            if nu != nv {
                j_sum += 1;
                per_node_egress[nu] += 1;
            }
        }
    }
    let j_max = per_node_egress.iter().copied().max().unwrap_or(0);
    MappingCost {
        j_sum,
        j_max,
        per_node_egress,
    }
}

/// Evaluates the communication cost of a mapping directly from the grid
/// dimensions and the stencil, without materialising the `O(p·k)`
/// communication graph.
///
/// Neighbors are enumerated on the fly (offsets applied to each position's
/// coordinate with periodic wrap-around when requested); self-targets are
/// dropped exactly as [`CartGraph::try_build`] drops them, so the result is
/// bit-for-bit identical to [`evaluate`] on the corresponding graph.  The
/// position range is scored in parallel chunks, each with its own dense
/// per-node egress accumulator and a reused scratch coordinate, and the
/// chunk accumulators are merged at the end — `O(p)` work, `O(p)` memory,
/// deterministic for every thread count.
///
/// # Panics
///
/// Panics if the stencil dimensionality does not match the grid or the
/// mapping was built for a different grid size.
pub fn evaluate_streaming(
    dims: &Dims,
    stencil: &Stencil,
    periodic: bool,
    mapping: &Mapping,
) -> MappingCost {
    stencil
        .check_dims(dims)
        .expect("stencil and grid dimensionality must match");
    let p = dims.volume();
    assert_eq!(
        p,
        mapping.num_processes(),
        "grid and mapping must describe the same number of processes"
    );
    let num_nodes = mapping.num_nodes();
    let chunk_size = (p / (rayon::current_num_threads() * 4).max(1))
        .clamp(1024, 1 << 16)
        .min(p.max(1));
    let num_chunks = p.div_ceil(chunk_size).max(1);

    let partials: Vec<Vec<u64>> = (0..num_chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * chunk_size;
            let hi = ((c + 1) * chunk_size).min(p);
            let mut egress = vec![0u64; num_nodes];
            let mut coord = vec![0usize; dims.ndims()];
            for u in lo..hi {
                stencil_grid::coords::rank_to_coord_into(u, dims.as_slice(), &mut coord);
                let nu = mapping.node_of_position(u);
                for off in stencil.offsets() {
                    if let Some(v) = dims.rank_after_offset(&coord, off, periodic) {
                        if v != u && mapping.node_of_position(v) != nu {
                            egress[nu] += 1;
                        }
                    }
                }
            }
            egress
        })
        .collect();

    let mut per_node_egress = vec![0u64; num_nodes];
    for partial in &partials {
        for (total, x) in per_node_egress.iter_mut().zip(partial) {
            *total += x;
        }
    }
    let j_sum = per_node_egress.iter().sum();
    let j_max = per_node_egress.iter().copied().max().unwrap_or(0);
    MappingCost {
        j_sum,
        j_max,
        per_node_egress,
    }
}

/// Per-node traffic matrix entry: number of directed edges from `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeTraffic {
    /// Source compute node.
    pub from: usize,
    /// Destination compute node.
    pub to: usize,
    /// Number of directed communication edges between the two nodes.
    pub edges: u64,
}

/// Computes the inter-node traffic matrix (sparse, only non-zero entries) of
/// a mapping.  Used by the cluster simulator to derive link loads.
///
/// The accumulation walks the positions grouped by their source node (every
/// node owns a contiguous rank block, so its positions are enumerated via the
/// rank permutation) and accumulates one dense per-node row at a time —
/// `O(N)` scratch reused across rows instead of a hash map keyed by node
/// pairs.  Entries come out sorted by `(from, to)` by construction.
pub fn node_traffic(graph: &CartGraph, mapping: &Mapping) -> Vec<NodeTraffic> {
    assert_eq!(
        graph.num_vertices(),
        mapping.num_processes(),
        "graph and mapping must describe the same grid"
    );
    let num_nodes = mapping.num_nodes();
    let mut row = vec![0u64; num_nodes];
    let mut touched: Vec<usize> = Vec::new();
    let mut out: Vec<NodeTraffic> = Vec::new();
    for from in 0..num_nodes {
        for rank in mapping_ranks_of_node(mapping, from) {
            let u = mapping.position_of_rank(rank);
            for &v in graph.neighbors(u) {
                let to = mapping.node_of_position(v as usize);
                if to != from {
                    if row[to] == 0 {
                        touched.push(to);
                    }
                    row[to] += 1;
                }
            }
        }
        touched.sort_unstable();
        for &to in &touched {
            out.push(NodeTraffic {
                from,
                to,
                edges: row[to],
            });
            row[to] = 0;
        }
        touched.clear();
    }
    out
}

/// The contiguous rank range owned by `node` (ranks are allocated to nodes in
/// blocks; see `NodeAllocation`).  Derived from the mapping itself so the
/// metrics module needs no allocation argument.
fn mapping_ranks_of_node(mapping: &Mapping, node: usize) -> std::ops::Range<usize> {
    // Scan is avoided: node blocks are contiguous in rank space, so binary
    // search the boundaries via node_of_position(position_of_rank(r)).
    let p = mapping.num_processes();
    let node_of_rank = |r: usize| mapping.node_of_position(mapping.position_of_rank(r));
    let start = partition_point(p, |r| node_of_rank(r) < node);
    let end = partition_point(p, |r| node_of_rank(r) <= node);
    start..end
}

/// First index in `0..p` for which `pred` turns false (`pred` must be
/// monotone).
fn partition_point(p: usize, pred: impl Fn(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (0usize, p);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Counts, for every process (grid position), how many of its communication
/// partners live on a different node.  The maximum of this vector is the
/// per-process inter-node degree used by the communication time model.
pub fn per_process_offnode_degree(graph: &CartGraph, mapping: &Mapping) -> Vec<u32> {
    (0..graph.num_vertices())
        .map(|u| {
            let nu = mapping.node_of_position(u);
            graph
                .neighbors(u)
                .iter()
                .filter(|&&v| mapping.node_of_position(v as usize) != nu)
                .count() as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Blocked;
    use crate::problem::{Mapper, MappingProblem};
    use proptest::prelude::*;
    use stencil_grid::{Dims, NodeAllocation, Stencil};

    fn paper_headline_problem() -> (MappingProblem, CartGraph) {
        let p = MappingProblem::new(
            Dims::from_slice(&[50, 48]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(50, 48),
        )
        .unwrap();
        let g = CartGraph::build(p.dims(), p.stencil(), false);
        (p, g)
    }

    #[test]
    fn blocked_cost_matches_paper_figure6_nearest_neighbor() {
        // Fig. 6 (left column, top): Standard (blocked) Jsum = 4704, Jmax = 96.
        let (p, g) = paper_headline_problem();
        let m = Blocked.compute(&p).unwrap();
        let c = evaluate(&g, &m);
        assert_eq!(c.j_sum, 4704);
        assert_eq!(c.j_max, 96);
    }

    #[test]
    fn blocked_cost_matches_paper_figure6_hops_and_component() {
        // Fig. 6 middle/bottom: Standard Jsum = 13824 (hops), 4704 (component).
        let dims = Dims::from_slice(&[50, 48]);
        let alloc = NodeAllocation::homogeneous(50, 48);
        let hops = MappingProblem::new(
            dims.clone(),
            Stencil::nearest_neighbor_with_hops(2),
            alloc.clone(),
        )
        .unwrap();
        let g = CartGraph::build(hops.dims(), hops.stencil(), false);
        let c = evaluate(&g, &Blocked.compute(&hops).unwrap());
        assert_eq!(c.j_sum, 13824);
        assert_eq!(c.j_max, 288);

        let comp = MappingProblem::new(dims, Stencil::component(2), alloc).unwrap();
        let g = CartGraph::build(comp.dims(), comp.stencil(), false);
        let c = evaluate(&g, &Blocked.compute(&comp).unwrap());
        assert_eq!(c.j_sum, 4704);
        assert_eq!(c.j_max, 96);
    }

    #[test]
    fn blocked_cost_matches_paper_figure7_blocked_scores() {
        // Fig. 7 (N = 100, grid 75 x 64): Standard Jsum = 9622? The paper
        // reports 9622 for nearest neighbor.  Our blocked mapping assigns
        // ranks row-major over a 75x64 grid with 48 ranks per node, which is
        // exactly the "Standard" mapping of the paper.
        let p = MappingProblem::new(
            Dims::from_slice(&[75, 64]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(100, 48),
        )
        .unwrap();
        let g = CartGraph::build(p.dims(), p.stencil(), false);
        let c = evaluate(&g, &Blocked.compute(&p).unwrap());
        assert_eq!(c.j_sum, 9622);
        // component stencil: Standard Jsum = 9472
        let p2 = MappingProblem::new(
            Dims::from_slice(&[75, 64]),
            Stencil::component(2),
            NodeAllocation::homogeneous(100, 48),
        )
        .unwrap();
        let g2 = CartGraph::build(p2.dims(), p2.stencil(), false);
        let c2 = evaluate(&g2, &Blocked.compute(&p2).unwrap());
        assert_eq!(c2.j_sum, 9472);
        assert_eq!(c2.j_max, 96);
        // nearest neighbor with hops: Standard Jsum = 28182, Jmax = 290
        let p3 = MappingProblem::new(
            Dims::from_slice(&[75, 64]),
            Stencil::nearest_neighbor_with_hops(2),
            NodeAllocation::homogeneous(100, 48),
        )
        .unwrap();
        let g3 = CartGraph::build(p3.dims(), p3.stencil(), false);
        let c3 = evaluate(&g3, &Blocked.compute(&p3).unwrap());
        assert_eq!(c3.j_sum, 28182);
        assert_eq!(c3.j_max, 290);
        let _ = c;
    }

    #[test]
    fn jsum_is_sum_of_per_node_egress() {
        let (p, g) = paper_headline_problem();
        let c = evaluate(&g, &Blocked.compute(&p).unwrap());
        assert_eq!(c.per_node_egress.iter().sum::<u64>(), c.j_sum);
        assert_eq!(c.per_node_egress.iter().copied().max().unwrap(), c.j_max);
        assert!(c.mean_egress() > 0.0);
    }

    #[test]
    fn single_node_has_zero_cost() {
        let p = MappingProblem::new(
            Dims::from_slice(&[4, 4]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(1, 16),
        )
        .unwrap();
        let g = CartGraph::build(p.dims(), p.stencil(), false);
        let c = evaluate(&g, &Blocked.compute(&p).unwrap());
        assert_eq!(c.j_sum, 0);
        assert_eq!(c.j_max, 0);
        assert_eq!(c.bottleneck_node(), 0);
    }

    #[test]
    fn reduction_over_blocked() {
        let a = MappingCost {
            j_sum: 50,
            j_max: 5,
            per_node_egress: vec![5, 45],
        };
        let b = MappingCost {
            j_sum: 100,
            j_max: 10,
            per_node_egress: vec![10, 90],
        };
        let (rs, rm) = a.reduction_over(&b);
        assert!((rs - 0.5).abs() < 1e-12);
        assert!((rm - 0.5).abs() < 1e-12);
        let zero = MappingCost {
            j_sum: 0,
            j_max: 0,
            per_node_egress: vec![0, 0],
        };
        assert_eq!(zero.reduction_over(&zero), (1.0, 1.0));
        assert_eq!(a.reduction_over(&zero), (f64::INFINITY, f64::INFINITY));
        assert_eq!(b.bottleneck_node(), 1);
    }

    #[test]
    fn node_traffic_is_symmetric_for_symmetric_stencils() {
        let (p, g) = paper_headline_problem();
        let m = Blocked.compute(&p).unwrap();
        let t = node_traffic(&g, &m);
        let total: u64 = t.iter().map(|e| e.edges).sum();
        assert_eq!(total, evaluate(&g, &m).j_sum);
        for e in &t {
            let rev = t
                .iter()
                .find(|x| x.from == e.to && x.to == e.from)
                .expect("reverse traffic entry");
            assert_eq!(rev.edges, e.edges);
        }
    }

    #[test]
    fn per_process_offnode_degree_sums_to_jsum() {
        let (p, g) = paper_headline_problem();
        let m = Blocked.compute(&p).unwrap();
        let deg = per_process_offnode_degree(&g, &m);
        let total: u64 = deg.iter().map(|&d| d as u64).sum();
        assert_eq!(total, evaluate(&g, &m).j_sum);
        // In the blocked mapping of the 50x48 NN instance each process has at
        // most 2 off-node neighbors (up/down).
        assert!(deg.iter().all(|&d| d <= 2));
    }

    #[test]
    fn streaming_matches_csr_on_paper_instances() {
        let (p, g) = paper_headline_problem();
        for mapping in [
            Blocked.compute(&p).unwrap(),
            crate::hyperplane::Hyperplane::default()
                .compute(&p)
                .unwrap(),
            crate::stencil_strips::StencilStrips.compute(&p).unwrap(),
        ] {
            let csr = evaluate(&g, &mapping);
            let streaming = evaluate_streaming(p.dims(), p.stencil(), false, &mapping);
            assert_eq!(csr, streaming);
        }
    }

    #[test]
    fn streaming_matches_csr_periodic() {
        let p = MappingProblem::with_periodicity(
            Dims::from_slice(&[6, 5]),
            Stencil::nearest_neighbor_with_hops(2),
            NodeAllocation::homogeneous(6, 5),
            true,
        )
        .unwrap();
        let g = CartGraph::build(p.dims(), p.stencil(), true);
        let m = Blocked.compute(&p).unwrap();
        assert_eq!(
            evaluate(&g, &m),
            evaluate_streaming(p.dims(), p.stencil(), true, &m)
        );
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn streaming_rejects_mismatched_stencil() {
        let (p, _) = paper_headline_problem();
        let m = Blocked.compute(&p).unwrap();
        evaluate_streaming(p.dims(), &Stencil::nearest_neighbor(3), false, &m);
    }

    proptest! {
        #[test]
        fn prop_jmax_bounds(nodes in 2usize..6, per in 2usize..6) {
            let p = MappingProblem::new(
                Dims::from_slice(&[nodes, per]),
                Stencil::nearest_neighbor(2),
                NodeAllocation::homogeneous(nodes, per),
            ).unwrap();
            let g = CartGraph::build(p.dims(), p.stencil(), false);
            let c = evaluate(&g, &Blocked.compute(&p).unwrap());
            // Jmax <= Jsum <= N * Jmax
            prop_assert!(c.j_max <= c.j_sum);
            prop_assert!(c.j_sum <= c.j_max * nodes as u64);
        }
    }
}
