//! Mapping quality metrics: `Jsum`, `Jmax` and per-node communication loads.
//!
//! Following Section II of the paper, the cost function
//! `σ(u, v) ∈ {0, 1}` indicates whether the directed communication edge
//! `(u, v)` of the Cartesian graph crosses a compute-node boundary.
//! `Jsum = Σ_{(u,v) ∈ E} σ(u,v)` is the total amount of inter-node
//! communication and `Jmax` is the number of outgoing inter-node edges of the
//! *bottleneck* node (the node with the most outgoing inter-node edges).

use crate::mapping::Mapping;
use serde::{Deserialize, Serialize};
use stencil_grid::CartGraph;

/// The communication cost of a mapping.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingCost {
    /// Total number of directed inter-node communication edges (`Jsum`).
    pub j_sum: u64,
    /// Outgoing inter-node edges of the bottleneck node (`Jmax`).
    pub j_max: u64,
    /// Outgoing inter-node edges of every node (`j_max = max(per_node_egress)`).
    pub per_node_egress: Vec<u64>,
}

impl MappingCost {
    /// Index of the bottleneck node.
    pub fn bottleneck_node(&self) -> usize {
        self.per_node_egress
            .iter()
            .enumerate()
            .max_by_key(|&(_, &e)| e)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Average egress per node.
    pub fn mean_egress(&self) -> f64 {
        if self.per_node_egress.is_empty() {
            0.0
        } else {
            self.j_sum as f64 / self.per_node_egress.len() as f64
        }
    }

    /// Reduction of this cost relative to a reference cost (typically the
    /// blocked mapping), as used in Fig. 8 of the paper:
    /// `(Jsum_self / Jsum_ref, Jmax_self / Jmax_ref)`.
    ///
    /// Values below 1 mean an improvement over the reference.  If the
    /// reference cost is zero, the reduction is reported as 1 when this cost
    /// is also zero and as infinity otherwise.
    pub fn reduction_over(&self, reference: &MappingCost) -> (f64, f64) {
        (
            ratio(self.j_sum, reference.j_sum),
            ratio(self.j_max, reference.j_max),
        )
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        if a == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a as f64 / b as f64
    }
}

/// Evaluates the communication cost of a mapping on the given Cartesian
/// communication graph.
///
/// # Panics
///
/// Panics if the graph and the mapping were built for different grid sizes.
pub fn evaluate(graph: &CartGraph, mapping: &Mapping) -> MappingCost {
    assert_eq!(
        graph.num_vertices(),
        mapping.num_processes(),
        "graph and mapping must describe the same grid"
    );
    let mut per_node_egress = vec![0u64; mapping.num_nodes()];
    let mut j_sum = 0u64;
    for u in 0..graph.num_vertices() {
        let nu = mapping.node_of_position(u);
        for &v in graph.neighbors(u) {
            let nv = mapping.node_of_position(v as usize);
            if nu != nv {
                j_sum += 1;
                per_node_egress[nu] += 1;
            }
        }
    }
    let j_max = per_node_egress.iter().copied().max().unwrap_or(0);
    MappingCost {
        j_sum,
        j_max,
        per_node_egress,
    }
}

/// Per-node traffic matrix entry: number of directed edges from `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeTraffic {
    /// Source compute node.
    pub from: usize,
    /// Destination compute node.
    pub to: usize,
    /// Number of directed communication edges between the two nodes.
    pub edges: u64,
}

/// Computes the inter-node traffic matrix (sparse, only non-zero entries) of
/// a mapping.  Used by the cluster simulator to derive link loads.
pub fn node_traffic(graph: &CartGraph, mapping: &Mapping) -> Vec<NodeTraffic> {
    use std::collections::HashMap;
    let mut acc: HashMap<(usize, usize), u64> = HashMap::new();
    for u in 0..graph.num_vertices() {
        let nu = mapping.node_of_position(u);
        for &v in graph.neighbors(u) {
            let nv = mapping.node_of_position(v as usize);
            if nu != nv {
                *acc.entry((nu, nv)).or_insert(0) += 1;
            }
        }
    }
    let mut out: Vec<NodeTraffic> = acc
        .into_iter()
        .map(|((from, to), edges)| NodeTraffic { from, to, edges })
        .collect();
    out.sort_by_key(|t| (t.from, t.to));
    out
}

/// Counts, for every process (grid position), how many of its communication
/// partners live on a different node.  The maximum of this vector is the
/// per-process inter-node degree used by the communication time model.
pub fn per_process_offnode_degree(graph: &CartGraph, mapping: &Mapping) -> Vec<u32> {
    (0..graph.num_vertices())
        .map(|u| {
            let nu = mapping.node_of_position(u);
            graph
                .neighbors(u)
                .iter()
                .filter(|&&v| mapping.node_of_position(v as usize) != nu)
                .count() as u32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Blocked;
    use crate::problem::{Mapper, MappingProblem};
    use proptest::prelude::*;
    use stencil_grid::{Dims, NodeAllocation, Stencil};

    fn paper_headline_problem() -> (MappingProblem, CartGraph) {
        let p = MappingProblem::new(
            Dims::from_slice(&[50, 48]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(50, 48),
        )
        .unwrap();
        let g = CartGraph::build(p.dims(), p.stencil(), false);
        (p, g)
    }

    #[test]
    fn blocked_cost_matches_paper_figure6_nearest_neighbor() {
        // Fig. 6 (left column, top): Standard (blocked) Jsum = 4704, Jmax = 96.
        let (p, g) = paper_headline_problem();
        let m = Blocked.compute(&p).unwrap();
        let c = evaluate(&g, &m);
        assert_eq!(c.j_sum, 4704);
        assert_eq!(c.j_max, 96);
    }

    #[test]
    fn blocked_cost_matches_paper_figure6_hops_and_component() {
        // Fig. 6 middle/bottom: Standard Jsum = 13824 (hops), 4704 (component).
        let dims = Dims::from_slice(&[50, 48]);
        let alloc = NodeAllocation::homogeneous(50, 48);
        let hops = MappingProblem::new(
            dims.clone(),
            Stencil::nearest_neighbor_with_hops(2),
            alloc.clone(),
        )
        .unwrap();
        let g = CartGraph::build(hops.dims(), hops.stencil(), false);
        let c = evaluate(&g, &Blocked.compute(&hops).unwrap());
        assert_eq!(c.j_sum, 13824);
        assert_eq!(c.j_max, 288);

        let comp =
            MappingProblem::new(dims, Stencil::component(2), alloc).unwrap();
        let g = CartGraph::build(comp.dims(), comp.stencil(), false);
        let c = evaluate(&g, &Blocked.compute(&comp).unwrap());
        assert_eq!(c.j_sum, 4704);
        assert_eq!(c.j_max, 96);
    }

    #[test]
    fn blocked_cost_matches_paper_figure7_blocked_scores() {
        // Fig. 7 (N = 100, grid 75 x 64): Standard Jsum = 9622? The paper
        // reports 9622 for nearest neighbor.  Our blocked mapping assigns
        // ranks row-major over a 75x64 grid with 48 ranks per node, which is
        // exactly the "Standard" mapping of the paper.
        let p = MappingProblem::new(
            Dims::from_slice(&[75, 64]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(100, 48),
        )
        .unwrap();
        let g = CartGraph::build(p.dims(), p.stencil(), false);
        let c = evaluate(&g, &Blocked.compute(&p).unwrap());
        assert_eq!(c.j_sum, 9622);
        // component stencil: Standard Jsum = 9472
        let p2 = MappingProblem::new(
            Dims::from_slice(&[75, 64]),
            Stencil::component(2),
            NodeAllocation::homogeneous(100, 48),
        )
        .unwrap();
        let g2 = CartGraph::build(p2.dims(), p2.stencil(), false);
        let c2 = evaluate(&g2, &Blocked.compute(&p2).unwrap());
        assert_eq!(c2.j_sum, 9472);
        assert_eq!(c2.j_max, 96);
        // nearest neighbor with hops: Standard Jsum = 28182, Jmax = 290
        let p3 = MappingProblem::new(
            Dims::from_slice(&[75, 64]),
            Stencil::nearest_neighbor_with_hops(2),
            NodeAllocation::homogeneous(100, 48),
        )
        .unwrap();
        let g3 = CartGraph::build(p3.dims(), p3.stencil(), false);
        let c3 = evaluate(&g3, &Blocked.compute(&p3).unwrap());
        assert_eq!(c3.j_sum, 28182);
        assert_eq!(c3.j_max, 290);
        let _ = c;
    }

    #[test]
    fn jsum_is_sum_of_per_node_egress() {
        let (p, g) = paper_headline_problem();
        let c = evaluate(&g, &Blocked.compute(&p).unwrap());
        assert_eq!(c.per_node_egress.iter().sum::<u64>(), c.j_sum);
        assert_eq!(
            c.per_node_egress.iter().copied().max().unwrap(),
            c.j_max
        );
        assert!(c.mean_egress() > 0.0);
    }

    #[test]
    fn single_node_has_zero_cost() {
        let p = MappingProblem::new(
            Dims::from_slice(&[4, 4]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(1, 16),
        )
        .unwrap();
        let g = CartGraph::build(p.dims(), p.stencil(), false);
        let c = evaluate(&g, &Blocked.compute(&p).unwrap());
        assert_eq!(c.j_sum, 0);
        assert_eq!(c.j_max, 0);
        assert_eq!(c.bottleneck_node(), 0);
    }

    #[test]
    fn reduction_over_blocked() {
        let a = MappingCost {
            j_sum: 50,
            j_max: 5,
            per_node_egress: vec![5, 45],
        };
        let b = MappingCost {
            j_sum: 100,
            j_max: 10,
            per_node_egress: vec![10, 90],
        };
        let (rs, rm) = a.reduction_over(&b);
        assert!((rs - 0.5).abs() < 1e-12);
        assert!((rm - 0.5).abs() < 1e-12);
        let zero = MappingCost {
            j_sum: 0,
            j_max: 0,
            per_node_egress: vec![0, 0],
        };
        assert_eq!(zero.reduction_over(&zero), (1.0, 1.0));
        assert_eq!(a.reduction_over(&zero), (f64::INFINITY, f64::INFINITY));
        assert_eq!(b.bottleneck_node(), 1);
    }

    #[test]
    fn node_traffic_is_symmetric_for_symmetric_stencils() {
        let (p, g) = paper_headline_problem();
        let m = Blocked.compute(&p).unwrap();
        let t = node_traffic(&g, &m);
        let total: u64 = t.iter().map(|e| e.edges).sum();
        assert_eq!(total, evaluate(&g, &m).j_sum);
        for e in &t {
            let rev = t
                .iter()
                .find(|x| x.from == e.to && x.to == e.from)
                .expect("reverse traffic entry");
            assert_eq!(rev.edges, e.edges);
        }
    }

    #[test]
    fn per_process_offnode_degree_sums_to_jsum() {
        let (p, g) = paper_headline_problem();
        let m = Blocked.compute(&p).unwrap();
        let deg = per_process_offnode_degree(&g, &m);
        let total: u64 = deg.iter().map(|&d| d as u64).sum();
        assert_eq!(total, evaluate(&g, &m).j_sum);
        // In the blocked mapping of the 50x48 NN instance each process has at
        // most 2 off-node neighbors (up/down).
        assert!(deg.iter().all(|&d| d <= 2));
    }

    proptest! {
        #[test]
        fn prop_jmax_bounds(nodes in 2usize..6, per in 2usize..6) {
            let p = MappingProblem::new(
                Dims::from_slice(&[nodes, per]),
                Stencil::nearest_neighbor(2),
                NodeAllocation::homogeneous(nodes, per),
            ).unwrap();
            let g = CartGraph::build(p.dims(), p.stencil(), false);
            let c = evaluate(&g, &Blocked.compute(&p).unwrap());
            // Jmax <= Jsum <= N * Jmax
            prop_assert!(c.j_max <= c.j_sum);
            prop_assert!(c.j_sum <= c.j_max * nodes as u64);
        }
    }
}
