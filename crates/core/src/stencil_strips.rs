//! The Stencil Strips algorithm (Section V-C).
//!
//! The grid is partitioned into *strips* that run along the largest grid
//! dimension.  The widths of the strips in the remaining dimensions are
//! chosen close to the side lengths of an optimally scaled bounding box of
//! the stencil (e.g. `√n × √n` blocks for the 2-d nearest-neighbor stencil),
//! using the *distortion factors* `α_i = e_i / ᵈᵇ√V_b` derived from the
//! stencil extents.  Ranks are assigned consecutively along the strips, with
//! the traversal direction alternating from strip to strip (serpentine /
//! boustrophedon order, Fig. 5) so that the processes of one node always form
//! a coherent block even when nodes straddle strip boundaries.
//!
//! The per-rank computation needs the strip geometry (`O(k·d)` for the
//! distortion factors) plus a walk over the strips to locate the rank's
//! strip; the number of strips is small (`O(p / n)` at most).

use crate::problem::{MapWorkspace, MappingProblem, RankLocalMapper};
use stencil_grid::{Coord, Stencil};

/// The Stencil Strips mapping algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct StencilStrips;

/// Precomputed strip geometry for a mapping problem.  Exposed for tests and
/// for the documentation example in `DESIGN.md`.
#[derive(Debug, Clone, PartialEq)]
pub struct StripLayout {
    /// Index of the largest dimension (the direction the strips run along).
    pub along: usize,
    /// For every dimension except `along`: the strip widths in that dimension.
    /// `widths[i]` is empty for `i == along`.
    pub widths: Vec<Vec<usize>>,
    /// Real-valued target strip lengths `s_i` (diagnostic; `0` for `along`).
    pub target_lengths: Vec<f64>,
    /// Distortion factors `α_i`.
    pub distortion: Vec<f64>,
}

impl StripLayout {
    /// Computes the strip layout for a grid, stencil and node size `n`.
    pub fn new(dims: &[usize], stencil: &Stencil, n: usize) -> Self {
        let d = dims.len();
        let along = dims
            .iter()
            .enumerate()
            .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0);

        let distortion = distortion_factors(stencil);
        let n = n.max(1) as f64;

        // Real-valued target strip lengths, computed for every dimension
        // except the one the strips run along (Section V-C):
        //   s_i = (α_i · n / Π_{j already fixed} s_j)^(1 / (d − i)).
        let mut target_lengths = vec![0.0f64; d];
        let mut prod_so_far = 1.0f64;
        let mut fixed = 0usize;
        for i in 0..d {
            if i == along {
                continue;
            }
            let exponent = 1.0 / (d - fixed) as f64;
            let raw = (distortion[i] * n / prod_so_far).max(0.0).powf(exponent);
            let s = raw.max(1.0).min(dims[i] as f64);
            target_lengths[i] = s;
            prod_so_far *= s;
            fixed += 1;
        }

        // Integral strip widths: ⌊d_i / s_i⌋ strips; the remainder is
        // absorbed by widening the trailing strips by one (the paper widens
        // only the last strip; spreading the remainder is the same idea with
        // better balance).
        let mut widths = vec![Vec::new(); d];
        for i in 0..d {
            if i == along {
                continue;
            }
            let s = target_lengths[i];
            let count = ((dims[i] as f64 / s).floor() as usize).clamp(1, dims[i]);
            let base = dims[i] / count;
            let rem = dims[i] % count;
            let mut w = Vec::with_capacity(count);
            for j in 0..count {
                w.push(base + usize::from(j >= count - rem));
            }
            widths[i] = w;
        }

        StripLayout {
            along,
            widths,
            target_lengths,
            distortion,
        }
    }

    /// Number of strips along every non-`along` dimension.
    pub fn strip_counts(&self) -> Vec<usize> {
        self.widths
            .iter()
            .enumerate()
            .map(|(i, w)| if i == self.along { 1 } else { w.len() })
            .collect()
    }

    /// Total number of strips.
    pub fn num_strips(&self) -> usize {
        self.strip_counts().iter().product()
    }

    /// Starting offset of strip `j` in dimension `i`.
    fn strip_offset(&self, dim: usize, strip: usize) -> usize {
        self.widths[dim][..strip].iter().sum()
    }

    /// Decodes the `t`-th strip of the serpentine traversal into per-dimension
    /// strip indices (only meaningful for dimensions other than `along`).
    #[cfg(test)]
    fn strip_indices(&self, t: usize) -> Vec<usize> {
        let mut digits = Vec::new();
        self.strip_indices_into(t, &mut digits);
        digits
    }

    /// Allocation-free variant of [`StripLayout::strip_indices`] writing into
    /// a reused buffer.
    fn strip_indices_into(&self, t: usize, digits: &mut Vec<usize>) {
        let d = self.widths.len();
        digits.clear();
        digits.resize(d, 0);
        // Row-major decode (first dimension slowest) …
        let mut rem = t;
        for i in (0..d).rev() {
            let count = if i == self.along {
                1
            } else {
                self.widths[i].len()
            };
            digits[i] = rem % count;
            rem /= count;
        }
        // … then reflect digits whose more significant digits have odd sum,
        // producing a boustrophedon path over the strip grid.
        let mut parity = 0usize;
        for (i, digit) in digits.iter_mut().enumerate() {
            let count = if i == self.along {
                1
            } else {
                self.widths[i].len()
            };
            let original = *digit;
            if parity % 2 == 1 {
                *digit = count - 1 - *digit;
            }
            parity += original;
        }
    }

    /// Cross-section area of the strip with the given per-dimension indices.
    fn strip_area(&self, indices: &[usize]) -> usize {
        let mut area = 1usize;
        for (i, w) in self.widths.iter().enumerate() {
            if i == self.along {
                continue;
            }
            area *= w[indices[i]];
        }
        area
    }
}

impl RankLocalMapper for StencilStrips {
    fn local_name(&self) -> &str {
        "Stencil Strips"
    }

    fn remap_rank(&self, problem: &MappingProblem, rank: usize) -> Coord {
        let dims = problem.dims().as_slice();
        let layout = StripLayout::new(dims, problem.stencil(), problem.node_size_parameter());
        rank_to_coord(dims, &layout, rank)
    }

    fn remap_rank_into(
        &self,
        problem: &MappingProblem,
        rank: usize,
        ws: &mut MapWorkspace,
        out: &mut [usize],
    ) {
        let dims = problem.dims().as_slice();
        // The strip geometry only depends on the problem, not the rank; a
        // workspace serves exactly one problem, so compute it once and reuse
        // it for every rank of the chunk.
        if ws.strips.is_none() {
            ws.strips = Some(StripLayout::new(
                dims,
                problem.stencil(),
                problem.node_size_parameter(),
            ));
        }
        let layout = ws.strips.as_ref().expect("layout cached above");
        rank_to_coord_into(dims, layout, rank, &mut ws.indices, out);
    }
}

/// Computes the coordinate of `rank` under a strip layout.
pub(crate) fn rank_to_coord(dims: &[usize], layout: &StripLayout, rank: usize) -> Coord {
    let mut coord = vec![0usize; dims.len()];
    rank_to_coord_into(dims, layout, rank, &mut Vec::new(), &mut coord);
    coord
}

/// Allocation-free core of [`rank_to_coord`]: decodes `rank` into `out`,
/// using `indices` as the reused strip-index buffer.
pub(crate) fn rank_to_coord_into(
    dims: &[usize],
    layout: &StripLayout,
    rank: usize,
    indices: &mut Vec<usize>,
    out: &mut [usize],
) {
    let along = layout.along;
    let len_along = dims[along];
    let num_strips = layout.num_strips();

    // Locate the strip containing `rank` by walking the serpentine order.
    let mut acc = 0usize;
    let mut strip_t = 0usize;
    layout.strip_indices_into(0, indices);
    let mut area = layout.strip_area(indices);
    loop {
        let volume = area * len_along;
        if rank < acc + volume || strip_t + 1 == num_strips {
            break;
        }
        acc += volume;
        strip_t += 1;
        layout.strip_indices_into(strip_t, indices);
        area = layout.strip_area(indices);
    }
    let local = rank - acc;

    // Position along the strip (slab index) and within the cross-section.
    let slab = (local / area).min(len_along - 1);
    let mut cross = local % area;

    // Alternate the traversal direction along the strip per Fig. 5 so that
    // consecutive strips hand over at the same end of the grid.
    let pos_along = if strip_t.is_multiple_of(2) {
        slab
    } else {
        len_along - 1 - slab
    };

    // Decode the cross-section index (row-major over the non-`along` dims).
    out.fill(0);
    out[along] = pos_along;
    for i in (0..dims.len()).rev() {
        if i == along {
            continue;
        }
        let w = layout.widths[i][indices[i]];
        out[i] = layout.strip_offset(i, indices[i]) + cross % w;
        cross /= w;
    }
}

/// The distortion factors `α_i = e_i / ᵈᵇ√V_b` of Section V-C, where `e_i`
/// are the stencil extents, `db` the number of non-zero extents and `V_b` the
/// bounding-box volume (zero extents contribute a factor of one).
pub fn distortion_factors(stencil: &Stencil) -> Vec<f64> {
    let ext = stencil.extents();
    let db = ext.iter().filter(|&&e| e != 0).count().max(1);
    let vb: f64 = ext
        .iter()
        .map(|&e| if e == 0 { 1.0 } else { e as f64 })
        .product();
    let root = vb.powf(1.0 / db as f64);
    ext.iter().map(|&e| e as f64 / root).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Blocked;
    use crate::metrics::evaluate;
    use crate::problem::{Mapper, MappingProblem};
    use proptest::prelude::*;
    use stencil_grid::{CartGraph, Dims, NodeAllocation, Stencil};

    fn problem(dims: &[usize], nodes: usize, per: usize, stencil: Stencil) -> MappingProblem {
        MappingProblem::new(
            Dims::from_slice(dims),
            stencil,
            NodeAllocation::homogeneous(nodes, per),
        )
        .unwrap()
    }

    #[test]
    fn distortion_factors_match_paper_definitions() {
        // nearest neighbor 2-d: extents [2,2], Vb = 4, db = 2 -> alpha = [1,1]
        let a = distortion_factors(&Stencil::nearest_neighbor(2));
        assert!((a[0] - 1.0).abs() < 1e-12 && (a[1] - 1.0).abs() < 1e-12);
        // hops: extents [6,2], Vb = 12, db = 2 -> alpha = [6/sqrt(12), 2/sqrt(12)]
        let a = distortion_factors(&Stencil::nearest_neighbor_with_hops(2));
        assert!((a[0] - 6.0 / 12f64.sqrt()).abs() < 1e-12);
        assert!((a[1] - 2.0 / 12f64.sqrt()).abs() < 1e-12);
        // component: extents [2,0], Vb = 2, db = 1 -> alpha = [1, 0]
        let a = distortion_factors(&Stencil::component(2));
        assert!((a[0] - 1.0).abs() < 1e-12);
        assert_eq!(a[1], 0.0);
    }

    #[test]
    fn layout_for_headline_instance_gives_square_blocks() {
        // 50x48, n = 48, nearest neighbor: strips run along dim 0 (size 50),
        // the target strip width is sqrt(48) ~ 6.93 -> 6 strips of width 8,
        // so every node becomes a 6 x 8 block.
        let layout = StripLayout::new(&[50, 48], &Stencil::nearest_neighbor(2), 48);
        assert_eq!(layout.along, 0);
        assert_eq!(layout.widths[1], vec![8, 8, 8, 8, 8, 8]);
        assert!((layout.target_lengths[1] - 48f64.sqrt()).abs() < 1e-9);
        assert_eq!(layout.num_strips(), 6);
    }

    #[test]
    fn layout_for_component_stencil_gives_unit_strips() {
        let layout = StripLayout::new(&[50, 48], &Stencil::component(2), 48);
        assert_eq!(layout.along, 0);
        assert_eq!(layout.widths[1].len(), 48);
        assert!(layout.widths[1].iter().all(|&w| w == 1));
    }

    #[test]
    fn matches_paper_scores_nearest_neighbor() {
        // Paper Fig. 6: Stencil Strips Jsum = 1244, Jmax = 28 on 50x48/N=50.
        let prob = problem(&[50, 48], 50, 48, Stencil::nearest_neighbor(2));
        let g = CartGraph::build(prob.dims(), prob.stencil(), false);
        let cost = evaluate(&g, &StencilStrips.compute(&prob).unwrap());
        assert!(cost.j_sum <= 1500, "Jsum = {}", cost.j_sum);
        assert!(cost.j_max <= 32, "Jmax = {}", cost.j_max);
        let blocked = evaluate(&g, &Blocked.compute(&prob).unwrap());
        assert!(cost.j_sum * 3 < blocked.j_sum);
    }

    #[test]
    fn finds_optimal_mapping_for_component_stencil() {
        // Paper: Stencil Strips (like k-d tree) finds the optimal mapping for
        // the component stencil: Jsum = 96, Jmax = 2 (N=50) / 192, 2 (N=100).
        let prob = problem(&[50, 48], 50, 48, Stencil::component(2));
        let g = CartGraph::build(prob.dims(), prob.stencil(), false);
        let cost = evaluate(&g, &StencilStrips.compute(&prob).unwrap());
        assert_eq!(cost.j_sum, 96);
        assert_eq!(cost.j_max, 2);

        let prob = problem(&[75, 64], 100, 48, Stencil::component(2));
        let g = CartGraph::build(prob.dims(), prob.stencil(), false);
        let cost = evaluate(&g, &StencilStrips.compute(&prob).unwrap());
        assert_eq!(cost.j_sum, 192);
        assert_eq!(cost.j_max, 2);
    }

    #[test]
    fn improves_hops_stencil() {
        // Paper: Stencil Strips Jsum = 3868, Jmax = 88 (hops, N=50).
        let prob = problem(&[50, 48], 50, 48, Stencil::nearest_neighbor_with_hops(2));
        let g = CartGraph::build(prob.dims(), prob.stencil(), false);
        let cost = evaluate(&g, &StencilStrips.compute(&prob).unwrap());
        let blocked = evaluate(&g, &Blocked.compute(&prob).unwrap());
        assert!(cost.j_sum < blocked.j_sum / 2);
        assert!(cost.j_sum < 5000, "Jsum = {}", cost.j_sum);
    }

    #[test]
    fn serpentine_keeps_straddling_nodes_coherent() {
        // With strips of width 1 (component stencil) the hand-over between
        // strips must happen at the same end of the grid: the last cell of
        // strip t and the first cell of strip t+1 share the same position
        // along the strip direction.
        let prob = problem(&[6, 4], 4, 6, Stencil::component(2));
        let m = StencilStrips.compute(&prob).unwrap();
        // ranks 5 and 6 are consecutive and live in adjacent strips
        let a = m.coord_of_rank(5);
        let b = m.coord_of_rank(6);
        assert_eq!(
            a[0], b[0],
            "hand-over must be at the same row: {a:?} vs {b:?}"
        );
        assert_eq!((a[1] as i64 - b[1] as i64).abs(), 1);
    }

    #[test]
    fn valid_on_three_dimensions_and_odd_sizes() {
        let prob = problem(&[7, 6, 5], 10, 21, Stencil::nearest_neighbor(3));
        let m = StencilStrips.compute(&prob).unwrap();
        assert!(m.respects_allocation(prob.alloc()));

        let prob = problem(&[13, 11], 13, 11, Stencil::nearest_neighbor_with_hops(2));
        let m = StencilStrips.compute(&prob).unwrap();
        assert!(m.respects_allocation(prob.alloc()));
    }

    #[test]
    fn heterogeneous_allocation_still_valid() {
        let prob = MappingProblem::new(
            Dims::from_slice(&[6, 5]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::heterogeneous(vec![12, 10, 8]).unwrap(),
        )
        .unwrap();
        let m = StencilStrips.compute(&prob).unwrap();
        assert!(m.respects_allocation(prob.alloc()));
    }

    proptest! {
        #[test]
        fn prop_valid_permutation(
            d0 in 1usize..10, d1 in 1usize..10, div in 1usize..6,
        ) {
            let p = d0 * d1;
            if p % div == 0 {
                let prob = problem(&[d0, d1], p / div, div, Stencil::nearest_neighbor(2));
                let m = StencilStrips.compute(&prob).unwrap();
                prop_assert!(m.respects_allocation(prob.alloc()));
            }
        }

        #[test]
        fn prop_strip_widths_cover_dimensions(
            d0 in 2usize..40, d1 in 2usize..40, n in 1usize..50,
        ) {
            let layout = StripLayout::new(&[d0, d1], &Stencil::nearest_neighbor(2), n);
            for (i, w) in layout.widths.iter().enumerate() {
                if i == layout.along {
                    prop_assert!(w.is_empty());
                } else {
                    prop_assert_eq!(w.iter().sum::<usize>(), [d0, d1][i]);
                    prop_assert!(w.iter().all(|&x| x >= 1));
                }
            }
        }

        #[test]
        fn prop_serpentine_strip_order_is_a_path(
            k0 in 1usize..5, k1 in 1usize..5,
        ) {
            // consecutive strips differ by exactly one in exactly one index
            let layout = StripLayout {
                along: 2,
                widths: vec![vec![1; k0], vec![1; k1], vec![]],
                target_lengths: vec![1.0, 1.0, 0.0],
                distortion: vec![1.0, 1.0, 1.0],
            };
            let total = k0 * k1;
            for t in 0..total.saturating_sub(1) {
                let a = layout.strip_indices(t);
                let b = layout.strip_indices(t + 1);
                let diff: usize = a.iter().zip(&b)
                    .map(|(x, y)| if x == y { 0 } else { 1 })
                    .sum();
                prop_assert_eq!(diff, 1, "strips {:?} -> {:?}", a, b);
            }
        }
    }
}
