//! The mapping problem definition and the mapper traits.

use crate::mapping::Mapping;
use rayon::prelude::*;
use stencil_grid::{Coord, Dims, GridError, NodeAllocation, Stencil};

/// Errors returned by mapping algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The underlying grid/stencil/allocation combination is inconsistent.
    Grid(GridError),
    /// The algorithm is not applicable to the given instance
    /// (e.g. `Nodecart` when the node size cannot be factored into the grid).
    NotApplicable(String),
    /// The algorithm produced an invalid reordering (internal error).
    InvalidResult(String),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Grid(e) => write!(f, "invalid mapping problem: {e}"),
            MapError::NotApplicable(s) => write!(f, "algorithm not applicable: {s}"),
            MapError::InvalidResult(s) => write!(f, "algorithm produced an invalid result: {s}"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<GridError> for MapError {
    fn from(e: GridError) -> Self {
        MapError::Grid(e)
    }
}

/// A complete instance of the process-to-node mapping problem:
/// a Cartesian grid, a stencil (`k`-neighborhood), the scheduler's node
/// allocation and the boundary condition.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingProblem {
    dims: Dims,
    stencil: Stencil,
    alloc: NodeAllocation,
    periodic: bool,
}

impl MappingProblem {
    /// Creates a mapping problem with non-periodic boundaries.
    pub fn new(dims: Dims, stencil: Stencil, alloc: NodeAllocation) -> Result<Self, MapError> {
        Self::with_periodicity(dims, stencil, alloc, false)
    }

    /// Creates a mapping problem, optionally with periodic (torus) boundaries.
    pub fn with_periodicity(
        dims: Dims,
        stencil: Stencil,
        alloc: NodeAllocation,
        periodic: bool,
    ) -> Result<Self, MapError> {
        stencil.check_dims(&dims)?;
        alloc.check_total(dims.volume())?;
        Ok(MappingProblem {
            dims,
            stencil,
            alloc,
            periodic,
        })
    }

    /// The grid dimension sizes.
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    /// The stencil (`k`-neighborhood).
    pub fn stencil(&self) -> &Stencil {
        &self.stencil
    }

    /// The node allocation handed out by the scheduler.
    pub fn alloc(&self) -> &NodeAllocation {
        &self.alloc
    }

    /// Whether the grid wraps around (torus).
    pub fn periodic(&self) -> bool {
        self.periodic
    }

    /// Total number of processes `p`.
    pub fn num_processes(&self) -> usize {
        self.dims.volume()
    }

    /// Number of compute nodes `N`.
    pub fn num_nodes(&self) -> usize {
        self.alloc.num_nodes()
    }

    /// The node-size parameter `n` handed to algorithms that need one
    /// (exact for homogeneous allocations, the mean otherwise; see §V-A).
    pub fn node_size_parameter(&self) -> usize {
        self.alloc.representative_size()
    }
}

/// A process-to-node mapping algorithm.
///
/// A mapper consumes a [`MappingProblem`] and produces a [`Mapping`], i.e. a
/// permutation assigning every rank a grid position (and therefore every
/// grid position a compute node).
pub trait Mapper: Send + Sync {
    /// Human-readable algorithm name as used in the paper's figures.
    fn name(&self) -> &str;

    /// Computes the full mapping for the given problem.
    fn compute(&self, problem: &MappingProblem) -> Result<Mapping, MapError>;
}

/// Per-worker scratch reused across the ranks of one chunk of a parallel
/// mapping computation.
///
/// Rank-local mappers need a few small per-rank buffers (current sub-grid
/// sizes, origins, cut orders) plus per-problem precomputations (the stencil
/// strip layout, communication counts).  Allocating them per rank dominated
/// the mapping hot loop in the seed implementation; a `MapWorkspace` owns
/// them instead, so computing a full mapping performs no per-rank heap
/// allocation.  Every worker chunk creates one workspace and reuses it for
/// all of its ranks.
///
/// A workspace serves **exactly one** `(mapper, problem)` pair: the cached
/// per-problem precomputations (strip layout, cos² sums, communication
/// counts) are keyed by nothing and would silently go stale if the same
/// workspace were reused for a different problem.  Create a fresh workspace
/// per computation, as the blanket [`Mapper`] implementation does.
#[derive(Debug, Default)]
pub struct MapWorkspace {
    /// Current sub-grid sizes during recursive descent.
    pub(crate) sizes: Vec<usize>,
    /// Origin offset of the current sub-grid.
    pub(crate) origin: Vec<usize>,
    /// Per-dimension stencil communication counts (k-d tree).
    pub(crate) comm: Vec<usize>,
    /// Per-dimension cos² sums of the stencil (hyperplane), cached per
    /// workspace because they do not depend on the rank.
    pub(crate) cos2: Vec<f64>,
    /// Preferred cut order scratch.
    pub(crate) order: Vec<usize>,
    /// Strip indices scratch (stencil strips).
    pub(crate) indices: Vec<usize>,
    /// Cached strip layout (stencil strips), valid for the current problem.
    pub(crate) strips: Option<crate::stencil_strips::StripLayout>,
}

impl MapWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        MapWorkspace::default()
    }
}

/// A mapper whose result can be computed *per rank*, independently of all
/// other ranks — the "fully distributed" property the paper requires of its
/// algorithms (Section V): every process derives its own new coordinate from
/// the grid, the stencil and its rank alone.
pub trait RankLocalMapper: Send + Sync {
    /// Human-readable algorithm name.
    fn local_name(&self) -> &str;

    /// Computes the new grid coordinate of `rank`.
    fn remap_rank(&self, problem: &MappingProblem, rank: usize) -> Coord;

    /// Allocation-free variant of [`RankLocalMapper::remap_rank`]: writes the
    /// coordinate of `rank` into `out` (length `ndims`), reusing the scratch
    /// buffers of `ws`.  The default implementation delegates to
    /// `remap_rank`; the paper's algorithms override it so the parallel
    /// full-mapping computation performs no per-rank allocation.
    ///
    /// `ws` must not be reused across different problems or mappers — cached
    /// per-problem state (e.g. the strip layout) is not validated against
    /// the arguments.  See [`MapWorkspace`].
    fn remap_rank_into(
        &self,
        problem: &MappingProblem,
        rank: usize,
        ws: &mut MapWorkspace,
        out: &mut [usize],
    ) {
        let _ = ws;
        out.copy_from_slice(&self.remap_rank(problem, rank));
    }
}

/// Every rank-local mapper is a full mapper: the complete mapping is obtained
/// by evaluating the rank-local computation for every rank (in parallel,
/// mirroring the fact that on a real machine every process runs the
/// computation concurrently).
///
/// The rank range is split into contiguous chunks; each chunk owns one
/// [`MapWorkspace`] and writes grid positions straight into its slice of the
/// position table, so the full mapping is computed without per-rank
/// allocation.  Results are identical for every thread count.
impl<T: RankLocalMapper> Mapper for T {
    fn name(&self) -> &str {
        self.local_name()
    }

    fn compute(&self, problem: &MappingProblem) -> Result<Mapping, MapError> {
        let p = problem.num_processes();
        let d = problem.dims().ndims();
        let chunk_size = (p / (rayon::current_num_threads() * 4).max(1))
            .clamp(256, 1 << 16)
            .min(p.max(1));
        let mut positions = vec![0usize; p];
        positions
            .par_chunks_mut(chunk_size)
            .enumerate()
            .for_each(|(chunk_index, chunk)| {
                let mut ws = MapWorkspace::new();
                let mut coord = vec![0usize; d];
                let base = chunk_index * chunk_size;
                for (i, slot) in chunk.iter_mut().enumerate() {
                    self.remap_rank_into(problem, base + i, &mut ws, &mut coord);
                    // usize::MAX marks an out-of-grid coordinate; it is
                    // rejected by the permutation validation below.
                    *slot = if problem.dims().contains(&coord) {
                        problem.dims().rank_of(&coord)
                    } else {
                        usize::MAX
                    };
                }
            });
        Mapping::from_positions(problem, positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_grid::{Dims, NodeAllocation, Stencil};

    fn small_problem() -> MappingProblem {
        MappingProblem::new(
            Dims::from_slice(&[4, 4]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(4, 4),
        )
        .unwrap()
    }

    #[test]
    fn problem_accessors() {
        let p = small_problem();
        assert_eq!(p.num_processes(), 16);
        assert_eq!(p.num_nodes(), 4);
        assert_eq!(p.node_size_parameter(), 4);
        assert!(!p.periodic());
        assert_eq!(p.dims().as_slice(), &[4, 4]);
        assert_eq!(p.stencil().k(), 4);
        assert_eq!(p.alloc().num_nodes(), 4);
    }

    #[test]
    fn problem_rejects_mismatched_allocation() {
        let err = MappingProblem::new(
            Dims::from_slice(&[4, 4]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(3, 4),
        );
        assert!(matches!(err, Err(MapError::Grid(_))));
    }

    #[test]
    fn problem_rejects_mismatched_stencil() {
        let err = MappingProblem::new(
            Dims::from_slice(&[4, 4]),
            Stencil::nearest_neighbor(3),
            NodeAllocation::homogeneous(4, 4),
        );
        assert!(err.is_err());
    }

    #[test]
    fn heterogeneous_node_size_parameter_is_mean() {
        let p = MappingProblem::new(
            Dims::from_slice(&[4, 4]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::heterogeneous(vec![6, 4, 6]).unwrap(),
        )
        .unwrap();
        assert_eq!(p.node_size_parameter(), 5);
    }

    #[test]
    fn error_display() {
        let e = MapError::NotApplicable("n does not factor".into());
        assert!(e.to_string().contains("not applicable"));
        let e = MapError::InvalidResult("dup".into());
        assert!(e.to_string().contains("invalid result"));
        let e: MapError = stencil_grid::GridError::EmptyDims.into();
        assert!(e.to_string().contains("invalid mapping problem"));
    }

    /// A trivial rank-local mapper used to exercise the blanket impl.
    struct Identity;
    impl RankLocalMapper for Identity {
        fn local_name(&self) -> &str {
            "Identity"
        }
        fn remap_rank(&self, problem: &MappingProblem, rank: usize) -> Coord {
            problem.dims().coord_of(rank)
        }
    }

    #[test]
    fn blanket_impl_builds_full_mapping() {
        let p = small_problem();
        let m = Identity.compute(&p).unwrap();
        assert_eq!(Mapper::name(&Identity), "Identity");
        for r in 0..p.num_processes() {
            assert_eq!(m.position_of_rank(r), r);
        }
    }
}
