//! The mapping problem definition and the mapper traits.

use crate::mapping::Mapping;
use rayon::prelude::*;
use stencil_grid::{Coord, Dims, GridError, NodeAllocation, Stencil};

/// Errors returned by mapping algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The underlying grid/stencil/allocation combination is inconsistent.
    Grid(GridError),
    /// The algorithm is not applicable to the given instance
    /// (e.g. `Nodecart` when the node size cannot be factored into the grid).
    NotApplicable(String),
    /// The algorithm produced an invalid reordering (internal error).
    InvalidResult(String),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Grid(e) => write!(f, "invalid mapping problem: {e}"),
            MapError::NotApplicable(s) => write!(f, "algorithm not applicable: {s}"),
            MapError::InvalidResult(s) => write!(f, "algorithm produced an invalid result: {s}"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<GridError> for MapError {
    fn from(e: GridError) -> Self {
        MapError::Grid(e)
    }
}

/// A complete instance of the process-to-node mapping problem:
/// a Cartesian grid, a stencil (`k`-neighborhood), the scheduler's node
/// allocation and the boundary condition.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingProblem {
    dims: Dims,
    stencil: Stencil,
    alloc: NodeAllocation,
    periodic: bool,
}

impl MappingProblem {
    /// Creates a mapping problem with non-periodic boundaries.
    pub fn new(dims: Dims, stencil: Stencil, alloc: NodeAllocation) -> Result<Self, MapError> {
        Self::with_periodicity(dims, stencil, alloc, false)
    }

    /// Creates a mapping problem, optionally with periodic (torus) boundaries.
    pub fn with_periodicity(
        dims: Dims,
        stencil: Stencil,
        alloc: NodeAllocation,
        periodic: bool,
    ) -> Result<Self, MapError> {
        stencil.check_dims(&dims)?;
        alloc.check_total(dims.volume())?;
        Ok(MappingProblem {
            dims,
            stencil,
            alloc,
            periodic,
        })
    }

    /// The grid dimension sizes.
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    /// The stencil (`k`-neighborhood).
    pub fn stencil(&self) -> &Stencil {
        &self.stencil
    }

    /// The node allocation handed out by the scheduler.
    pub fn alloc(&self) -> &NodeAllocation {
        &self.alloc
    }

    /// Whether the grid wraps around (torus).
    pub fn periodic(&self) -> bool {
        self.periodic
    }

    /// Total number of processes `p`.
    pub fn num_processes(&self) -> usize {
        self.dims.volume()
    }

    /// Number of compute nodes `N`.
    pub fn num_nodes(&self) -> usize {
        self.alloc.num_nodes()
    }

    /// The node-size parameter `n` handed to algorithms that need one
    /// (exact for homogeneous allocations, the mean otherwise; see §V-A).
    pub fn node_size_parameter(&self) -> usize {
        self.alloc.representative_size()
    }
}

/// A process-to-node mapping algorithm.
///
/// A mapper consumes a [`MappingProblem`] and produces a [`Mapping`], i.e. a
/// permutation assigning every rank a grid position (and therefore every
/// grid position a compute node).
pub trait Mapper: Send + Sync {
    /// Human-readable algorithm name as used in the paper's figures.
    fn name(&self) -> &str;

    /// Computes the full mapping for the given problem.
    fn compute(&self, problem: &MappingProblem) -> Result<Mapping, MapError>;
}

/// A mapper whose result can be computed *per rank*, independently of all
/// other ranks — the "fully distributed" property the paper requires of its
/// algorithms (Section V): every process derives its own new coordinate from
/// the grid, the stencil and its rank alone.
pub trait RankLocalMapper: Send + Sync {
    /// Human-readable algorithm name.
    fn local_name(&self) -> &str;

    /// Computes the new grid coordinate of `rank`.
    fn remap_rank(&self, problem: &MappingProblem, rank: usize) -> Coord;
}

/// Every rank-local mapper is a full mapper: the complete mapping is obtained
/// by evaluating `remap_rank` for every rank (in parallel, mirroring the fact
/// that on a real machine every process runs the computation concurrently).
impl<T: RankLocalMapper> Mapper for T {
    fn name(&self) -> &str {
        self.local_name()
    }

    fn compute(&self, problem: &MappingProblem) -> Result<Mapping, MapError> {
        let p = problem.num_processes();
        let coords: Vec<Coord> = (0..p)
            .into_par_iter()
            .map(|rank| self.remap_rank(problem, rank))
            .collect();
        Mapping::from_rank_coords(problem, &coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_grid::{Dims, NodeAllocation, Stencil};

    fn small_problem() -> MappingProblem {
        MappingProblem::new(
            Dims::from_slice(&[4, 4]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(4, 4),
        )
        .unwrap()
    }

    #[test]
    fn problem_accessors() {
        let p = small_problem();
        assert_eq!(p.num_processes(), 16);
        assert_eq!(p.num_nodes(), 4);
        assert_eq!(p.node_size_parameter(), 4);
        assert!(!p.periodic());
        assert_eq!(p.dims().as_slice(), &[4, 4]);
        assert_eq!(p.stencil().k(), 4);
        assert_eq!(p.alloc().num_nodes(), 4);
    }

    #[test]
    fn problem_rejects_mismatched_allocation() {
        let err = MappingProblem::new(
            Dims::from_slice(&[4, 4]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(3, 4),
        );
        assert!(matches!(err, Err(MapError::Grid(_))));
    }

    #[test]
    fn problem_rejects_mismatched_stencil() {
        let err = MappingProblem::new(
            Dims::from_slice(&[4, 4]),
            Stencil::nearest_neighbor(3),
            NodeAllocation::homogeneous(4, 4),
        );
        assert!(err.is_err());
    }

    #[test]
    fn heterogeneous_node_size_parameter_is_mean() {
        let p = MappingProblem::new(
            Dims::from_slice(&[4, 4]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::heterogeneous(vec![6, 4, 6]).unwrap(),
        )
        .unwrap();
        assert_eq!(p.node_size_parameter(), 5);
    }

    #[test]
    fn error_display() {
        let e = MapError::NotApplicable("n does not factor".into());
        assert!(e.to_string().contains("not applicable"));
        let e = MapError::InvalidResult("dup".into());
        assert!(e.to_string().contains("invalid result"));
        let e: MapError = stencil_grid::GridError::EmptyDims.into();
        assert!(e.to_string().contains("invalid mapping problem"));
    }

    /// A trivial rank-local mapper used to exercise the blanket impl.
    struct Identity;
    impl RankLocalMapper for Identity {
        fn local_name(&self) -> &str {
            "Identity"
        }
        fn remap_rank(&self, problem: &MappingProblem, rank: usize) -> Coord {
            problem.dims().coord_of(rank)
        }
    }

    #[test]
    fn blanket_impl_builds_full_mapping() {
        let p = small_problem();
        let m = Identity.compute(&p).unwrap();
        assert_eq!(Mapper::name(&Identity), "Identity");
        for r in 0..p.num_processes() {
            assert_eq!(m.position_of_rank(r), r);
        }
    }
}
