//! Gropp's `Nodecart` algorithm (the previous state of the art the paper
//! compares against; see W. D. Gropp, *"Using node and socket information to
//! implement MPI Cartesian topologies"*, Parallel Computing 85, 2019).
//!
//! The algorithm decomposes the process grid `D` into a *node grid*
//! `Q = [d_0/c_0, …, d_{d-1}/c_{d-1}]` spanning the compute nodes and an
//! *inner grid* `C = [c_0, …, c_{d-1}]` describing the layout of the `n`
//! processes within one node, where `Π c_i = n` and every `c_i` divides
//! `d_i`.  The factors `c_i` are chosen greedily from the prime factorisation
//! of `n`, always assigning the next (largest) prime to the dimension with
//! the largest remaining node-grid extent that the prime divides — this keeps
//! the per-node blocks as compact as the factorisation allows.
//!
//! The approach requires a homogeneous allocation and a node size whose prime
//! factors fit the grid dimensions; when no decomposition exists, the mapper
//! reports [`MapError::NotApplicable`] (the paper's motivation for
//! factorisation-free algorithms).

use crate::problem::{MapError, Mapper, MappingProblem};
use crate::Mapping;
use rayon::prelude::*;
use stencil_grid::dims_create::prime_factors;

/// Gropp's `Nodecart` Cartesian mapping algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Nodecart;

impl Nodecart {
    /// Computes the inner (within-node) grid `C` for the given grid
    /// dimensions and node size, or `None` if `n` cannot be factored into
    /// the dimensions.
    pub fn inner_dims(dims: &[usize], n: usize) -> Option<Vec<usize>> {
        let mut inner = vec![1usize; dims.len()];
        let mut quotient: Vec<usize> = dims.to_vec();
        let mut factors = prime_factors(n);
        factors.reverse(); // largest primes first
        for f in factors {
            // choose the dimension with the largest remaining quotient that
            // the prime divides
            let candidate = (0..dims.len())
                .filter(|&i| quotient[i].is_multiple_of(f))
                .max_by_key(|&i| quotient[i])?;
            quotient[candidate] /= f;
            inner[candidate] *= f;
        }
        Some(inner)
    }
}

impl Mapper for Nodecart {
    fn name(&self) -> &str {
        "Nodecart"
    }

    fn compute(&self, problem: &MappingProblem) -> Result<Mapping, MapError> {
        let alloc = problem.alloc();
        if !alloc.is_homogeneous() {
            return Err(MapError::NotApplicable(
                "Nodecart requires a homogeneous number of processes per node".into(),
            ));
        }
        let n = alloc.node_size(0);
        let dims = problem.dims().as_slice();
        let inner = Self::inner_dims(dims, n).ok_or_else(|| {
            MapError::NotApplicable(format!(
                "node size {n} cannot be factored into grid dimensions {dims:?}"
            ))
        })?;
        let node_grid: Vec<usize> = dims.iter().zip(&inner).map(|(&d, &c)| d / c).collect();
        let p = problem.num_processes();
        let d = dims.len();
        let chunk_size = (p / (rayon::current_num_threads() * 4).max(1))
            .clamp(256, 1 << 16)
            .min(p.max(1));
        let mut positions = vec![0usize; p];
        positions
            .par_chunks_mut(chunk_size)
            .enumerate()
            .for_each(|(chunk_index, chunk)| {
                let mut node_coord = vec![0usize; d];
                let mut local_coord = vec![0usize; d];
                let base = chunk_index * chunk_size;
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let rank = base + i;
                    stencil_grid::coords::rank_to_coord_into(rank / n, &node_grid, &mut node_coord);
                    stencil_grid::coords::rank_to_coord_into(rank % n, &inner, &mut local_coord);
                    // row-major rank of the combined coordinate
                    let mut pos = 0usize;
                    for j in 0..d {
                        pos = pos * dims[j] + (node_coord[j] * inner[j] + local_coord[j]);
                    }
                    *slot = pos;
                }
            });
        Mapping::from_positions(problem, positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Blocked;
    use crate::metrics::evaluate;
    use crate::problem::MappingProblem;
    use proptest::prelude::*;
    use stencil_grid::{CartGraph, Dims, NodeAllocation, Stencil};

    fn problem(dims: &[usize], nodes: usize, per: usize, stencil: Stencil) -> MappingProblem {
        MappingProblem::new(
            Dims::from_slice(dims),
            stencil,
            NodeAllocation::homogeneous(nodes, per),
        )
        .unwrap()
    }

    #[test]
    fn inner_dims_headline_instance() {
        // 50 x 48 grid, n = 48: 50 = 2 * 5^2 only contributes a factor 2, so
        // the inner grid is [2, 24] and the node grid [25, 2].
        assert_eq!(Nodecart::inner_dims(&[50, 48], 48), Some(vec![2, 24]));
        // 75 x 64 grid, n = 48: 75 = 3 * 5^2 takes the 3, 64 takes the 16.
        assert_eq!(Nodecart::inner_dims(&[75, 64], 48), Some(vec![3, 16]));
        // impossible: n = 7 into an 8 x 4 grid
        assert_eq!(Nodecart::inner_dims(&[8, 4], 7), None);
    }

    #[test]
    fn matches_paper_scores_nearest_neighbor_n50() {
        // Paper Fig. 6 (left, top): Nodecart Jsum = 2404, Jmax = 50.
        let prob = problem(&[50, 48], 50, 48, Stencil::nearest_neighbor(2));
        let g = CartGraph::build(prob.dims(), prob.stencil(), false);
        let cost = evaluate(&g, &Nodecart.compute(&prob).unwrap());
        assert_eq!(cost.j_sum, 2404);
        assert_eq!(cost.j_max, 50);
    }

    #[test]
    fn matches_paper_scores_component_n50() {
        // Paper Fig. 6 (bottom left): Nodecart Jsum = 2304, Jmax = 48 for the
        // component stencil (the figure lists Jmax = 48 for Nodecart).
        let prob = problem(&[50, 48], 50, 48, Stencil::component(2));
        let g = CartGraph::build(prob.dims(), prob.stencil(), false);
        let cost = evaluate(&g, &Nodecart.compute(&prob).unwrap());
        assert_eq!(cost.j_sum, 2304);
        assert_eq!(cost.j_max, 48);
    }

    #[test]
    fn improves_over_blocked_but_less_than_new_algorithms() {
        let prob = problem(&[50, 48], 50, 48, Stencil::nearest_neighbor(2));
        let g = CartGraph::build(prob.dims(), prob.stencil(), false);
        let nc = evaluate(&g, &Nodecart.compute(&prob).unwrap());
        let blocked = evaluate(&g, &Blocked.compute(&prob).unwrap());
        let hp = evaluate(
            &g,
            &crate::hyperplane::Hyperplane::default()
                .compute(&prob)
                .unwrap(),
        );
        let ss = evaluate(
            &g,
            &crate::stencil_strips::StencilStrips.compute(&prob).unwrap(),
        );
        assert!(nc.j_sum < blocked.j_sum);
        // the paper's new algorithms achieve significantly better quality
        assert!(hp.j_sum < nc.j_sum);
        assert!(ss.j_sum < nc.j_sum);
    }

    #[test]
    fn rejects_heterogeneous_allocations() {
        let hetero = MappingProblem::new(
            Dims::from_slice(&[6, 4]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::heterogeneous(vec![10, 8, 6]).unwrap(),
        )
        .unwrap();
        assert!(matches!(
            Nodecart.compute(&hetero),
            Err(MapError::NotApplicable(_))
        ));
    }

    #[test]
    fn factorable_node_sizes_succeed() {
        // Whenever the allocation is homogeneous and p = N * n, the greedy
        // prime assignment always succeeds (every prime of n divides the grid
        // volume).  A couple of representative shapes:
        let ok = problem(&[8, 9], 12, 6, Stencil::nearest_neighbor(2));
        assert!(Nodecart.compute(&ok).is_ok());
        let ok = problem(&[5, 5], 5, 5, Stencil::nearest_neighbor(2));
        assert!(Nodecart.compute(&ok).is_ok());
        let ok = problem(&[6, 6], 9, 4, Stencil::nearest_neighbor(2));
        assert!(Nodecart.compute(&ok).is_ok());
        // inner_dims itself reports None for node sizes that cannot be
        // factored into the dimensions (the situation Nodecart cannot handle
        // and the paper's algorithms are designed to avoid).
        assert_eq!(Nodecart::inner_dims(&[8, 4], 7), None);
        assert_eq!(Nodecart::inner_dims(&[9, 25], 4), None);
    }

    #[test]
    fn node_blocks_are_axis_aligned_boxes() {
        let prob = problem(&[8, 8], 4, 16, Stencil::nearest_neighbor(2));
        let m = Nodecart.compute(&prob).unwrap();
        // inner dims for n=16 on 8x8: 4 x 4 blocks
        assert_eq!(Nodecart::inner_dims(&[8, 8], 16), Some(vec![4, 4]));
        for node in 0..4 {
            let cells: Vec<Vec<usize>> = (0..64)
                .filter(|&x| m.node_of_position(x) == node)
                .map(|x| prob.dims().coord_of(x))
                .collect();
            assert_eq!(cells.len(), 16);
            let min0 = cells.iter().map(|c| c[0]).min().unwrap();
            let max0 = cells.iter().map(|c| c[0]).max().unwrap();
            let min1 = cells.iter().map(|c| c[1]).min().unwrap();
            let max1 = cells.iter().map(|c| c[1]).max().unwrap();
            assert_eq!(max0 - min0 + 1, 4);
            assert_eq!(max1 - min1 + 1, 4);
        }
    }

    proptest! {
        #[test]
        fn prop_valid_when_applicable(
            q0 in 1usize..5, q1 in 1usize..5, c0 in 1usize..4, c1 in 1usize..4,
        ) {
            // construct an instance that is factorable by design
            let dims = [q0 * c0, q1 * c1];
            let n = c0 * c1;
            let nodes = q0 * q1;
            let prob = problem(&dims, nodes, n, Stencil::nearest_neighbor(2));
            let m = Nodecart.compute(&prob).unwrap();
            prop_assert!(m.respects_allocation(prob.alloc()));
        }
    }
}
