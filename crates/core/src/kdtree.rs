//! The k-d Tree algorithm (Section V-B).
//!
//! Like the Hyperplane algorithm this is a recursive bisection, but the
//! recursion continues until a single grid cell remains, which makes the
//! algorithm oblivious to the number of processes per node — it only tries to
//! localise communicating vertices so that any contiguous block of ranks is
//! compact.  At every step the dimension with the largest size *weighted by
//! the inverse amount of communication across it* is halved:
//! `i = argmax d_i / f_i` with `f_i = |{R ∈ S : R_i ≠ 0}|`.
//! Dimensions the stencil never crosses (`f_i = 0`) are split first, because
//! cutting them is free.
//!
//! Per-rank complexity: `O(d log p)` (the paper reports `O(log p log d)` with
//! a priority queue; the evaluation uses the linear scan implemented here).

use crate::problem::{MapWorkspace, MappingProblem, RankLocalMapper};
use stencil_grid::Coord;

/// The k-d Tree mapping algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct KdTree;

impl RankLocalMapper for KdTree {
    fn local_name(&self) -> &str {
        "k-d Tree"
    }

    fn remap_rank(&self, problem: &MappingProblem, rank: usize) -> Coord {
        let mut ws = MapWorkspace::new();
        let mut out = vec![0usize; problem.dims().ndims()];
        self.remap_rank_into(problem, rank, &mut ws, &mut out);
        out
    }

    fn remap_rank_into(
        &self,
        problem: &MappingProblem,
        rank: usize,
        ws: &mut MapWorkspace,
        out: &mut [usize],
    ) {
        // rank-independent: computed once per workspace (one workspace serves
        // exactly one problem, see MapWorkspace)
        if ws.comm.is_empty() {
            problem.stencil().comm_across_into(&mut ws.comm);
        }
        ws.sizes.clear();
        ws.sizes.extend_from_slice(problem.dims().as_slice());
        out.fill(0);
        let mut r = rank;

        loop {
            let vol: usize = ws.sizes.iter().product();
            if vol == 1 {
                debug_assert_eq!(r, 0);
                return;
            }
            let dim = split_dimension(&ws.sizes, &ws.comm);
            let left = ws.sizes[dim] / 2;
            let left_vol = vol / ws.sizes[dim] * left;
            if r < left_vol {
                ws.sizes[dim] = left;
            } else {
                r -= left_vol;
                out[dim] += left;
                ws.sizes[dim] -= left;
            }
        }
    }
}

/// Chooses the dimension to split: the largest `d_i / f_i` among dimensions
/// of size at least two, with `f_i = 0` treated as infinitely preferable.
/// Ties are broken towards the larger dimension, then the smaller index.
fn split_dimension(sizes: &[usize], f: &[usize]) -> usize {
    let mut best: Option<usize> = None;
    for i in 0..sizes.len() {
        if sizes[i] < 2 {
            continue;
        }
        let better = match best {
            None => true,
            Some(b) => {
                // compare sizes[i]/f[i] > sizes[b]/f[b] without division:
                // cross-multiply, treating f == 0 as +infinity.
                let lhs_inf = f[i] == 0;
                let rhs_inf = f[b] == 0;
                match (lhs_inf, rhs_inf) {
                    (true, true) => sizes[i] > sizes[b],
                    (true, false) => true,
                    (false, true) => false,
                    (false, false) => {
                        let lhs = sizes[i] as u128 * f[b] as u128;
                        let rhs = sizes[b] as u128 * f[i] as u128;
                        lhs > rhs || (lhs == rhs && sizes[i] > sizes[b])
                    }
                }
            }
        };
        if better {
            best = Some(i);
        }
    }
    best.expect("a splittable dimension exists while the volume exceeds 1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Blocked;
    use crate::metrics::evaluate;
    use crate::problem::{Mapper, MappingProblem};
    use proptest::prelude::*;
    use stencil_grid::{CartGraph, Dims, NodeAllocation, Stencil};

    fn problem(dims: &[usize], nodes: usize, per: usize, stencil: Stencil) -> MappingProblem {
        MappingProblem::new(
            Dims::from_slice(dims),
            stencil,
            NodeAllocation::homogeneous(nodes, per),
        )
        .unwrap()
    }

    #[test]
    fn split_dimension_prefers_zero_communication_dims() {
        // component stencil in 2D: f = [2, 0] -> always split dim 1 first
        assert_eq!(split_dimension(&[50, 48], &[2, 0]), 1);
        assert_eq!(split_dimension(&[50, 2], &[2, 0]), 1);
        // once dim 1 is exhausted, dim 0 is split
        assert_eq!(split_dimension(&[50, 1], &[2, 0]), 0);
    }

    #[test]
    fn split_dimension_weights_by_inverse_communication() {
        // hops stencil: f = [6, 2]; dims [12, 6]: 12/6 = 2 < 6/2 = 3 -> dim 1
        assert_eq!(split_dimension(&[12, 6], &[6, 2]), 1);
        // dims [30, 6]: 30/6 = 5 > 3 -> dim 0
        assert_eq!(split_dimension(&[30, 6], &[6, 2]), 0);
        // tie broken towards larger dimension: [12, 4] with f = [6, 2]
        assert_eq!(split_dimension(&[12, 4], &[6, 2]), 0);
    }

    #[test]
    fn finds_optimal_mapping_for_component_stencil() {
        // Fig. 6 bottom-left: for the component stencil on 50x48 with N=50,
        // the k-d tree finds the optimal mapping: Jsum = 96, Jmax = 2.
        let prob = problem(&[50, 48], 50, 48, Stencil::component(2));
        let g = CartGraph::build(prob.dims(), prob.stencil(), false);
        let cost = evaluate(&g, &KdTree.compute(&prob).unwrap());
        assert_eq!(cost.j_sum, 96);
        assert_eq!(cost.j_max, 2);
    }

    #[test]
    fn finds_optimal_mapping_for_component_stencil_n100() {
        // Fig. 7 bottom-left: 75x64, N=100: optimal Jsum = 192, Jmax = 2.
        let prob = problem(&[75, 64], 100, 48, Stencil::component(2));
        let g = CartGraph::build(prob.dims(), prob.stencil(), false);
        let cost = evaluate(&g, &KdTree.compute(&prob).unwrap());
        assert_eq!(cost.j_sum, 192);
        assert_eq!(cost.j_max, 2);
    }

    #[test]
    fn improves_nearest_neighbor_headline_instance() {
        // Paper: k-d Tree Jsum = 1732 on the 50x48 NN instance (blocked 4704).
        let prob = problem(&[50, 48], 50, 48, Stencil::nearest_neighbor(2));
        let g = CartGraph::build(prob.dims(), prob.stencil(), false);
        let cost = evaluate(&g, &KdTree.compute(&prob).unwrap());
        let blocked = evaluate(&g, &Blocked.compute(&prob).unwrap());
        assert!(cost.j_sum < blocked.j_sum);
        assert!(cost.j_sum < 2500, "Jsum = {}", cost.j_sum);
        assert!(m_is_valid(&prob));
    }

    fn m_is_valid(prob: &MappingProblem) -> bool {
        KdTree
            .compute(prob)
            .unwrap()
            .respects_allocation(prob.alloc())
    }

    #[test]
    fn oblivious_to_node_size() {
        // The k-d tree result does not depend on the allocation at all: the
        // permutation is identical for different node sizes.
        let s = Stencil::nearest_neighbor(2);
        let p1 = problem(&[8, 8], 8, 8, s.clone());
        let p2 = problem(&[8, 8], 16, 4, s);
        let m1 = KdTree.compute(&p1).unwrap();
        let m2 = KdTree.compute(&p2).unwrap();
        assert_eq!(m1.position_of_rank_slice(), m2.position_of_rank_slice());
    }

    #[test]
    fn works_on_odd_sizes_and_three_dims() {
        let prob = problem(&[7, 5, 3], 5, 21, Stencil::nearest_neighbor(3));
        let m = KdTree.compute(&prob).unwrap();
        assert!(m.respects_allocation(prob.alloc()));
        let prob = problem(&[13, 11], 11, 13, Stencil::nearest_neighbor_with_hops(2));
        let m = KdTree.compute(&prob).unwrap();
        assert!(m.respects_allocation(prob.alloc()));
    }

    #[test]
    fn single_cell_grid() {
        let prob = problem(&[1, 1], 1, 1, Stencil::nearest_neighbor(2));
        let m = KdTree.compute(&prob).unwrap();
        assert_eq!(m.position_of_rank(0), 0);
    }

    proptest! {
        #[test]
        fn prop_valid_permutation_any_allocation(
            d0 in 1usize..10, d1 in 1usize..10, div in 1usize..6,
        ) {
            let p = d0 * d1;
            if p % div == 0 {
                let prob = problem(&[d0, d1], p / div, div, Stencil::nearest_neighbor(2));
                let m = KdTree.compute(&prob).unwrap();
                prop_assert!(m.respects_allocation(prob.alloc()));
            }
        }

        #[test]
        fn prop_recursion_localises_consecutive_ranks(
            d0 in 2usize..9, d1 in 2usize..9,
        ) {
            // Any aligned block of 2^k consecutive ranks occupies a connected,
            // compact region; we check the weaker property that the first
            // half and second half of the ranks split the grid into two
            // contiguous coordinate ranges along some dimension.
            let p = d0 * d1;
            let prob = problem(&[d0, d1], 1, p, Stencil::nearest_neighbor(2));
            let m = KdTree.compute(&prob).unwrap();
            let half = (d0 / 2) * d1;
            if half > 0 {
                let first: Vec<_> = (0..half.min(p)).map(|r| m.coord_of_rank(r)).collect();
                let second: Vec<_> = (half.min(p)..p).map(|r| m.coord_of_rank(r)).collect();
                // the two halves must not interleave completely: their
                // bounding boxes along the split dimension are disjoint when
                // the grid was split along dim 0 first (d0/f0 >= d1/f1).
                if d0 >= d1 && d0 >= 2 {
                    let max_first = first.iter().map(|c| c[0]).max().unwrap();
                    let min_second = second.iter().map(|c| c[0]).min().unwrap();
                    prop_assert!(max_first < d0);
                    prop_assert!(min_second <= d0);
                }
            }
        }
    }
}
