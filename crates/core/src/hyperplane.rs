//! The Hyperplane algorithm (Section V-A).
//!
//! A variation of recursive bisection: the grid is recursively split by a
//! hyperplane orthogonal to a grid dimension.  The cut dimension is chosen to
//! be as orthogonal as possible to the stencil offsets (Eq. 1/2 of the
//! paper), ties are broken towards the larger dimension, and the hyperplane
//! position is searched from the centre of the dimension outwards until both
//! induced sub-grids have a size that is a multiple of the node size `n`
//! (Theorem V.1 guarantees such a position exists whenever `n` divides the
//! grid size).  Once a sub-grid holds at most `2n` cells the remaining ranks
//! are placed directly, traversing the sub-grid with the most
//! communication-parallel dimension varying fastest — this produces the
//! "jagged" two-node split of the `2 × n` example in the paper instead of a
//! degenerate cut.
//!
//! The algorithm is *rank local*: every process derives its own coordinate
//! from the grid, the stencil, the node size and its rank in
//! `O(log N · Σ d_i)` time.

use crate::problem::{MapWorkspace, MappingProblem, RankLocalMapper};
use stencil_grid::Coord;
#[cfg(test)]
use stencil_grid::Stencil;

/// How the single node-size parameter `n` is derived from a heterogeneous
/// allocation (Section V-A: "one can use the mean, minimum or maximum of the
/// node sizes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeSizeChoice {
    /// Use the (rounded) mean node size — the default.
    #[default]
    Mean,
    /// Use the smallest node size.
    Min,
    /// Use the largest node size.
    Max,
}

/// The Hyperplane mapping algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hyperplane {
    /// Node-size parameter selection for heterogeneous allocations.
    pub node_size: NodeSizeChoice,
}

impl Hyperplane {
    /// Creates the algorithm with an explicit node-size selection strategy.
    pub fn with_node_size(node_size: NodeSizeChoice) -> Self {
        Hyperplane { node_size }
    }

    fn node_size_parameter(&self, problem: &MappingProblem) -> usize {
        let alloc = problem.alloc();
        match self.node_size {
            NodeSizeChoice::Mean => alloc.representative_size(),
            NodeSizeChoice::Min => alloc.min_size(),
            NodeSizeChoice::Max => alloc.max_size(),
        }
        .max(1)
    }
}

impl RankLocalMapper for Hyperplane {
    fn local_name(&self) -> &str {
        "Hyperplane"
    }

    fn remap_rank(&self, problem: &MappingProblem, rank: usize) -> Coord {
        let mut ws = MapWorkspace::new();
        let mut out = vec![0usize; problem.dims().ndims()];
        self.remap_rank_into(problem, rank, &mut ws, &mut out);
        out
    }

    fn remap_rank_into(
        &self,
        problem: &MappingProblem,
        rank: usize,
        ws: &mut MapWorkspace,
        out: &mut [usize],
    ) {
        let stencil = problem.stencil();
        let n = self.node_size_parameter(problem);
        // rank-independent: computed once per workspace (one workspace serves
        // exactly one problem, see MapWorkspace)
        if ws.cos2.is_empty() {
            stencil.cos2_sums_into(&mut ws.cos2);
        }
        ws.sizes.clear();
        ws.sizes.extend_from_slice(problem.dims().as_slice());
        ws.origin.clear();
        ws.origin.resize(ws.sizes.len(), 0);
        let mut r = rank;

        loop {
            let vol: usize = ws.sizes.iter().product();
            if vol <= 2 * n {
                cut_order_into(&ws.cos2, &ws.sizes, &mut ws.order);
                base_case_coord_into(&ws.sizes, &ws.order, r, out);
                for (o, l) in out.iter_mut().zip(&ws.origin) {
                    *o += l;
                }
                return;
            }
            let (dim, d1, _d2) = find_split_with(&ws.sizes, &ws.cos2, n, &mut ws.order)
                .unwrap_or_else(|| fallback_split(&ws.sizes));
            let lhs_vol = vol / ws.sizes[dim] * d1;
            if r < lhs_vol {
                ws.sizes[dim] = d1;
            } else {
                r -= lhs_vol;
                ws.origin[dim] += d1;
                ws.sizes[dim] -= d1;
            }
        }
    }
}

/// Writes the dimensions sorted by cut preference into `out`: ascending cos²
/// sum (Eq. 2), ties broken by descending dimension size, then ascending
/// index.  The allocation-free core of `Stencil::preferred_cut_order`.
fn cut_order_into(cos2: &[f64], sizes: &[usize], out: &mut Vec<usize>) {
    out.clear();
    out.extend(0..sizes.len());
    out.sort_by(|&a, &b| {
        cos2[a]
            .partial_cmp(&cos2[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| sizes[b].cmp(&sizes[a]))
            .then_with(|| a.cmp(&b))
    });
}

/// Finds a cut dimension and hyperplane position such that both induced
/// sub-grids have a size that is a multiple of `n`.
///
/// Dimensions are tried in the preferred cut order (Eq. 2, ties towards the
/// larger dimension); within a dimension, positions are tried from the centre
/// outwards so the resulting sub-grids are as balanced as possible
/// (Theorem V.2: the size ratio lies in `[1/2, 1]`).
#[cfg(test)]
pub(crate) fn find_split(
    sizes: &[usize],
    stencil: &Stencil,
    n: usize,
) -> Option<(usize, usize, usize)> {
    find_split_with(sizes, &stencil.cos2_sums(), n, &mut Vec::new())
}

/// [`find_split`] with precomputed cos² sums and a reusable order buffer.
fn find_split_with(
    sizes: &[usize],
    cos2: &[f64],
    n: usize,
    order: &mut Vec<usize>,
) -> Option<(usize, usize, usize)> {
    let vol: usize = sizes.iter().product();
    cut_order_into(cos2, sizes, order);
    for &dim in order.iter() {
        let di = sizes[dim];
        if di < 2 {
            continue;
        }
        let rest = vol / di;
        let mid = di / 2;
        for delta in 0..di {
            for &cand in &[mid.wrapping_sub(delta), mid + delta] {
                if cand == 0 || cand >= di || (delta == 0 && cand != mid) {
                    continue;
                }
                let lhs = cand * rest;
                let rhs = (di - cand) * rest;
                if lhs.is_multiple_of(n) && rhs.is_multiple_of(n) {
                    return Some((dim, cand, di - cand));
                }
            }
        }
    }
    None
}

/// Fallback when no suitable multiple-of-`n` split exists (only possible when
/// `n` does not divide the grid size, e.g. with heterogeneous allocations):
/// split the largest dimension at its centre.
fn fallback_split(sizes: &[usize]) -> (usize, usize, usize) {
    let (dim, &di) = sizes
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d >= 2)
        .max_by_key(|&(_, &d)| d)
        .expect("a splittable dimension exists while the volume exceeds 2n");
    (dim, di / 2, di - di / 2)
}

/// Direct placement inside a sub-grid of at most `2n` cells: the `r`-th cell
/// of a traversal in which the preferred cut dimensions vary slowest (and the
/// dimensions most parallel to the stencil vary fastest), so that the cells
/// of one node stay as coherent as possible.
#[cfg(test)]
pub(crate) fn base_case_coord(sizes: &[usize], stencil: &Stencil, r: usize) -> Coord {
    let mut order = Vec::new();
    cut_order_into(&stencil.cos2_sums(), sizes, &mut order);
    let mut coord = vec![0usize; sizes.len()];
    base_case_coord_into(sizes, &order, r, &mut coord);
    coord
}

/// Allocation-free core of [`base_case_coord`]: decodes `r` under the given
/// cut order into `out`.
fn base_case_coord_into(sizes: &[usize], order: &[usize], r: usize, out: &mut [usize]) {
    let mut rem = r;
    out.fill(0);
    for &dim in order.iter().rev() {
        out[dim] = rem % sizes[dim];
        rem /= sizes[dim];
    }
    debug_assert_eq!(rem, 0, "rank exceeds sub-grid volume");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Blocked;
    use crate::metrics::evaluate;
    use crate::problem::{Mapper, MappingProblem};
    use proptest::prelude::*;
    use stencil_grid::{CartGraph, Dims, NodeAllocation, Stencil};

    fn problem(dims: &[usize], nodes: usize, per: usize, stencil: Stencil) -> MappingProblem {
        MappingProblem::new(
            Dims::from_slice(dims),
            stencil,
            NodeAllocation::homogeneous(nodes, per),
        )
        .unwrap()
    }

    #[test]
    fn figure4_first_split_is_along_largest_dimension() {
        // 5 x 4 grid, nearest neighbor, n = 4: the first split cuts the
        // dimension of size 5 into 2 + 3 (Fig. 4a).
        let s = Stencil::nearest_neighbor(2);
        let split = find_split(&[5, 4], &s, 4).unwrap();
        assert_eq!(split.0, 0);
        assert_eq!((split.1.min(split.2), split.1.max(split.2)), (2, 3));
    }

    #[test]
    fn component_stencil_prefers_orthogonal_cut() {
        // Communication along dim 0 only -> cut dimension 1 first.
        let s = Stencil::component(2);
        let split = find_split(&[6, 6], &s, 6).unwrap();
        assert_eq!(split.0, 1);
    }

    #[test]
    fn base_case_produces_jagged_two_node_split() {
        // The 2 x n example of Section V-A: a [2, 9] grid with n = 9 must not
        // be cut into two [1, 9] halves; the direct placement gives each node
        // a compact, jagged half with only 3 cut edge pairs.
        let dims = Dims::from_slice(&[2, 9]);
        let s = Stencil::nearest_neighbor(2);
        let prob = problem(&[2, 9], 2, 9, s.clone());
        let m = Hyperplane::default().compute(&prob).unwrap();
        let g = CartGraph::build(&dims, &s, false);
        let cost = evaluate(&g, &m);
        // 3 cut pairs = 6 directed edges, 3 outgoing per node
        assert_eq!(cost.j_sum, 6);
        assert_eq!(cost.j_max, 3);
        // the naive [1,9]/[1,9] cut would cost 9 outgoing edges per node
        assert!(cost.j_max < 9);
    }

    #[test]
    fn produces_valid_mapping_on_paper_headline_instance() {
        let prob = problem(&[50, 48], 50, 48, Stencil::nearest_neighbor(2));
        let m = Hyperplane::default().compute(&prob).unwrap();
        assert!(m.respects_allocation(prob.alloc()));
        let g = CartGraph::build(prob.dims(), prob.stencil(), false);
        let cost = evaluate(&g, &m);
        let blocked = evaluate(&g, &Blocked.compute(&prob).unwrap());
        // Paper (Fig. 6): Hyperplane Jsum = 1328 vs blocked 4704 and
        // Nodecart 2404.  Allow slack but require a clear win.
        assert!(cost.j_sum < 2000, "Jsum = {}", cost.j_sum);
        assert!(cost.j_sum < blocked.j_sum);
        assert!(cost.j_max < blocked.j_max);
    }

    #[test]
    fn improves_hops_and_component_stencils() {
        for (stencil, bound) in [
            (Stencil::nearest_neighbor_with_hops(2), 6000u64),
            (Stencil::component(2), 1000u64),
        ] {
            let prob = problem(&[50, 48], 50, 48, stencil);
            let g = CartGraph::build(prob.dims(), prob.stencil(), false);
            let cost = evaluate(&g, &Hyperplane::default().compute(&prob).unwrap());
            let blocked = evaluate(&g, &Blocked.compute(&prob).unwrap());
            assert!(cost.j_sum < blocked.j_sum);
            assert!(cost.j_sum <= bound, "Jsum = {} > {}", cost.j_sum, bound);
        }
    }

    #[test]
    fn handles_non_divisible_process_count() {
        // 7 nodes x 5 processes = 35 = 7 x 5 grid; n divides p here, but also
        // test a case where it does not: 3 nodes with sizes 5, 4, 3 on a 4x3
        // grid (p = 12).
        let prob = MappingProblem::new(
            Dims::from_slice(&[4, 3]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::heterogeneous(vec![5, 4, 3]).unwrap(),
        )
        .unwrap();
        let m = Hyperplane::default().compute(&prob).unwrap();
        assert!(m.respects_allocation(prob.alloc()));
    }

    #[test]
    fn node_size_choice_variants_work() {
        let prob = MappingProblem::new(
            Dims::from_slice(&[6, 4]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::heterogeneous(vec![10, 8, 6]).unwrap(),
        )
        .unwrap();
        for choice in [
            NodeSizeChoice::Mean,
            NodeSizeChoice::Min,
            NodeSizeChoice::Max,
        ] {
            let m = Hyperplane::with_node_size(choice).compute(&prob).unwrap();
            assert!(m.respects_allocation(prob.alloc()));
        }
        assert_eq!(Hyperplane::default().node_size_parameter(&prob), 8);
        assert_eq!(
            Hyperplane::with_node_size(NodeSizeChoice::Min).node_size_parameter(&prob),
            6
        );
        assert_eq!(
            Hyperplane::with_node_size(NodeSizeChoice::Max).node_size_parameter(&prob),
            10
        );
    }

    #[test]
    fn three_dimensional_grid() {
        let prob = problem(&[8, 6, 4], 12, 16, Stencil::nearest_neighbor(3));
        let m = Hyperplane::default().compute(&prob).unwrap();
        assert!(m.respects_allocation(prob.alloc()));
        let g = CartGraph::build(prob.dims(), prob.stencil(), false);
        let cost = evaluate(&g, &m);
        let blocked = evaluate(&g, &Blocked.compute(&prob).unwrap());
        assert!(cost.j_sum <= blocked.j_sum);
    }

    #[test]
    fn split_balance_respects_theorem_v2() {
        // Whenever n divides the grid size and at least two nodes fit, the
        // chosen split keeps the size ratio within [1/2, 1].
        let s = Stencil::nearest_neighbor(2);
        for (sizes, n) in [
            (vec![50usize, 48usize], 48usize),
            (vec![12, 12], 16),
            (vec![9, 8], 8),
            (vec![30, 7], 7),
        ] {
            let vol: usize = sizes.iter().product();
            assert_eq!(vol % n, 0);
            let (dim, d1, d2) = find_split(&sizes, &s, n).expect("split exists (Thm V.1)");
            let rest = vol / sizes[dim];
            let (a, b) = ((d1 * rest) as f64, (d2 * rest) as f64);
            let ratio = a.min(b) / a.max(b);
            assert!(ratio >= 0.5 - 1e-9, "ratio {ratio} for sizes {sizes:?}");
        }
    }

    proptest! {
        #[test]
        fn prop_valid_permutation(
            d0 in 2usize..9, d1 in 2usize..9, per in 2usize..7,
        ) {
            let p = d0 * d1;
            if p % per == 0 {
                let prob = problem(&[d0, d1], p / per, per, Stencil::nearest_neighbor(2));
                let m = Hyperplane::default().compute(&prob).unwrap();
                prop_assert!(m.respects_allocation(prob.alloc()));
            }
        }

        #[test]
        fn prop_never_worse_than_blocked_plus_margin(
            d0 in 2usize..8, d1 in 2usize..8, per in 2usize..6,
        ) {
            // The algorithm is a heuristic, but on nearest-neighbor stencils
            // it should essentially never be worse than the blocked mapping.
            let p = d0 * d1;
            if p % per == 0 && p / per >= 2 {
                let prob = problem(&[d0, d1], p / per, per, Stencil::nearest_neighbor(2));
                let g = CartGraph::build(prob.dims(), prob.stencil(), false);
                let hp = evaluate(&g, &Hyperplane::default().compute(&prob).unwrap());
                let bl = evaluate(&g, &Blocked.compute(&prob).unwrap());
                prop_assert!(hp.j_sum <= bl.j_sum + bl.j_sum / 4,
                    "hyperplane {} vs blocked {}", hp.j_sum, bl.j_sum);
            }
        }

        #[test]
        fn prop_base_case_coord_is_bijective(
            d0 in 1usize..5, d1 in 1usize..5, d2 in 1usize..4,
        ) {
            let sizes = vec![d0, d1, d2];
            let s = Stencil::nearest_neighbor(3);
            let vol = d0 * d1 * d2;
            let mut seen = std::collections::HashSet::new();
            for r in 0..vol {
                let c = base_case_coord(&sizes, &s, r);
                prop_assert!(c[0] < d0 && c[1] < d1 && c[2] < d2);
                prop_assert!(seen.insert(c));
            }
        }
    }
}
