//! # stencil-mapping
//!
//! The primary contribution of *"Efficient Process-to-Node Mapping Algorithms
//! for Stencil Computations"* (Hunold, von Kirchbach, Lehr, Schulz, Träff —
//! IEEE CLUSTER 2020): rank-reordering algorithms that map the processes of a
//! Cartesian stencil computation onto compute nodes such that inter-node
//! communication is minimised.
//!
//! ## Algorithms
//!
//! * [`Hyperplane`](hyperplane::Hyperplane) — recursive bisection with
//!   stencil-aware cut-dimension selection (Section V-A),
//! * [`KdTree`](kdtree::KdTree) — k-d-tree-style recursive halving, oblivious
//!   to the node size (Section V-B),
//! * [`StencilStrips`](stencil_strips::StencilStrips) — strip decomposition
//!   scaled to the stencil bounding box (Section V-C),
//! * [`Nodecart`](nodecart::Nodecart) — Gropp's prime-factorisation based
//!   Cartesian mapping (the state-of-the-art baseline of the paper),
//! * [`GraphMapper`](viem::GraphMapper) — a general graph-mapping baseline in
//!   the spirit of VieM, built on the from-scratch multilevel partitioner of
//!   the [`graph_partition`] crate,
//! * [`Blocked`](baselines::Blocked), [`RoundRobin`](baselines::RoundRobin)
//!   and [`RandomMapping`](baselines::RandomMapping) — trivial baselines.
//!
//! ## Objective
//!
//! Given the communication graph induced by a grid and a stencil, the cost of
//! a mapping is measured by [`metrics::MappingCost`]:
//! `Jsum` (total number of inter-node communication edges) and `Jmax`
//! (edges leaving the most loaded, *bottleneck*, node).
//!
//! ## Quick example
//!
//! ```
//! use stencil_grid::{Dims, Stencil, NodeAllocation, CartGraph};
//! use stencil_mapping::{MappingProblem, Mapper, metrics};
//! use stencil_mapping::hyperplane::Hyperplane;
//! use stencil_mapping::baselines::Blocked;
//!
//! let problem = MappingProblem::new(
//!     Dims::from_slice(&[50, 48]),
//!     Stencil::nearest_neighbor(2),
//!     NodeAllocation::homogeneous(50, 48),
//! ).unwrap();
//!
//! let graph = CartGraph::build(problem.dims(), problem.stencil(), false);
//! let blocked = metrics::evaluate(&graph, &Blocked.compute(&problem).unwrap());
//! let hp = metrics::evaluate(&graph, &Hyperplane::default().compute(&problem).unwrap());
//! assert!(hp.j_sum < blocked.j_sum);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod analysis;
pub mod baselines;
pub mod canonical;
pub mod cart_comm;
pub mod hyperplane;
pub mod kdtree;
pub mod mapping;
pub mod metrics;
pub mod nodecart;
pub mod problem;
pub mod stencil_strips;
pub mod viem;

pub use cart_comm::CartStencilComm;
pub use mapping::Mapping;
pub use metrics::MappingCost;
pub use problem::{MapError, Mapper, MappingProblem, RankLocalMapper};

/// Re-export of the grid vocabulary crate for convenience.
pub use stencil_grid as grid;

/// Returns boxed instances of every mapper evaluated in the paper, in the
/// order used by the figures: the three new algorithms, the two previous
/// approaches and the blocked baseline.
///
/// `seed` controls the randomised components (the VieM-style local search and
/// the random baseline are seeded deterministically from it).
pub fn all_paper_mappers(seed: u64) -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(hyperplane::Hyperplane::default()),
        Box::new(kdtree::KdTree),
        Box::new(stencil_strips::StencilStrips),
        Box::new(nodecart::Nodecart),
        Box::new(viem::GraphMapper::with_seed(seed)),
        Box::new(baselines::Blocked),
        Box::new(baselines::RandomMapping::with_seed(seed)),
    ]
}

/// Returns only the three algorithms introduced by the paper.
pub fn new_paper_mappers() -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(hyperplane::Hyperplane::default()),
        Box::new(kdtree::KdTree),
        Box::new(stencil_strips::StencilStrips),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapper_lists_have_expected_sizes_and_names() {
        let all = all_paper_mappers(1);
        assert_eq!(all.len(), 7);
        let names: Vec<_> = all.iter().map(|m| m.name().to_string()).collect();
        assert!(names.iter().any(|n| n.contains("Hyperplane")));
        assert!(names.iter().any(|n| n.contains("k-d Tree")));
        assert!(names.iter().any(|n| n.contains("Stencil Strips")));
        assert!(names.iter().any(|n| n.contains("Nodecart")));
        assert_eq!(new_paper_mappers().len(), 3);
    }
}
