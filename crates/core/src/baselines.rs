//! Trivial baseline mappings: blocked, round-robin and random.
//!
//! The *blocked* assignment is the reference every algorithm is compared
//! against in the paper ("Standard"); *Random* appears in the appendix tables
//! and is consistently the worst mapping; *RoundRobin* (cyclic) is included
//! as an additional adversarial baseline often produced by schedulers.

use crate::problem::{MapError, Mapper, MappingProblem, RankLocalMapper};
use crate::Mapping;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stencil_grid::Coord;

/// The blocked (identity) mapping: rank `r` owns grid position `r`, so node
/// `i` owns a contiguous row-major block of `n_i` grid cells.  This is what
/// MPI implementations do when `MPI_Cart_create` does not reorder.
#[derive(Debug, Clone, Copy, Default)]
pub struct Blocked;

impl RankLocalMapper for Blocked {
    fn local_name(&self) -> &str {
        "Blocked"
    }

    fn remap_rank(&self, problem: &MappingProblem, rank: usize) -> Coord {
        problem.dims().coord_of(rank)
    }
}

/// A cyclic (round-robin) assignment: grid positions are dealt to the nodes
/// one at a time, so consecutive grid cells land on different nodes.  This is
/// close to the worst possible mapping for stencil communication.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl Mapper for RoundRobin {
    fn name(&self) -> &str {
        "RoundRobin"
    }

    fn compute(&self, problem: &MappingProblem) -> Result<Mapping, MapError> {
        let p = problem.num_processes();
        let n_nodes = problem.num_nodes();
        let alloc = problem.alloc();
        // Deal positions to nodes cyclically, skipping nodes that are full.
        let mut remaining: Vec<usize> = (0..n_nodes).map(|i| alloc.node_size(i)).collect();
        let mut node_of_position = Vec::with_capacity(p);
        let mut next = 0usize;
        for _ in 0..p {
            let mut tries = 0;
            while remaining[next] == 0 {
                next = (next + 1) % n_nodes;
                tries += 1;
                debug_assert!(tries <= n_nodes, "allocation exhausted prematurely");
            }
            node_of_position.push(next);
            remaining[next] -= 1;
            next = (next + 1) % n_nodes;
        }
        Mapping::from_node_of_position(problem, &node_of_position)
    }
}

/// A uniformly random assignment of grid positions to nodes (respecting the
/// allocation sizes), seeded for reproducibility.
#[derive(Debug, Clone)]
pub struct RandomMapping {
    seed: u64,
}

impl Default for RandomMapping {
    fn default() -> Self {
        RandomMapping { seed: 0x5713 }
    }
}

impl RandomMapping {
    /// Creates a random mapping generator with an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        RandomMapping { seed }
    }
}

impl Mapper for RandomMapping {
    fn name(&self) -> &str {
        "Random"
    }

    fn compute(&self, problem: &MappingProblem) -> Result<Mapping, MapError> {
        let p = problem.num_processes();
        let mut positions: Vec<usize> = (0..p).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        positions.shuffle(&mut rng);
        Mapping::from_positions(problem, positions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;
    use stencil_grid::{CartGraph, Dims, NodeAllocation, Stencil};

    fn problem() -> MappingProblem {
        MappingProblem::new(
            Dims::from_slice(&[6, 4]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(6, 4),
        )
        .unwrap()
    }

    #[test]
    fn blocked_is_identity() {
        let p = problem();
        let m = Blocked.compute(&p).unwrap();
        for r in 0..p.num_processes() {
            assert_eq!(m.position_of_rank(r), r);
        }
        assert_eq!(Mapper::name(&Blocked), "Blocked");
    }

    #[test]
    fn round_robin_spreads_consecutive_cells() {
        let p = problem();
        let m = RoundRobin.compute(&p).unwrap();
        assert!(m.respects_allocation(p.alloc()));
        // consecutive positions land on different nodes
        for x in 0..p.num_processes() - 1 {
            assert_ne!(m.node_of_position(x), m.node_of_position(x + 1));
        }
        assert_eq!(RoundRobin.name(), "RoundRobin");
    }

    #[test]
    fn round_robin_heterogeneous_allocation() {
        let p = MappingProblem::new(
            Dims::from_slice(&[3, 3]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::heterogeneous(vec![5, 2, 2]).unwrap(),
        )
        .unwrap();
        let m = RoundRobin.compute(&p).unwrap();
        assert!(m.respects_allocation(p.alloc()));
        assert_eq!(m.node_loads(), vec![5, 2, 2]);
    }

    #[test]
    fn random_is_reproducible_and_seed_sensitive() {
        let p = problem();
        let a = RandomMapping::with_seed(7).compute(&p).unwrap();
        let b = RandomMapping::with_seed(7).compute(&p).unwrap();
        let c = RandomMapping::with_seed(8).compute(&p).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.respects_allocation(p.alloc()));
        assert_eq!(RandomMapping::default().name(), "Random");
    }

    #[test]
    fn baselines_are_ordered_blocked_best_on_stencils() {
        // On a nearest-neighbor stencil the blocked mapping is strictly
        // better than round robin and random (with very high probability).
        let p = problem();
        let g = CartGraph::build(p.dims(), p.stencil(), false);
        let blocked = evaluate(&g, &Blocked.compute(&p).unwrap());
        let rr = evaluate(&g, &RoundRobin.compute(&p).unwrap());
        let rnd = evaluate(&g, &RandomMapping::with_seed(3).compute(&p).unwrap());
        assert!(blocked.j_sum < rr.j_sum);
        assert!(blocked.j_sum <= rnd.j_sum);
    }
}
