//! The result of a mapping algorithm: a rank ↔ grid-position permutation and
//! the induced process-to-node assignment.

use crate::problem::{MapError, MappingProblem};
use stencil_grid::{Coord, Dims, NodeAllocation};

/// A process-to-node mapping.
///
/// Conceptually this is the mapping function `M : V → N` of the paper: every
/// grid position (vertex of the Cartesian graph) is assigned to a compute
/// node.  Because the scheduler's allocation of *ranks* to nodes is fixed
/// (node `i` owns the contiguous rank block of size `n_i`), the mapping is
/// represented as a permutation between ranks and grid positions: rank `r`
/// owns grid position `position_of_rank(r)`, and consequently that position
/// is located on node `alloc.node_of_rank(r)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    dims: Dims,
    num_nodes: usize,
    /// `position_of_rank[r]` = row-major index of the grid position owned by rank `r`.
    position_of_rank: Vec<usize>,
    /// Inverse permutation: `rank_of_position[x]` = rank owning grid position `x`.
    rank_of_position: Vec<usize>,
    /// `node_of_position[x]` = compute node that grid position `x` resides on.
    node_of_position: Vec<usize>,
}

impl Mapping {
    /// Builds a mapping from the new coordinates computed for every rank
    /// (the natural output of the paper's distributed algorithms).
    ///
    /// Fails if the coordinates do not form a permutation of the grid cells.
    pub fn from_rank_coords(problem: &MappingProblem, coords: &[Coord]) -> Result<Self, MapError> {
        let dims = problem.dims();
        let p = dims.volume();
        if coords.len() != p {
            return Err(MapError::InvalidResult(format!(
                "expected {p} coordinates, got {}",
                coords.len()
            )));
        }
        let mut position_of_rank = Vec::with_capacity(p);
        for (r, c) in coords.iter().enumerate() {
            if !dims.contains(c) {
                return Err(MapError::InvalidResult(format!(
                    "rank {r} was assigned out-of-grid coordinate {c:?}"
                )));
            }
            position_of_rank.push(dims.rank_of(c));
        }
        Self::from_positions(problem, position_of_rank)
    }

    /// Builds a mapping from the linear grid position assigned to every rank.
    pub fn from_positions(
        problem: &MappingProblem,
        position_of_rank: Vec<usize>,
    ) -> Result<Self, MapError> {
        let dims = problem.dims().clone();
        let alloc = problem.alloc();
        let p = dims.volume();
        if position_of_rank.len() != p {
            return Err(MapError::InvalidResult(format!(
                "expected {p} positions, got {}",
                position_of_rank.len()
            )));
        }
        let mut rank_of_position = vec![usize::MAX; p];
        for (r, &x) in position_of_rank.iter().enumerate() {
            if x >= p {
                return Err(MapError::InvalidResult(format!(
                    "rank {r} was assigned out-of-range position {x}"
                )));
            }
            if rank_of_position[x] != usize::MAX {
                return Err(MapError::InvalidResult(format!(
                    "position {x} assigned to both rank {} and rank {r}",
                    rank_of_position[x]
                )));
            }
            rank_of_position[x] = r;
        }
        let node_of_position: Vec<usize> = rank_of_position
            .iter()
            .map(|&r| alloc.node_of_rank(r))
            .collect();
        Ok(Mapping {
            dims,
            num_nodes: alloc.num_nodes(),
            position_of_rank,
            rank_of_position,
            node_of_position,
        })
    }

    /// The identity (blocked) mapping: rank `r` owns grid position `r`.
    pub fn identity(problem: &MappingProblem) -> Self {
        let p = problem.num_processes();
        Self::from_positions(problem, (0..p).collect()).expect("identity is always valid")
    }

    /// Builds a mapping directly from a `position → node` assignment.
    ///
    /// Ranks of each node are assigned to the node's positions in increasing
    /// position order.  Fails if the per-node position counts do not match
    /// the allocation sizes.
    pub fn from_node_of_position(
        problem: &MappingProblem,
        node_of_position: &[usize],
    ) -> Result<Self, MapError> {
        let alloc = problem.alloc();
        let p = problem.num_processes();
        if node_of_position.len() != p {
            return Err(MapError::InvalidResult(format!(
                "expected {p} node assignments, got {}",
                node_of_position.len()
            )));
        }
        let mut counts = vec![0usize; alloc.num_nodes()];
        for &nd in node_of_position {
            if nd >= alloc.num_nodes() {
                return Err(MapError::InvalidResult(format!("node {nd} out of range")));
            }
            counts[nd] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            if c != alloc.node_size(i) {
                return Err(MapError::InvalidResult(format!(
                    "node {i} received {c} positions but hosts {} processes",
                    alloc.node_size(i)
                )));
            }
        }
        // Hand the node's positions to its ranks in increasing order.
        let mut next_rank: Vec<usize> = (0..alloc.num_nodes())
            .map(|i| alloc.ranks_of_node(i).start)
            .collect();
        let mut position_of_rank = vec![usize::MAX; p];
        for (x, &nd) in node_of_position.iter().enumerate() {
            let r = next_rank[nd];
            next_rank[nd] += 1;
            position_of_rank[r] = x;
        }
        Self::from_positions(problem, position_of_rank)
    }

    /// Grid dimensions of the mapping.
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    /// Number of compute nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of processes / grid positions.
    pub fn num_processes(&self) -> usize {
        self.position_of_rank.len()
    }

    /// The linear grid position owned by `rank`.
    #[inline]
    pub fn position_of_rank(&self, rank: usize) -> usize {
        self.position_of_rank[rank]
    }

    /// The grid coordinate owned by `rank`.
    pub fn coord_of_rank(&self, rank: usize) -> Coord {
        self.dims.coord_of(self.position_of_rank[rank])
    }

    /// The rank owning the given linear grid position.
    #[inline]
    pub fn rank_of_position(&self, position: usize) -> usize {
        self.rank_of_position[position]
    }

    /// The compute node on which the given linear grid position resides.
    #[inline]
    pub fn node_of_position(&self, position: usize) -> usize {
        self.node_of_position[position]
    }

    /// The compute node of a grid coordinate.
    pub fn node_of_coord(&self, coord: &[usize]) -> usize {
        self.node_of_position[self.dims.rank_of(coord)]
    }

    /// The full `position → node` assignment.
    pub fn node_of_position_slice(&self) -> &[usize] {
        &self.node_of_position
    }

    /// The full `rank → position` permutation.
    pub fn position_of_rank_slice(&self) -> &[usize] {
        &self.position_of_rank
    }

    /// The new MPI rank of a process after reordering: the row-major rank of
    /// its new coordinate (as `MPI_Cart_create` with `reorder = 1` would
    /// return).
    #[inline]
    pub fn new_rank_of(&self, old_rank: usize) -> usize {
        self.position_of_rank[old_rank]
    }

    /// The old rank of the process that ends up with `new_rank` after
    /// reordering.
    #[inline]
    pub fn old_rank_of(&self, new_rank: usize) -> usize {
        self.rank_of_position[new_rank]
    }

    /// Checks that the mapping respects the allocation: node `i` owns exactly
    /// `n_i` grid positions.
    pub fn respects_allocation(&self, alloc: &NodeAllocation) -> bool {
        if alloc.num_nodes() != self.num_nodes {
            return false;
        }
        let mut counts = vec![0usize; self.num_nodes];
        for &nd in &self.node_of_position {
            counts[nd] += 1;
        }
        counts
            .iter()
            .enumerate()
            .all(|(i, &c)| c == alloc.node_size(i))
    }

    /// Returns the number of positions each node owns.
    pub fn node_loads(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_nodes];
        for &nd in &self.node_of_position {
            counts[nd] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::MappingProblem;
    use proptest::prelude::*;
    use stencil_grid::{Dims, NodeAllocation, Stencil};

    fn problem(d0: usize, d1: usize, nodes: usize, per: usize) -> MappingProblem {
        MappingProblem::new(
            Dims::from_slice(&[d0, d1]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(nodes, per),
        )
        .unwrap()
    }

    #[test]
    fn identity_mapping_is_blocked() {
        let p = problem(4, 4, 4, 4);
        let m = Mapping::identity(&p);
        assert_eq!(m.num_processes(), 16);
        assert_eq!(m.num_nodes(), 4);
        for r in 0..16 {
            assert_eq!(m.position_of_rank(r), r);
            assert_eq!(m.rank_of_position(r), r);
            assert_eq!(m.node_of_position(r), r / 4);
            assert_eq!(m.new_rank_of(r), r);
            assert_eq!(m.old_rank_of(r), r);
        }
        assert!(m.respects_allocation(p.alloc()));
        assert_eq!(m.node_loads(), vec![4, 4, 4, 4]);
    }

    #[test]
    fn from_rank_coords_builds_permutation() {
        let p = problem(2, 2, 2, 2);
        // transpose the grid
        let coords = vec![vec![0, 0], vec![1, 0], vec![0, 1], vec![1, 1]];
        let m = Mapping::from_rank_coords(&p, &coords).unwrap();
        assert_eq!(m.coord_of_rank(1), vec![1, 0]);
        assert_eq!(m.position_of_rank(1), 2);
        assert_eq!(m.rank_of_position(2), 1);
        // node of position (1,0): owned by rank 1 which lives on node 0
        assert_eq!(m.node_of_coord(&[1, 0]), 0);
        assert_eq!(m.node_of_coord(&[0, 1]), 1);
    }

    #[test]
    fn from_rank_coords_rejects_bad_input() {
        let p = problem(2, 2, 2, 2);
        // wrong length
        assert!(Mapping::from_rank_coords(&p, &[vec![0, 0]]).is_err());
        // out of grid
        let coords = vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![2, 0]];
        assert!(Mapping::from_rank_coords(&p, &coords).is_err());
        // duplicate
        let coords = vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![0, 0]];
        assert!(matches!(
            Mapping::from_rank_coords(&p, &coords),
            Err(MapError::InvalidResult(_))
        ));
    }

    #[test]
    fn from_positions_rejects_out_of_range() {
        let p = problem(2, 2, 2, 2);
        assert!(Mapping::from_positions(&p, vec![0, 1, 2, 7]).is_err());
        assert!(Mapping::from_positions(&p, vec![0, 1, 2]).is_err());
    }

    #[test]
    fn from_node_of_position_respects_allocation() {
        let p = problem(2, 2, 2, 2);
        let m = Mapping::from_node_of_position(&p, &[1, 0, 0, 1]).unwrap();
        assert!(m.respects_allocation(p.alloc()));
        assert_eq!(m.node_of_position(0), 1);
        assert_eq!(m.node_of_position(1), 0);
        // ranks 0,1 live on node 0 and must own positions 1 and 2
        assert_eq!(m.position_of_rank(0), 1);
        assert_eq!(m.position_of_rank(1), 2);
        // unbalanced assignment is rejected
        assert!(Mapping::from_node_of_position(&p, &[0, 0, 0, 1]).is_err());
        assert!(Mapping::from_node_of_position(&p, &[0, 0, 1, 5]).is_err());
        assert!(Mapping::from_node_of_position(&p, &[0, 0, 1]).is_err());
    }

    #[test]
    fn heterogeneous_allocation_node_of_position() {
        let prob = MappingProblem::new(
            Dims::from_slice(&[3, 2]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::heterogeneous(vec![4, 2]).unwrap(),
        )
        .unwrap();
        let m = Mapping::identity(&prob);
        assert_eq!(m.node_of_position(3), 0);
        assert_eq!(m.node_of_position(4), 1);
        assert_eq!(m.node_loads(), vec![4, 2]);
        assert!(m.respects_allocation(prob.alloc()));
        assert!(!m.respects_allocation(&NodeAllocation::homogeneous(2, 3)));
        assert!(!m.respects_allocation(&NodeAllocation::homogeneous(3, 2)));
    }

    proptest! {
        #[test]
        fn prop_random_permutation_roundtrips(seed in 0u64..500) {
            use rand::prelude::*;
            use rand::seq::SliceRandom;
            let p = problem(4, 6, 6, 4);
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut positions: Vec<usize> = (0..24).collect();
            positions.shuffle(&mut rng);
            let m = Mapping::from_positions(&p, positions.clone()).unwrap();
            for (r, &pos) in positions.iter().enumerate() {
                prop_assert_eq!(m.position_of_rank(r), pos);
                prop_assert_eq!(m.rank_of_position(pos), r);
                prop_assert_eq!(m.old_rank_of(m.new_rank_of(r)), r);
            }
            prop_assert!(m.respects_allocation(p.alloc()));
        }
    }
}
