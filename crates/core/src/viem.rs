//! A general graph-mapping baseline in the spirit of VieM (Vienna Mapping).
//!
//! The paper compares its specialised algorithms against VieM (Schulz &
//! Träff, *Better Process Mapping and Sparse Quadratic Assignment*), a
//! sequential, high-quality general graph mapping tool.  VieM is not
//! available as a library, so this module rebuilds the relevant pipeline on
//! top of the from-scratch [`graph_partition`] crate:
//!
//! 1. the Cartesian communication graph is handed over as an *unstructured*
//!    graph (the mapper deliberately ignores the grid structure, exactly like
//!    VieM does),
//! 2. the graph is partitioned into parts of the exact node sizes with
//!    multilevel recursive bisection,
//! 3. a randomized pairwise-swap local search over connected vertex pairs
//!    refines the mapping, using the same objective as the paper's
//!    experiments (`hierarchy n:N`, `distance 0:1` — minimise inter-node
//!    communication).
//!
//! As in the paper, this baseline reaches mapping quality comparable to the
//! specialised algorithms but is orders of magnitude slower (see the
//! instantiation-time benchmark, Fig. 9).

use crate::problem::{MapError, Mapper, MappingProblem};
use crate::Mapping;
use graph_partition::{partition, refine_kway_with, Graph, PartitionConfig, RefineConfig};
use stencil_grid::CartGraph;

/// VieM-style general graph mapper (multilevel partitioning + swap search).
#[derive(Debug, Clone)]
pub struct GraphMapper {
    /// Seed of the randomised components.
    pub seed: u64,
    /// Rounds of pairwise-swap local search applied after partitioning.
    pub refine_rounds: usize,
    /// Whether the partitioner and the swap search may use multiple threads
    /// (the result is identical either way; see
    /// [`PartitionConfig::parallel`] and [`RefineConfig::parallel`]).
    pub parallel: bool,
}

impl Default for GraphMapper {
    fn default() -> Self {
        GraphMapper {
            seed: 0x71EA,
            refine_rounds: 12,
            parallel: true,
        }
    }
}

impl GraphMapper {
    /// Creates a mapper with the given seed and default search effort.
    pub fn with_seed(seed: u64) -> Self {
        GraphMapper {
            seed,
            ..Default::default()
        }
    }

    /// Creates a mapper with an explicit local-search effort (number of
    /// refinement rounds); `0` disables the local search.
    pub fn with_effort(seed: u64, refine_rounds: usize) -> Self {
        GraphMapper {
            seed,
            refine_rounds,
            ..Default::default()
        }
    }

    /// Enables or disables multi-threading (the mapping is unaffected).
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }
}

impl Mapper for GraphMapper {
    fn name(&self) -> &str {
        "VieM-style"
    }

    fn compute(&self, problem: &MappingProblem) -> Result<Mapping, MapError> {
        // 1. build the communication graph and strip its structure
        let cart = CartGraph::build(problem.dims(), problem.stencil(), problem.periodic());
        let graph = Graph::from_directed_csr(cart.xadj(), cart.adjncy());

        // 2. multilevel recursive bisection into exact node sizes
        let sizes: Vec<usize> = problem.alloc().sizes().to_vec();
        let cfg = PartitionConfig::new(sizes)
            .with_seed(self.seed)
            .with_parallel(self.parallel);
        let mut parts = partition(&graph, &cfg)
            .map_err(|e| MapError::InvalidResult(format!("partitioner failed: {e}")))?;

        // 3. swap-based local search (largest search space, as configured in
        //    the paper's experiments), parallel whenever the partitioner is
        if self.refine_rounds > 0 {
            let refine_cfg = RefineConfig::new(self.refine_rounds, self.seed ^ 0x9E37)
                .with_parallel(cfg.parallel);
            refine_kway_with(&graph, &mut parts, &refine_cfg);
        }

        let node_of_position: Vec<usize> = parts.iter().map(|&p| p as usize).collect();
        Mapping::from_node_of_position(problem, &node_of_position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::Blocked;
    use crate::metrics::evaluate;
    use crate::nodecart::Nodecart;
    use stencil_grid::{Dims, NodeAllocation, Stencil};

    fn problem(dims: &[usize], nodes: usize, per: usize, stencil: Stencil) -> MappingProblem {
        MappingProblem::new(
            Dims::from_slice(dims),
            stencil,
            NodeAllocation::homogeneous(nodes, per),
        )
        .unwrap()
    }

    #[test]
    fn produces_valid_balanced_mapping() {
        let p = problem(&[12, 8], 8, 12, Stencil::nearest_neighbor(2));
        let m = GraphMapper::with_seed(1).compute(&p).unwrap();
        assert!(m.respects_allocation(p.alloc()));
    }

    #[test]
    fn quality_beats_blocked_and_is_competitive_with_nodecart() {
        // A medium instance keeps the test fast: 24x20 grid, 20 nodes x 24.
        let p = problem(&[24, 20], 20, 24, Stencil::nearest_neighbor(2));
        let g = stencil_grid::CartGraph::build(p.dims(), p.stencil(), false);
        let viem = evaluate(&g, &GraphMapper::with_seed(3).compute(&p).unwrap());
        let blocked = evaluate(&g, &Blocked.compute(&p).unwrap());
        let nodecart = evaluate(&g, &Nodecart.compute(&p).unwrap());
        assert!(
            viem.j_sum < blocked.j_sum,
            "{} vs {}",
            viem.j_sum,
            blocked.j_sum
        );
        // VieM-style quality should at least be in the same ballpark as
        // Nodecart (the paper shows it is usually better than Nodecart).
        assert!(
            viem.j_sum <= nodecart.j_sum * 3 / 2,
            "viem {} vs nodecart {}",
            viem.j_sum,
            nodecart.j_sum
        );
    }

    #[test]
    fn heterogeneous_allocations_are_supported() {
        let p = MappingProblem::new(
            Dims::from_slice(&[6, 6]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::heterogeneous(vec![14, 12, 10]).unwrap(),
        )
        .unwrap();
        let m = GraphMapper::with_seed(5).compute(&p).unwrap();
        assert!(m.respects_allocation(p.alloc()));
        assert_eq!(m.node_loads(), vec![14, 12, 10]);
    }

    #[test]
    fn effort_zero_skips_local_search_but_stays_valid() {
        let p = problem(&[8, 8], 4, 16, Stencil::nearest_neighbor(2));
        let fast = GraphMapper::with_effort(2, 0).compute(&p).unwrap();
        let slow = GraphMapper::with_effort(2, 10).compute(&p).unwrap();
        assert!(fast.respects_allocation(p.alloc()));
        let g = stencil_grid::CartGraph::build(p.dims(), p.stencil(), false);
        assert!(evaluate(&g, &slow).j_sum <= evaluate(&g, &fast).j_sum);
    }

    #[test]
    fn sequential_mode_matches_parallel_mapping_exactly() {
        let p = problem(&[12, 10], 10, 12, Stencil::nearest_neighbor(2));
        let par = GraphMapper::with_seed(7).compute(&p).unwrap();
        let seq = GraphMapper::with_seed(7)
            .with_parallel(false)
            .compute(&p)
            .unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = problem(&[6, 6], 6, 6, Stencil::nearest_neighbor_with_hops(2));
        let a = GraphMapper::with_seed(11).compute(&p).unwrap();
        let b = GraphMapper::with_seed(11).compute(&p).unwrap();
        assert_eq!(a, b);
    }
}
