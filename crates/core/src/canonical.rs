//! Canonical forms of mapping requests for caching.
//!
//! Many mapping requests are *equivalent up to a relabeling of the grid
//! dimensions*: permuting the dimension sizes and every stencil offset with
//! the same permutation is an isomorphism of the Cartesian communication
//! graph, so a mapping computed for one representative solves all of them —
//! the node assignment only has to be transported through the coordinate
//! relabeling.  Likewise, the *order* in which stencil offsets are listed
//! never changes the communication graph (it is a set of edges), although it
//! can steer tie-breaking inside the randomised algorithms.
//!
//! [`canonicalize`] picks a deterministic representative of each equivalence
//! class: the dimension permutation whose `(dims, sorted offsets)` pair is
//! lexicographically smallest, with the offsets sorted within the permuted
//! stencil.  A cache keyed by the canonical form (see the `stencil-serve`
//! crate) therefore serves every member of the class from one entry, and all
//! members receive *consistent* answers (identical cost, node tables equal up
//! to the relabeling).
//!
//! The search tries all `d!` permutations, which is perfectly cheap for the
//! dimensionalities stencil codes use (`d ≤ 4` in the paper); beyond
//! [`MAX_CANONICAL_NDIMS`] dimensions only the offset order is normalised and
//! the identity permutation is kept.

use crate::mapping::Mapping;
use crate::problem::{MapError, MappingProblem};
use stencil_grid::{Dims, Stencil};

/// Dimensionality up to which the permutation search is exhaustive. `8! =
/// 40320` candidate permutations is still far cheaper than any mapping
/// computation; above that the identity permutation is used.
pub const MAX_CANONICAL_NDIMS: usize = 8;

/// The canonical representative of a mapping-request equivalence class,
/// together with the relabeling that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Canonical {
    /// Canonicalised dimension sizes.
    pub dims: Dims,
    /// Canonicalised stencil (offsets permuted alongside the dimensions and
    /// sorted lexicographically).
    pub stencil: Stencil,
    /// The dimension relabeling: canonical dimension `i` is original
    /// dimension `perm[i]`.
    pub perm: Vec<usize>,
}

impl Canonical {
    /// Whether the canonical form kept the original dimension order (the
    /// stencil offset order may still have changed).
    pub fn is_identity_permutation(&self) -> bool {
        self.perm.iter().enumerate().all(|(i, &p)| i == p)
    }

    /// Transports a `position → value` table computed on the canonical grid
    /// back to the original grid: entry `x` of the result describes original
    /// grid position `x`.
    ///
    /// # Panics
    ///
    /// Panics if `original` is not a permutation of the canonical dims or
    /// `canonical_table` does not cover the grid.
    pub fn restore_positions<T: Copy>(&self, original: &Dims, canonical_table: &[T]) -> Vec<T> {
        assert_eq!(original.ndims(), self.dims.ndims(), "dimensionality");
        assert_eq!(canonical_table.len(), self.dims.volume(), "table length");
        assert_eq!(original.volume(), self.dims.volume(), "grid volume");
        let d = original.ndims();
        if self.is_identity_permutation() {
            return canonical_table.to_vec();
        }
        // Allocation-free sweep (this sits on the serve hit path for every
        // permuted request): walk the original grid row-major with an
        // odometer and keep the corresponding canonical index incrementally
        // updated.  `weight[j]` is the canonical row-major stride of the
        // canonical axis holding original dimension `j`, so bumping original
        // digit `j` moves the canonical index by `weight[j]` and a rollover
        // rewinds it by `(size_j - 1) * weight[j]`.
        let mut weight = vec![0usize; d];
        {
            let mut stride = 1usize;
            for i in (0..d).rev() {
                weight[self.perm[i]] = stride;
                stride *= self.dims.size(i);
            }
        }
        let sizes = original.as_slice();
        let mut out = Vec::with_capacity(canonical_table.len());
        let mut coord = vec![0usize; d];
        let mut canon_pos = 0usize;
        loop {
            out.push(canonical_table[canon_pos]);
            // odometer increment, last original dimension fastest
            let mut i = d;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                coord[i] += 1;
                canon_pos += weight[i];
                if coord[i] < sizes[i] {
                    break;
                }
                coord[i] = 0;
                canon_pos -= sizes[i] * weight[i];
            }
        }
    }

    /// The canonical grid position holding original grid position `x` —
    /// the single-entry counterpart of [`Canonical::restore_positions`]:
    /// `restore_positions(original, table)[x] ==
    /// table[canonical_index_of(original, x)]` for every `x`.  This is what
    /// point queries use to read individual entries of a canonically cached
    /// table in O(d) without materialising the restored table.
    ///
    /// # Panics
    ///
    /// Panics if `original` is not a permutation of the canonical dims or
    /// `x` is outside the grid.
    pub fn canonical_index_of(&self, original: &Dims, x: usize) -> usize {
        assert_eq!(original.ndims(), self.dims.ndims(), "dimensionality");
        assert_eq!(original.volume(), self.dims.volume(), "grid volume");
        assert!(x < original.volume(), "position outside the grid");
        if self.is_identity_permutation() {
            return x;
        }
        let d = original.ndims();
        let coord = original.coord_of(x);
        let mut canon_coord = vec![0usize; d];
        for i in 0..d {
            canon_coord[i] = coord[self.perm[i]];
        }
        self.dims.rank_of(&canon_coord)
    }

    /// Rebuilds a [`Mapping`] for the *original* problem from a
    /// `position → node` table computed on the canonical grid.
    pub fn restore_mapping(
        &self,
        original: &MappingProblem,
        canonical_node_of_position: &[usize],
    ) -> Result<Mapping, MapError> {
        let restored = self.restore_positions(original.dims(), canonical_node_of_position);
        Mapping::from_node_of_position(original, &restored)
    }
}

/// Computes the canonical representative of `(dims, stencil)`.
///
/// Deterministic: equivalent inputs (any consistent permutation of the
/// dimensions, any order of the stencil offsets) produce identical canonical
/// dims and stencils.  Among tied permutations the lexicographically smallest
/// one wins, so the result never depends on iteration order.
pub fn canonicalize(dims: &Dims, stencil: &Stencil) -> Canonical {
    let d = dims.ndims();
    debug_assert_eq!(stencil.ndims(), d, "stencil and dims must agree");
    // candidate = (permuted dims, sorted permuted offsets, the permutation)
    type Candidate = (Vec<usize>, Vec<Vec<i64>>, Vec<usize>);
    let mut best: Option<Candidate> = None;
    let mut consider = |perm: &[usize]| {
        let cand_dims: Vec<usize> = perm.iter().map(|&i| dims.size(i)).collect();
        let mut cand_offsets: Vec<Vec<i64>> = stencil
            .offsets()
            .iter()
            .map(|o| perm.iter().map(|&i| o[i]).collect())
            .collect();
        cand_offsets.sort_unstable();
        let better = match &best {
            None => true,
            Some((bd, bo, _)) => (&cand_dims, &cand_offsets) < (bd, bo),
        };
        if better {
            best = Some((cand_dims, cand_offsets, perm.to_vec()));
        }
    };
    if d <= MAX_CANONICAL_NDIMS {
        // Lexicographic permutation enumeration keeps ties deterministic:
        // the first (smallest) permutation achieving the minimum is kept.
        let mut perm: Vec<usize> = (0..d).collect();
        loop {
            consider(&perm);
            if !next_permutation(&mut perm) {
                break;
            }
        }
    } else {
        let identity: Vec<usize> = (0..d).collect();
        consider(&identity);
    }
    let (cand_dims, cand_offsets, perm) = best.expect("at least one permutation considered");
    Canonical {
        dims: Dims::new(cand_dims).expect("permuted dims stay valid"),
        stencil: Stencil::new(d, cand_offsets).expect("permuted stencil stays valid"),
        perm,
    }
}

/// Advances `perm` to the next lexicographic permutation; returns `false`
/// after the last one.
fn next_permutation(perm: &mut [usize]) -> bool {
    let n = perm.len();
    if n < 2 {
        return false;
    }
    let Some(i) = (0..n - 1).rev().find(|&i| perm[i] < perm[i + 1]) else {
        return false;
    };
    let j = (i + 1..n).rev().find(|&j| perm[j] > perm[i]).unwrap();
    perm.swap(i, j);
    perm[i + 1..].reverse();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperplane::Hyperplane;
    use crate::metrics::evaluate_streaming;
    use crate::problem::Mapper;
    use proptest::prelude::*;
    use stencil_grid::NodeAllocation;

    /// Applies `perm` (canonical dim `i` = original dim `perm[i]`) to a
    /// dims/stencil pair, producing an equivalent request.
    fn permute_request(dims: &Dims, stencil: &Stencil, perm: &[usize]) -> (Dims, Stencil) {
        let p_dims: Vec<usize> = perm.iter().map(|&i| dims.size(i)).collect();
        let p_offsets: Vec<Vec<i64>> = stencil
            .offsets()
            .iter()
            .map(|o| perm.iter().map(|&i| o[i]).collect())
            .collect();
        (
            Dims::new(p_dims).unwrap(),
            Stencil::new(dims.ndims(), p_offsets).unwrap(),
        )
    }

    #[test]
    fn next_permutation_enumerates_all() {
        let mut p = vec![0, 1, 2];
        let mut seen = vec![p.clone()];
        while next_permutation(&mut p) {
            seen.push(p.clone());
        }
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], vec![0, 1, 2]);
        assert_eq!(seen[5], vec![2, 1, 0]);
        let mut single = vec![0];
        assert!(!next_permutation(&mut single));
    }

    #[test]
    fn canonical_form_sorts_dims_for_symmetric_stencils() {
        // Nearest neighbor is symmetric under any dimension relabeling, so
        // the canonical dims are simply the sorted sizes.
        let c = canonicalize(&Dims::from_slice(&[48, 50]), &Stencil::nearest_neighbor(2));
        assert_eq!(c.dims.as_slice(), &[48, 50]);
        let c2 = canonicalize(&Dims::from_slice(&[50, 48]), &Stencil::nearest_neighbor(2));
        assert_eq!(c2.dims.as_slice(), &[48, 50]);
        assert_eq!(c.stencil, c2.stencil);
    }

    #[test]
    fn offset_order_does_not_change_canonical_form() {
        let dims = Dims::from_slice(&[6, 5]);
        let a = Stencil::new(2, vec![vec![1, 0], vec![0, 1], vec![-1, 0], vec![0, -1]]).unwrap();
        let b = Stencil::new(2, vec![vec![0, -1], vec![-1, 0], vec![0, 1], vec![1, 0]]).unwrap();
        let ca = canonicalize(&dims, &a);
        let cb = canonicalize(&dims, &b);
        assert_eq!(ca.dims, cb.dims);
        assert_eq!(ca.stencil, cb.stencil);
        assert_eq!(ca.perm, cb.perm);
    }

    #[test]
    fn asymmetric_stencil_breaks_dims_ties() {
        // The hops stencil communicates more along dimension 0; permuting
        // the square grid must still produce one canonical stencil.
        let dims = Dims::from_slice(&[6, 6]);
        let s = Stencil::nearest_neighbor_with_hops(2);
        let (p_dims, p_stencil) = permute_request(&dims, &s, &[1, 0]);
        let ca = canonicalize(&dims, &s);
        let cb = canonicalize(&p_dims, &p_stencil);
        assert_eq!(ca.dims, cb.dims);
        assert_eq!(ca.stencil, cb.stencil);
    }

    #[test]
    fn restore_positions_is_identity_for_identity_perm() {
        let dims = Dims::from_slice(&[2, 3]);
        let c = Canonical {
            dims: dims.clone(),
            stencil: Stencil::nearest_neighbor(2),
            perm: vec![0, 1],
        };
        assert!(c.is_identity_permutation());
        let table: Vec<u32> = (0..6).collect();
        assert_eq!(c.restore_positions(&dims, &table), table);
    }

    #[test]
    fn restore_positions_transposes() {
        // canonical [2,3] grid, original [3,2]: perm = [1,0].
        let c = Canonical {
            dims: Dims::from_slice(&[2, 3]),
            stencil: Stencil::nearest_neighbor(2),
            perm: vec![1, 0],
        };
        let original = Dims::from_slice(&[3, 2]);
        // canonical table indexed row-major on [2,3]
        let table = vec![0u32, 1, 2, 3, 4, 5];
        let restored = c.restore_positions(&original, &table);
        // original position (r, c) on [3,2] maps to canonical (c, r) on [2,3]
        for (x, &value) in restored.iter().enumerate() {
            let coord = original.coord_of(x);
            let canon_pos = coord[1] * 3 + coord[0];
            assert_eq!(value, table[canon_pos]);
        }
    }

    #[test]
    fn canonical_index_of_agrees_with_restore_positions() {
        for (dims, stencil) in [
            (Dims::from_slice(&[3, 4]), Stencil::nearest_neighbor(2)),
            (
                Dims::from_slice(&[4, 2, 3]),
                Stencil::nearest_neighbor_with_hops(3),
            ),
            (Dims::from_slice(&[5, 3]), Stencil::component(2)),
        ] {
            for perm_dims in [false, true] {
                let (o_dims, o_stencil) = if perm_dims {
                    let perm: Vec<usize> = (0..dims.ndims()).rev().collect();
                    permute_request(&dims, &stencil, &perm)
                } else {
                    (dims.clone(), stencil.clone())
                };
                let c = canonicalize(&o_dims, &o_stencil);
                let table: Vec<u32> = (0..c.dims.volume() as u32).collect();
                let restored = c.restore_positions(&o_dims, &table);
                for x in 0..o_dims.volume() {
                    assert_eq!(restored[x], table[c.canonical_index_of(&o_dims, x)]);
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every permutation of a request canonicalises to the same
        /// representative — the property the serve cache relies on.
        #[test]
        fn prop_permuted_requests_share_canonical_form(
            sizes in proptest::collection::vec(1usize..7, 2..4),
            stencil_choice in 0u8..3,
            perm_seed in 0usize..24,
        ) {
            let dims = Dims::new(sizes).unwrap();
            let d = dims.ndims();
            let stencil = match stencil_choice % 3 {
                0 => Stencil::nearest_neighbor(d),
                1 => Stencil::nearest_neighbor_with_hops(d),
                _ => Stencil::component(d),
            };
            // pick the perm_seed-th permutation of 0..d
            let mut perm: Vec<usize> = (0..d).collect();
            for _ in 0..perm_seed {
                if !next_permutation(&mut perm) {
                    perm = (0..d).collect();
                }
            }
            let (p_dims, p_stencil) = permute_request(&dims, &stencil, &perm);
            let ca = canonicalize(&dims, &stencil);
            let cb = canonicalize(&p_dims, &p_stencil);
            prop_assert_eq!(&ca.dims, &cb.dims);
            prop_assert_eq!(&ca.stencil, &cb.stencil);
        }

        /// A mapping computed on the canonical problem transports back to a
        /// valid mapping of the original problem with identical cost.
        #[test]
        fn prop_restored_mapping_is_valid_and_cost_preserving(
            sizes in proptest::collection::vec(2usize..7, 2..4),
            nodes in 2usize..5,
            periodic in proptest::bool::ANY,
        ) {
            let p: usize = sizes.iter().product();
            if p.is_multiple_of(nodes) {
                let dims = Dims::new(sizes).unwrap();
                let stencil = Stencil::nearest_neighbor_with_hops(dims.ndims());
                let alloc = NodeAllocation::homogeneous(nodes, p / nodes);
                let original = MappingProblem::with_periodicity(
                    dims.clone(), stencil.clone(), alloc.clone(), periodic).unwrap();
                let canon = canonicalize(&dims, &stencil);
                let canon_problem = MappingProblem::with_periodicity(
                    canon.dims.clone(), canon.stencil.clone(), alloc, periodic).unwrap();
                let canon_mapping = Hyperplane::default().compute(&canon_problem).unwrap();
                let restored = canon
                    .restore_mapping(&original, canon_mapping.node_of_position_slice())
                    .unwrap();
                prop_assert!(restored.respects_allocation(original.alloc()));
                let canon_cost = evaluate_streaming(
                    &canon.dims, &canon.stencil, periodic, &canon_mapping);
                let restored_cost = evaluate_streaming(
                    original.dims(), original.stencil(), periodic, &restored);
                prop_assert_eq!(canon_cost.j_sum, restored_cost.j_sum);
                prop_assert_eq!(canon_cost.j_max, restored_cost.j_max);
            }
        }
    }
}
