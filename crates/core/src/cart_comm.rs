//! `MPIX_Cart_stencil_comm`-style front-end (Listing 1 of the paper).
//!
//! The paper proposes an interface that extends `MPI_Cart_create` with an
//! explicit stencil so that the library can reorder ranks for arbitrary
//! `k`-neighborhoods.  [`CartStencilComm`] is the library-level equivalent:
//! it takes the grid, the stencil, the node allocation and a reordering
//! algorithm and exposes the resulting rank permutation together with
//! topology queries (new/old ranks, coordinates, stencil neighbors).
//!
//! The actual message-passing communicator built on top of this lives in the
//! `mpc-sim` crate; this module is the pure, reusable computation.

use crate::baselines::Blocked;
use crate::hyperplane::Hyperplane;
use crate::kdtree::KdTree;
use crate::metrics::{evaluate, MappingCost};
use crate::nodecart::Nodecart;
use crate::problem::{MapError, Mapper, MappingProblem};
use crate::stencil_strips::StencilStrips;
use crate::viem::GraphMapper;
use crate::Mapping;
use stencil_grid::{CartGraph, Coord, Dims, NodeAllocation, Stencil};

/// Selection of the rank-reordering algorithm used when creating a
/// [`CartStencilComm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReorderAlgorithm {
    /// No reordering (blocked mapping) — `reorder = 0` in MPI terms.
    None,
    /// The Hyperplane algorithm (Section V-A).
    Hyperplane,
    /// The k-d Tree algorithm (Section V-B).
    KdTree,
    /// The Stencil Strips algorithm (Section V-C).
    StencilStrips,
    /// Gropp's Nodecart algorithm.
    Nodecart,
    /// The VieM-style general graph mapper.
    GraphMapper,
}

impl ReorderAlgorithm {
    /// Instantiates the corresponding mapper.
    pub fn mapper(&self, seed: u64) -> Box<dyn Mapper> {
        match self {
            ReorderAlgorithm::None => Box::new(Blocked),
            ReorderAlgorithm::Hyperplane => Box::new(Hyperplane::default()),
            ReorderAlgorithm::KdTree => Box::new(KdTree),
            ReorderAlgorithm::StencilStrips => Box::new(StencilStrips),
            ReorderAlgorithm::Nodecart => Box::new(Nodecart),
            ReorderAlgorithm::GraphMapper => Box::new(GraphMapper::with_seed(seed)),
        }
    }

    /// All algorithm variants, in the order used by the paper's figures.
    pub fn all() -> [ReorderAlgorithm; 6] {
        [
            ReorderAlgorithm::Hyperplane,
            ReorderAlgorithm::KdTree,
            ReorderAlgorithm::StencilStrips,
            ReorderAlgorithm::Nodecart,
            ReorderAlgorithm::GraphMapper,
            ReorderAlgorithm::None,
        ]
    }
}

/// A stencil-aware Cartesian "communicator": the reordered rank layout for a
/// grid, stencil and node allocation.
#[derive(Debug, Clone)]
pub struct CartStencilComm {
    problem: MappingProblem,
    mapping: Mapping,
    algorithm: String,
}

impl CartStencilComm {
    /// Creates the communicator, mirroring the arguments of
    /// `MPIX_Cart_stencil_comm(oldcomm, ndims, dims, periods, reorder,
    /// stencil, k, &cartcomm)`.
    ///
    /// * `dims` / `periodic` — the Cartesian grid and its boundary condition,
    /// * `stencil` — the `k`-neighborhood,
    /// * `alloc` — the node allocation of the "old communicator",
    /// * `reorder` — the reordering algorithm (use
    ///   [`ReorderAlgorithm::None`] for the MPI `reorder = 0` behaviour),
    /// * `seed` — seed for randomised algorithms.
    pub fn create(
        dims: Dims,
        periodic: bool,
        stencil: Stencil,
        alloc: NodeAllocation,
        reorder: ReorderAlgorithm,
        seed: u64,
    ) -> Result<Self, MapError> {
        let problem = MappingProblem::with_periodicity(dims, stencil, alloc, periodic)?;
        let mapper = reorder.mapper(seed);
        let mapping = mapper.compute(&problem)?;
        Ok(CartStencilComm {
            problem,
            mapping,
            algorithm: mapper.name().to_string(),
        })
    }

    /// Creates the communicator from a flattened stencil array of length
    /// `k * ndims`, exactly like the C interface of Listing 1.
    #[allow(clippy::too_many_arguments)]
    pub fn create_from_flat(
        ndims: usize,
        dims: &[usize],
        periodic: bool,
        reorder: ReorderAlgorithm,
        stencil_flat: &[i64],
        alloc: NodeAllocation,
        seed: u64,
    ) -> Result<Self, MapError> {
        let dims = Dims::new(dims.to_vec())?;
        let stencil = Stencil::from_flat(ndims, stencil_flat)?;
        Self::create(dims, periodic, stencil, alloc, reorder, seed)
    }

    /// The underlying mapping problem.
    pub fn problem(&self) -> &MappingProblem {
        &self.problem
    }

    /// The computed mapping (rank ↔ position permutation).
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Name of the algorithm that produced the reordering.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Number of processes in the communicator.
    pub fn size(&self) -> usize {
        self.problem.num_processes()
    }

    /// The new rank of a process identified by its old rank.
    pub fn new_rank_of(&self, old_rank: usize) -> usize {
        self.mapping.new_rank_of(old_rank)
    }

    /// The old rank of the process holding `new_rank` after reordering.
    pub fn old_rank_of(&self, new_rank: usize) -> usize {
        self.mapping.old_rank_of(new_rank)
    }

    /// The Cartesian coordinate associated with a new rank
    /// (`MPI_Cart_coords`).
    pub fn coords_of_new_rank(&self, new_rank: usize) -> Coord {
        self.problem.dims().coord_of(new_rank)
    }

    /// The new rank at the given Cartesian coordinate (`MPI_Cart_rank`).
    pub fn new_rank_at(&self, coord: &[usize]) -> usize {
        self.problem.dims().rank_of(coord)
    }

    /// The stencil neighbors of a new rank, as new ranks; out-of-grid
    /// neighbors are omitted (or wrapped if the grid is periodic).  This is
    /// the neighbor list a distributed-graph communicator would be created
    /// with.
    pub fn neighbors_of_new_rank(&self, new_rank: usize) -> Vec<usize> {
        let dims = self.problem.dims();
        let coord = dims.coord_of(new_rank);
        self.problem
            .stencil()
            .offsets()
            .iter()
            .filter_map(|off| {
                dims.offset_coord(&coord, off, self.problem.periodic())
                    .map(|c| dims.rank_of(&c))
            })
            .filter(|&t| t != new_rank)
            .collect()
    }

    /// The compute node hosting a given new rank.
    pub fn node_of_new_rank(&self, new_rank: usize) -> usize {
        self.mapping.node_of_position(new_rank)
    }

    /// Evaluates the communication cost (`Jsum` / `Jmax`) of this
    /// communicator's mapping.
    pub fn cost(&self) -> MappingCost {
        let graph = CartGraph::build(
            self.problem.dims(),
            self.problem.stencil(),
            self.problem.periodic(),
        );
        evaluate(&graph, &self.mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm(reorder: ReorderAlgorithm) -> CartStencilComm {
        CartStencilComm::create(
            Dims::from_slice(&[8, 6]),
            false,
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(4, 12),
            reorder,
            7,
        )
        .unwrap()
    }

    #[test]
    fn none_reorder_is_identity() {
        let c = comm(ReorderAlgorithm::None);
        assert_eq!(c.algorithm(), "Blocked");
        assert_eq!(c.size(), 48);
        for r in 0..48 {
            assert_eq!(c.new_rank_of(r), r);
            assert_eq!(c.old_rank_of(r), r);
        }
    }

    #[test]
    fn reordering_improves_cost() {
        let blocked = comm(ReorderAlgorithm::None).cost();
        for alg in [
            ReorderAlgorithm::Hyperplane,
            ReorderAlgorithm::KdTree,
            ReorderAlgorithm::StencilStrips,
        ] {
            let c = comm(alg);
            assert!(c.cost().j_sum <= blocked.j_sum, "{alg:?}");
            // permutation is consistent
            for r in 0..c.size() {
                assert_eq!(c.old_rank_of(c.new_rank_of(r)), r);
            }
        }
    }

    #[test]
    fn coordinates_and_neighbors_follow_the_grid() {
        let c = comm(ReorderAlgorithm::Hyperplane);
        let coord = c.coords_of_new_rank(13);
        assert_eq!(c.new_rank_at(&coord), 13);
        let neigh = c.neighbors_of_new_rank(13);
        assert!(!neigh.is_empty() && neigh.len() <= 4);
        for t in neigh {
            let tc = c.coords_of_new_rank(t);
            let dist: i64 = coord
                .iter()
                .zip(&tc)
                .map(|(&a, &b)| (a as i64 - b as i64).abs())
                .sum();
            assert_eq!(dist, 1);
        }
    }

    #[test]
    fn periodic_neighbors_wrap() {
        let c = CartStencilComm::create(
            Dims::from_slice(&[4, 4]),
            true,
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(4, 4),
            ReorderAlgorithm::KdTree,
            0,
        )
        .unwrap();
        // every rank has exactly 4 neighbors on a periodic grid
        for r in 0..16 {
            assert_eq!(c.neighbors_of_new_rank(r).len(), 4);
        }
    }

    #[test]
    fn flat_interface_matches_listing_one() {
        // nearest neighbor stencil expressed as a flat array (k = 4, ndims = 2)
        let flat = [1i64, 0, -1, 0, 0, 1, 0, -1];
        let c = CartStencilComm::create_from_flat(
            2,
            &[8, 6],
            false,
            ReorderAlgorithm::StencilStrips,
            &flat,
            NodeAllocation::homogeneous(4, 12),
            0,
        )
        .unwrap();
        assert_eq!(c.problem().stencil().k(), 4);
        assert_eq!(c.algorithm(), "Stencil Strips");
    }

    #[test]
    fn node_of_new_rank_is_consistent_with_mapping() {
        let c = comm(ReorderAlgorithm::StencilStrips);
        for new_rank in 0..c.size() {
            let old = c.old_rank_of(new_rank);
            assert_eq!(
                c.node_of_new_rank(new_rank),
                c.problem().alloc().node_of_rank(old)
            );
        }
    }

    #[test]
    fn all_algorithms_list() {
        assert_eq!(ReorderAlgorithm::all().len(), 6);
        assert_eq!(ReorderAlgorithm::KdTree.mapper(0).name(), "k-d Tree");
    }
}
