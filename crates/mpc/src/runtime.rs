//! The thread-based message-passing runtime: ranks, channels, point-to-point
//! messaging and the world barrier.

use crossbeam_channel::{unbounded, Receiver, Sender};
use std::sync::Arc;

/// A message in flight: source rank, user tag and payload.
#[derive(Debug, Clone)]
struct Message {
    src: usize,
    tag: u64,
    data: Vec<u8>,
}

/// The runtime: spawns one thread per rank and wires up the channels.
pub struct Runtime;

impl Runtime {
    /// Runs `num_ranks` ranks, each executing `body` with its own
    /// [`Process`] handle, and returns the per-rank results in rank order.
    ///
    /// # Panics
    ///
    /// Panics if any rank panics (the panic is propagated) or if
    /// `num_ranks == 0`.
    pub fn run<T, F>(num_ranks: usize, body: F) -> Vec<T>
    where
        F: Fn(Process) -> T + Send + Sync,
        T: Send,
    {
        assert!(num_ranks > 0, "at least one rank is required");
        let mut senders = Vec::with_capacity(num_ranks);
        let mut receivers = Vec::with_capacity(num_ranks);
        for _ in 0..num_ranks {
            let (tx, rx) = unbounded::<Message>();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let senders = Arc::new(senders);
        let barrier = Arc::new(std::sync::Barrier::new(num_ranks));

        let mut results: Vec<Option<T>> = (0..num_ranks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(num_ranks);
            for (rank, rx) in receivers.iter_mut().enumerate() {
                let rx = rx.take().expect("receiver taken once");
                let senders = Arc::clone(&senders);
                let barrier = Arc::clone(&barrier);
                let body = &body;
                handles.push(scope.spawn(move || {
                    let process = Process {
                        rank,
                        size: num_ranks,
                        senders,
                        receiver: rx,
                        pending: Vec::new(),
                        barrier,
                    };
                    body(process)
                }));
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(v) => results[rank] = Some(v),
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("rank produced a result"))
            .collect()
    }
}

/// The per-rank handle: identity, point-to-point messaging and the world
/// barrier.  Collective operations are provided in
/// [`collectives`](crate::collectives).
pub struct Process {
    rank: usize,
    size: usize,
    senders: Arc<Vec<Sender<Message>>>,
    receiver: Receiver<Message>,
    /// Messages received but not yet matched by a `recv` call.
    pending: Vec<Message>,
    barrier: Arc<std::sync::Barrier>,
}

impl Process {
    /// This process' rank in the world communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sends `data` to `dest` with the given `tag` (non-blocking, buffered).
    pub fn send(&self, dest: usize, tag: u64, data: &[u8]) {
        assert!(dest < self.size, "destination rank {dest} out of range");
        self.senders[dest]
            .send(Message {
                src: self.rank,
                tag,
                data: data.to_vec(),
            })
            .expect("receiver alive for the lifetime of the runtime");
    }

    /// Receives a message from `src` with the given `tag`, blocking until it
    /// arrives.  Messages from other sources/tags received in the meantime
    /// are buffered and matched by later calls (MPI-style tag matching).
    ///
    /// The pending buffer is drained with order-preserving removal: two
    /// in-flight messages with the same `(src, tag)` (e.g. consecutive
    /// un-barriered iterations of an exchange) must be matched in send order,
    /// so a `swap_remove` would silently deliver them out of order.
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<u8> {
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            return self.pending.remove(pos).data;
        }
        loop {
            let msg = self
                .receiver
                .recv()
                .expect("senders alive for the lifetime of the runtime");
            if msg.src == src && msg.tag == tag {
                return msg.data;
            }
            self.pending.push(msg);
        }
    }

    /// Receives from any source with the given tag; returns `(src, data)`.
    pub fn recv_any(&mut self, tag: u64) -> (usize, Vec<u8>) {
        if let Some(pos) = self.pending.iter().position(|m| m.tag == tag) {
            let m = self.pending.remove(pos);
            return (m.src, m.data);
        }
        loop {
            let msg = self.receiver.recv().expect("senders alive");
            if msg.tag == tag {
                return (msg.src, msg.data);
            }
            self.pending.push(msg);
        }
    }

    /// Synchronises all ranks (world barrier, `MPI_Barrier`).
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_and_size_are_reported() {
        let out = Runtime::run(5, |p| (p.rank(), p.size()));
        assert_eq!(out, vec![(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]);
    }

    #[test]
    fn single_rank_runtime_works() {
        let out = Runtime::run(1, |p| p.rank() + 100);
        assert_eq!(out, vec![100]);
    }

    #[test]
    #[should_panic]
    fn zero_ranks_rejected() {
        Runtime::run(0, |_| ());
    }

    #[test]
    fn ring_send_recv() {
        let out = Runtime::run(6, |mut p| {
            let next = (p.rank() + 1) % p.size();
            let prev = (p.rank() + p.size() - 1) % p.size();
            p.send(next, 7, &[p.rank() as u8]);
            let data = p.recv(prev, 7);
            data[0] as usize
        });
        assert_eq!(out, vec![5, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn tag_matching_buffers_out_of_order_messages() {
        let out = Runtime::run(2, |mut p| {
            if p.rank() == 0 {
                // send two messages with different tags; receiver asks for
                // the second tag first
                p.send(1, 1, b"first");
                p.send(1, 2, b"second");
                0
            } else {
                let second = p.recv(0, 2);
                let first = p.recv(0, 1);
                assert_eq!(second, b"second");
                assert_eq!(first, b"first");
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn same_tag_messages_keep_send_order_after_pending_reorder() {
        // Regression test: three messages are buffered out of band (tags B,
        // A, A); consuming B from the middle of the pending buffer must not
        // reorder the two remaining tag-A messages (a swap_remove would).
        let out = Runtime::run(2, |mut p| {
            const A: u64 = 1;
            const B: u64 = 2;
            const C: u64 = 3;
            if p.rank() == 0 {
                p.send(1, B, b"b");
                p.send(1, A, b"first");
                p.send(1, A, b"second");
                p.send(1, C, b"c");
                Vec::new()
            } else {
                // forces all four messages into the pending buffer in
                // arrival order [B, A1, A2] before any tag-A match
                let c = p.recv(0, C);
                assert_eq!(c, b"c");
                let b = p.recv(0, B);
                assert_eq!(b, b"b");
                let a1 = p.recv(0, A);
                let a2 = p.recv(0, A);
                vec![a1, a2]
            }
        });
        assert_eq!(out[1], vec![b"first".to_vec(), b"second".to_vec()]);
    }

    #[test]
    fn recv_any_returns_source() {
        let out = Runtime::run(3, |mut p| {
            if p.rank() == 0 {
                let (s1, d1) = p.recv_any(9);
                let (s2, d2) = p.recv_any(9);
                assert_eq!(d1, vec![s1 as u8]);
                assert_eq!(d2, vec![s2 as u8]);
                let mut srcs = vec![s1, s2];
                srcs.sort_unstable();
                assert_eq!(srcs, vec![1, 2]);
                0
            } else {
                p.send(0, 9, &[p.rank() as u8]);
                p.rank()
            }
        });
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        Runtime::run(8, |p| {
            counter.fetch_add(1, Ordering::SeqCst);
            p.barrier();
            // after the barrier every rank must observe all increments
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn larger_world_with_many_messages() {
        let out = Runtime::run(16, |mut p| {
            // everyone sends its rank to rank 0
            if p.rank() == 0 {
                let mut sum = 0usize;
                for _ in 1..p.size() {
                    let (_, data) = p.recv_any(3);
                    sum += data[0] as usize;
                }
                sum
            } else {
                p.send(0, 3, &[p.rank() as u8]);
                0
            }
        });
        assert_eq!(out[0], (1..16).sum::<usize>());
    }
}
