//! Collective operations over the world communicator: allgather, alltoall
//! and neighborhood collectives over explicit neighbor lists.
//!
//! The implementations favour clarity over asymptotic optimality (the
//! runtime is a functional stand-in, not a performance model), but they use
//! the same communication pattern an MPI library would: point-to-point
//! messages matched by tags, with a barrier only where MPI would require one.

use crate::runtime::Process;

/// Tag space reserved for the collectives (user tags should stay below this).
const COLLECTIVE_TAG_BASE: u64 = 1 << 60;

impl Process {
    /// Gathers `data` from every rank on every rank (`MPI_Allgather` with
    /// per-rank variable length, i.e. `MPI_Allgatherv`).  The result is
    /// indexed by rank.
    pub fn allgather(&mut self, data: &[u8]) -> Vec<Vec<u8>> {
        let tag = COLLECTIVE_TAG_BASE + 1;
        for dest in 0..self.size() {
            if dest != self.rank() {
                self.send(dest, tag, data);
            }
        }
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); self.size()];
        out[self.rank()] = data.to_vec();
        for _ in 0..self.size() - 1 {
            let (src, payload) = self.recv_any(tag);
            out[src] = payload;
        }
        out
    }

    /// Gathers one `usize` from every rank (convenience wrapper around
    /// [`Process::allgather`] used by the reordering code to exchange new
    /// ranks).
    pub fn allgather_usize(&mut self, value: usize) -> Vec<usize> {
        self.allgather(&value.to_le_bytes())
            .into_iter()
            .map(|b| usize::from_le_bytes(b.as_slice().try_into().expect("8-byte payload")))
            .collect()
    }

    /// Personalised all-to-all exchange (`MPI_Alltoallv`): `chunks[i]` is sent
    /// to rank `i`; the result holds the chunk received from every rank.
    pub fn alltoall(&mut self, chunks: &[Vec<u8>]) -> Vec<Vec<u8>> {
        assert_eq!(chunks.len(), self.size(), "one chunk per rank required");
        let tag = COLLECTIVE_TAG_BASE + 2;
        for (dest, chunk) in chunks.iter().enumerate() {
            if dest != self.rank() {
                self.send(dest, tag, chunk);
            }
        }
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); self.size()];
        out[self.rank()] = chunks[self.rank()].clone();
        for _ in 0..self.size() - 1 {
            let (src, payload) = self.recv_any(tag);
            out[src] = payload;
        }
        out
    }

    /// Neighborhood all-to-all (`MPI_Neighbor_alltoall` on a distributed
    /// graph topology): `send[i]` is sent to `destinations[i]`; the result
    /// holds, for every entry of `sources`, the chunk received from that
    /// source (in order).  Duplicate sources receive matching duplicate
    /// messages, as MPI allows for general graph topologies.
    pub fn neighbor_alltoall(
        &mut self,
        destinations: &[usize],
        sources: &[usize],
        send: &[Vec<u8>],
    ) -> Vec<Vec<u8>> {
        assert_eq!(
            destinations.len(),
            send.len(),
            "one send chunk per destination required"
        );
        let tag = COLLECTIVE_TAG_BASE + 3;
        // Use a per-destination sequence number so that multiple edges to the
        // same neighbor are matched in order.
        let mut dest_seq: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for (i, &dest) in destinations.iter().enumerate() {
            let seq = dest_seq.entry(dest).or_insert(0);
            self.send(dest, tag + *seq, &send[i]);
            *seq += 1;
        }
        let mut src_seq: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(sources.len());
        for &src in sources {
            let seq = src_seq.entry(src).or_insert(0);
            out.push(self.recv(src, tag + *seq));
            *seq += 1;
        }
        out
    }

    /// Global reduction of a `u64` by summation (`MPI_Allreduce(MPI_SUM)`).
    pub fn allreduce_sum(&mut self, value: u64) -> u64 {
        self.allgather(&value.to_le_bytes())
            .into_iter()
            .map(|b| u64::from_le_bytes(b.as_slice().try_into().expect("8-byte payload")))
            .sum()
    }

    /// Global reduction of an `f64` by maximum (`MPI_Allreduce(MPI_MAX)`),
    /// used to report the slowest process of a timed exchange.
    pub fn allreduce_max_f64(&mut self, value: f64) -> f64 {
        self.allgather(&value.to_le_bytes())
            .into_iter()
            .map(|b| f64::from_le_bytes(b.as_slice().try_into().expect("8-byte payload")))
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::Runtime;

    #[test]
    fn allgather_collects_everyones_data() {
        let out = Runtime::run(5, |mut p| {
            let mine = vec![p.rank() as u8; p.rank() + 1];
            p.allgather(&mine)
        });
        for result in out {
            assert_eq!(result.len(), 5);
            for (rank, chunk) in result.iter().enumerate() {
                assert_eq!(chunk, &vec![rank as u8; rank + 1]);
            }
        }
    }

    #[test]
    fn allgather_usize_roundtrips() {
        let out = Runtime::run(4, |mut p| p.allgather_usize(p.rank() * 10));
        for result in out {
            assert_eq!(result, vec![0, 10, 20, 30]);
        }
    }

    #[test]
    fn alltoall_transposes_the_data_matrix() {
        let out = Runtime::run(4, |mut p| {
            // rank r sends [r, dest] to each dest
            let chunks: Vec<Vec<u8>> = (0..p.size())
                .map(|dest| vec![p.rank() as u8, dest as u8])
                .collect();
            p.alltoall(&chunks)
        });
        for (rank, received) in out.iter().enumerate() {
            for (src, chunk) in received.iter().enumerate() {
                assert_eq!(chunk, &vec![src as u8, rank as u8]);
            }
        }
    }

    #[test]
    fn neighbor_alltoall_on_a_ring() {
        let out = Runtime::run(6, |mut p| {
            let next = (p.rank() + 1) % p.size();
            let prev = (p.rank() + p.size() - 1) % p.size();

            p.neighbor_alltoall(
                &[next, prev],
                &[next, prev],
                &[vec![p.rank() as u8, 1], vec![p.rank() as u8, 2]],
            )
        });
        for (rank, received) in out.iter().enumerate() {
            let next = (rank + 1) % 6;
            let prev = (rank + 6 - 1) % 6;
            // from next we receive its "towards prev" message (marker 2)
            assert_eq!(received[0], vec![next as u8, 2]);
            // from prev we receive its "towards next" message (marker 1)
            assert_eq!(received[1], vec![prev as u8, 1]);
        }
    }

    #[test]
    fn neighbor_alltoall_with_duplicate_neighbors() {
        // two ranks exchanging two messages each (double edge)
        let out = Runtime::run(2, |mut p| {
            let other = 1 - p.rank();
            p.neighbor_alltoall(
                &[other, other],
                &[other, other],
                &[vec![p.rank() as u8, 0], vec![p.rank() as u8, 1]],
            )
        });
        assert_eq!(out[0], vec![vec![1, 0], vec![1, 1]]);
        assert_eq!(out[1], vec![vec![0, 0], vec![0, 1]]);
    }

    #[test]
    fn reductions() {
        let sums = Runtime::run(5, |mut p| p.allreduce_sum(p.rank() as u64));
        assert!(sums.iter().all(|&s| s == 10));
        let maxes = Runtime::run(5, |mut p| p.allreduce_max_f64(p.rank() as f64 * 1.5));
        assert!(maxes.iter().all(|&m| (m - 6.0).abs() < 1e-12));
    }
}
