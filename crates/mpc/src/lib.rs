//! # mpc-sim
//!
//! A small thread-based message-passing runtime ("mini message-passing
//! core") standing in for MPI.  The paper's algorithms are *distributed*:
//! every process computes its new rank locally and the library then creates a
//! reordered Cartesian / distributed-graph communicator.  This crate provides
//! exactly that machinery so the reordering can be exercised end to end:
//!
//! * [`Runtime`] — runs `p` ranks as threads with point-to-point channels,
//! * [`Process`] — per-rank handle with `send`/`recv`, `barrier`,
//!   `allgather`, `alltoall`,
//! * [`CartComm`] — a Cartesian communicator (`dims_create`, coordinates,
//!   shifts),
//! * [`StencilComm`] — the `MPIX_Cart_stencil_comm` equivalent: every rank
//!   computes its new coordinate with a rank-local mapping algorithm and the
//!   communicator exposes neighborhood collectives
//!   (`neighbor_alltoall`) over the reordered topology.
//!
//! The runtime is *functional*, not a performance simulator — timing of
//! exchanges on the paper's machines is modelled by the `cluster-sim` crate.
//!
//! ```
//! use mpc_sim::Runtime;
//!
//! let sums = Runtime::run(4, |mut p| {
//!     // every rank contributes its rank; allgather makes the sum global
//!     let all = p.allgather(&p.rank().to_le_bytes());
//!     all.iter()
//!         .map(|b| usize::from_le_bytes(b.as_slice().try_into().unwrap()))
//!         .sum::<usize>()
//! });
//! assert_eq!(sums, vec![6, 6, 6, 6]);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cart;
pub mod collectives;
pub mod runtime;
pub mod stencil_comm;

pub use cart::CartComm;
pub use runtime::{Process, Runtime};
pub use stencil_comm::StencilComm;
