//! The `MPIX_Cart_stencil_comm` analogue: a stencil-aware, *reordered*
//! Cartesian communicator built on the message-passing runtime.
//!
//! Creation follows the paper's distributed scheme: for the three new
//! algorithms every rank computes its own new coordinate locally (rank-local
//! mapping); for the sequential baselines (Nodecart, the VieM-style mapper,
//! no reordering) rank 0 computes the permutation and scatters it.  An
//! allgather then makes the inverse permutation known to everybody so that
//! neighborhood collectives can route messages to the *old* ranks (threads)
//! that own the neighboring grid positions.

use crate::runtime::Process;
use stencil_grid::{Coord, Dims, NodeAllocation, Stencil};
use stencil_mapping::cart_comm::ReorderAlgorithm;
use stencil_mapping::hyperplane::Hyperplane;
use stencil_mapping::kdtree::KdTree;
use stencil_mapping::stencil_strips::StencilStrips;
use stencil_mapping::{MappingProblem, RankLocalMapper};

/// A reordered, stencil-aware Cartesian communicator.
#[derive(Debug, Clone)]
pub struct StencilComm {
    dims: Dims,
    periodic: bool,
    stencil: Stencil,
    old_rank: usize,
    new_rank: usize,
    /// For every grid position (new rank), the old rank (thread) owning it.
    old_of_position: Vec<usize>,
    /// Destination grid positions, one per applicable stencil offset.
    destinations: Vec<usize>,
    /// Source grid positions, matched to the destinations (see
    /// [`Process::neighbor_alltoall`]).
    sources: Vec<usize>,
}

impl StencilComm {
    /// Creates the reordered communicator.  Mirrors
    /// `MPIX_Cart_stencil_comm(oldcomm, ndims, dims, periods, reorder, stencil, k, &cartcomm)`.
    pub fn create(
        process: &mut Process,
        dims: Dims,
        periodic: bool,
        stencil: Stencil,
        alloc: NodeAllocation,
        reorder: ReorderAlgorithm,
        seed: u64,
    ) -> Self {
        assert_eq!(
            dims.volume(),
            process.size(),
            "grid volume must equal the communicator size"
        );
        let problem =
            MappingProblem::with_periodicity(dims.clone(), stencil.clone(), alloc, periodic)
                .expect("consistent communicator arguments");

        // --- compute this rank's new position -------------------------------
        let my_position = match reorder {
            ReorderAlgorithm::Hyperplane => {
                let c = Hyperplane::default().remap_rank(&problem, process.rank());
                dims.rank_of(&c)
            }
            ReorderAlgorithm::KdTree => {
                let c = KdTree.remap_rank(&problem, process.rank());
                dims.rank_of(&c)
            }
            ReorderAlgorithm::StencilStrips => {
                let c = StencilStrips.remap_rank(&problem, process.rank());
                dims.rank_of(&c)
            }
            ReorderAlgorithm::None => process.rank(),
            _ => {
                // sequential algorithms: rank 0 computes, then scatters
                const SCATTER_TAG: u64 = (1 << 59) + 11;
                if process.rank() == 0 {
                    let mapping = reorder
                        .mapper(seed)
                        .compute(&problem)
                        .expect("mapper applicable to this instance");
                    for dest in 1..process.size() {
                        process.send(
                            dest,
                            SCATTER_TAG,
                            &mapping.position_of_rank(dest).to_le_bytes(),
                        );
                    }
                    mapping.position_of_rank(0)
                } else {
                    let data = process.recv(0, SCATTER_TAG);
                    usize::from_le_bytes(data.as_slice().try_into().expect("8-byte payload"))
                }
            }
        };

        // --- make the permutation globally known -----------------------------
        let position_of_old = process.allgather_usize(my_position);
        let mut old_of_position = vec![usize::MAX; dims.volume()];
        for (old, &pos) in position_of_old.iter().enumerate() {
            assert!(
                old_of_position[pos] == usize::MAX,
                "reordering must be a permutation"
            );
            old_of_position[pos] = old;
        }

        // --- derive the neighbor lists of the distributed graph -------------
        let my_coord = dims.coord_of(my_position);
        let mut destinations = Vec::with_capacity(stencil.k());
        let mut sources = Vec::with_capacity(stencil.k());
        for off in stencil.offsets() {
            if let Some(c) = dims.offset_coord(&my_coord, off, periodic) {
                let t = dims.rank_of(&c);
                if t != my_position {
                    destinations.push(t);
                }
            }
            let neg: Vec<i64> = off.iter().map(|&x| -x).collect();
            if let Some(c) = dims.offset_coord(&my_coord, &neg, periodic) {
                let t = dims.rank_of(&c);
                if t != my_position {
                    sources.push(t);
                }
            }
        }

        StencilComm {
            dims,
            periodic,
            stencil,
            old_rank: process.rank(),
            new_rank: my_position,
            old_of_position,
            destinations,
            sources,
        }
    }

    /// The grid dimensions.
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    /// The stencil the communicator was created with.
    pub fn stencil(&self) -> &Stencil {
        &self.stencil
    }

    /// Whether the grid wraps around.
    pub fn periodic(&self) -> bool {
        self.periodic
    }

    /// The calling process' rank in the *old* (world) communicator.
    pub fn old_rank(&self) -> usize {
        self.old_rank
    }

    /// The calling process' rank in the reordered communicator (equal to its
    /// row-major grid position).
    pub fn new_rank(&self) -> usize {
        self.new_rank
    }

    /// The calling process' grid coordinate after reordering.
    pub fn coords(&self) -> Coord {
        self.dims.coord_of(self.new_rank)
    }

    /// The old rank (thread) that owns a given grid position / new rank.
    pub fn old_rank_of_position(&self, position: usize) -> usize {
        self.old_of_position[position]
    }

    /// Outgoing neighbor positions (new ranks), one per in-grid stencil
    /// offset, in stencil order.
    pub fn destinations(&self) -> &[usize] {
        &self.destinations
    }

    /// Incoming neighbor positions (new ranks) matched to
    /// [`StencilComm::destinations`].
    pub fn sources(&self) -> &[usize] {
        &self.sources
    }

    /// Number of outgoing neighbors.
    pub fn out_degree(&self) -> usize {
        self.destinations.len()
    }

    /// Neighborhood all-to-all over the reordered topology
    /// (`MPI_Neighbor_alltoall`): `send[i]` goes to the process owning
    /// `destinations()[i]`; the result holds one chunk per entry of
    /// `sources()`.
    pub fn neighbor_alltoall(&self, process: &mut Process, send: &[Vec<u8>]) -> Vec<Vec<u8>> {
        assert_eq!(send.len(), self.destinations.len());
        let dest_old: Vec<usize> = self
            .destinations
            .iter()
            .map(|&p| self.old_of_position[p])
            .collect();
        let src_old: Vec<usize> = self
            .sources
            .iter()
            .map(|&p| self.old_of_position[p])
            .collect();
        process.neighbor_alltoall(&dest_old, &src_old, send)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use stencil_grid::{Dims, NodeAllocation, Stencil};

    fn run_exchange(reorder: ReorderAlgorithm) {
        // 6x4 grid on 4 nodes x 6 processes; every process sends its new rank
        // to each neighbor and checks that what it receives matches the
        // sender's position on the grid.
        let results = Runtime::run(24, move |mut p| {
            let comm = StencilComm::create(
                &mut p,
                Dims::from_slice(&[6, 4]),
                false,
                Stencil::nearest_neighbor(2),
                NodeAllocation::homogeneous(4, 6),
                reorder,
                3,
            );
            let send: Vec<Vec<u8>> = comm
                .destinations()
                .iter()
                .map(|_| (comm.new_rank() as u32).to_le_bytes().to_vec())
                .collect();
            let recv = comm.neighbor_alltoall(&mut p, &send);
            // verify: the chunk received from sources()[i] carries exactly
            // that position
            for (i, chunk) in recv.iter().enumerate() {
                let got = u32::from_le_bytes(chunk.as_slice().try_into().unwrap()) as usize;
                assert_eq!(got, comm.sources()[i]);
            }
            (comm.old_rank(), comm.new_rank())
        });
        // the new ranks form a permutation
        let mut new_ranks: Vec<usize> = results.iter().map(|&(_, n)| n).collect();
        new_ranks.sort_unstable();
        assert_eq!(new_ranks, (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn exchange_correct_without_reordering() {
        run_exchange(ReorderAlgorithm::None);
    }

    #[test]
    fn exchange_correct_with_hyperplane() {
        run_exchange(ReorderAlgorithm::Hyperplane);
    }

    #[test]
    fn exchange_correct_with_kdtree() {
        run_exchange(ReorderAlgorithm::KdTree);
    }

    #[test]
    fn exchange_correct_with_stencil_strips() {
        run_exchange(ReorderAlgorithm::StencilStrips);
    }

    #[test]
    fn exchange_correct_with_nodecart_scatter_path() {
        run_exchange(ReorderAlgorithm::Nodecart);
    }

    #[test]
    fn periodic_communicator_has_full_neighborhood() {
        let results = Runtime::run(16, |mut p| {
            let comm = StencilComm::create(
                &mut p,
                Dims::from_slice(&[4, 4]),
                true,
                Stencil::nearest_neighbor(2),
                NodeAllocation::homogeneous(4, 4),
                ReorderAlgorithm::KdTree,
                0,
            );
            comm.out_degree()
        });
        assert!(results.iter().all(|&d| d == 4));
    }

    #[test]
    fn new_rank_matches_library_mapping() {
        // The communicator's permutation must agree with the library-level
        // CartStencilComm (pure computation).
        use stencil_mapping::CartStencilComm;
        let lib = CartStencilComm::create(
            Dims::from_slice(&[6, 4]),
            false,
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(4, 6),
            ReorderAlgorithm::StencilStrips,
            0,
        )
        .unwrap();
        let results = Runtime::run(24, |mut p| {
            let comm = StencilComm::create(
                &mut p,
                Dims::from_slice(&[6, 4]),
                false,
                Stencil::nearest_neighbor(2),
                NodeAllocation::homogeneous(4, 6),
                ReorderAlgorithm::StencilStrips,
                0,
            );
            comm.new_rank()
        });
        for (old_rank, &new_rank) in results.iter().enumerate() {
            assert_eq!(new_rank, lib.new_rank_of(old_rank));
        }
    }
}
