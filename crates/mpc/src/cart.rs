//! Cartesian communicators (`MPI_Cart_create` / `MPI_Dims_create` analogue).

use crate::runtime::Process;
use stencil_grid::{dims_create, Coord, Dims};

/// A Cartesian topology over the world communicator without reordering
/// (`MPI_Cart_create` with `reorder = 0`): rank `r` sits at the row-major
/// coordinate `r` of the grid.
#[derive(Debug, Clone)]
pub struct CartComm {
    dims: Dims,
    periodic: bool,
    rank: usize,
}

impl CartComm {
    /// Creates the Cartesian view for the calling process.
    ///
    /// # Panics
    ///
    /// Panics if the grid volume does not match the communicator size.
    pub fn create(process: &Process, dims: Dims, periodic: bool) -> Self {
        assert_eq!(
            dims.volume(),
            process.size(),
            "grid volume must equal the number of ranks"
        );
        CartComm {
            dims,
            periodic,
            rank: process.rank(),
        }
    }

    /// Creates a balanced grid for `size` ranks and `ndims` dimensions, like
    /// `MPI_Dims_create` followed by `MPI_Cart_create`.
    pub fn create_balanced(process: &Process, ndims: usize, periodic: bool) -> Self {
        let dims = Dims::new(dims_create(process.size(), ndims)).expect("valid dims");
        Self::create(process, dims, periodic)
    }

    /// The grid dimensions.
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    /// Whether the grid is periodic.
    pub fn periodic(&self) -> bool {
        self.periodic
    }

    /// The calling process' rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The calling process' Cartesian coordinate (`MPI_Cart_coords`).
    pub fn coords(&self) -> Coord {
        self.dims.coord_of(self.rank)
    }

    /// The coordinate of an arbitrary rank.
    pub fn coords_of(&self, rank: usize) -> Coord {
        self.dims.coord_of(rank)
    }

    /// The rank at a coordinate (`MPI_Cart_rank`).
    pub fn rank_at(&self, coord: &[usize]) -> usize {
        self.dims.rank_of(coord)
    }

    /// Source and destination ranks for a shift along `dim` by `displacement`
    /// (`MPI_Cart_shift`).  Returns `(source, destination)`; entries are
    /// `None` where the shift leaves a non-periodic grid.
    pub fn shift(&self, dim: usize, displacement: i64) -> (Option<usize>, Option<usize>) {
        let coord = self.coords();
        let mut fwd = vec![0i64; self.dims.ndims()];
        fwd[dim] = displacement;
        let mut bwd = vec![0i64; self.dims.ndims()];
        bwd[dim] = -displacement;
        let dest = self
            .dims
            .offset_coord(&coord, &fwd, self.periodic)
            .map(|c| self.dims.rank_of(&c));
        let src = self
            .dims
            .offset_coord(&coord, &bwd, self.periodic)
            .map(|c| self.dims.rank_of(&c));
        (src, dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;

    #[test]
    fn balanced_cart_comm_matches_dims_create() {
        let out = Runtime::run(12, |p| {
            let cart = CartComm::create_balanced(&p, 2, false);
            (cart.dims().as_slice().to_vec(), cart.coords())
        });
        for (rank, (dims, coords)) in out.iter().enumerate() {
            assert_eq!(dims, &vec![4, 3]);
            assert_eq!(coords, &stencil_grid::rank_to_coord(rank, &[4, 3]));
        }
    }

    #[test]
    fn coords_and_rank_roundtrip() {
        let out = Runtime::run(6, |p| {
            let cart = CartComm::create(&p, Dims::from_slice(&[2, 3]), false);
            cart.rank_at(&cart.coords())
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn shift_non_periodic_has_boundaries() {
        let out = Runtime::run(4, |p| {
            let cart = CartComm::create(&p, Dims::from_slice(&[4]), false);
            cart.shift(0, 1)
        });
        assert_eq!(out[0], (None, Some(1)));
        assert_eq!(out[1], (Some(0), Some(2)));
        assert_eq!(out[3], (Some(2), None));
    }

    #[test]
    fn shift_periodic_wraps() {
        let out = Runtime::run(4, |p| {
            let cart = CartComm::create(&p, Dims::from_slice(&[4]), true);
            cart.shift(0, 1)
        });
        assert_eq!(out[0], (Some(3), Some(1)));
        assert_eq!(out[3], (Some(2), Some(0)));
    }

    #[test]
    #[should_panic]
    fn mismatched_volume_rejected() {
        Runtime::run(4, |p| {
            CartComm::create(&p, Dims::from_slice(&[3, 3]), false);
        });
    }
}
