//! Crash-matrix and overload robustness suite.
//!
//! * **Crash matrix**: for every registered fault point around online log
//!   compaction and explicit flushes, a child process runs a deterministic
//!   workload, arms the point via `STENCIL_FAULTPOINT`, and is killed
//!   (`abort`, the `kill -9` stand-in) mid-operation.  The parent reloads
//!   the surviving log and asserts the recovered per-shard cache contents
//!   and recency order are **byte-identical** to a no-fault oracle run.
//! * **`#KILL9` golden transcript**: a checked-in request file is replayed
//!   up to a kill marker, the process dies mid-compaction (after the
//!   temporary file is written, before the rename), a second process
//!   resumes from the surviving log, and the concatenated response
//!   transcript must be byte-identical across `RAYON_NUM_THREADS ∈ {1,4}`.
//! * **Overload and isolation**: connections past `max_conns` are shed
//!   with a well-formed error line, a panicking request cannot take a pool
//!   worker down, and setting the shutdown flag drains and returns.
//! * **SIGTERM drain**: the real binary is sent SIGTERM and must answer
//!   in-flight work, flush + compact its log, and exit 0.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use stencil_serve::faultpoint::{self, Action};
use stencil_serve::server::{
    serve_listener_with, PollBackend, ServeOptions, OVERLOADED_LINE, READ_TIMEOUT_LINE,
};
use stencil_serve::service::{MappingService, ServiceConfig};

/// Fault arming is process-global, and unarmed `reach` calls still consume
/// hit counts: every test in this binary that arms a point *or* drives
/// requests in-process takes this lock so one test cannot eat another's
/// armed hit.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn cfg(path: Option<PathBuf>) -> ServiceConfig {
    ServiceConfig {
        cache_capacity: 6,
        cache_shards: 2,
        persist_path: path,
        ..ServiceConfig::default()
    }
}

fn data(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stencil-crash-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The deterministic crash workload: 10 distinct keys over a capacity-6
/// cache, so it exercises inserts, recency-changing hits and evictions.
fn workload(s: &MappingService) {
    for i in 0..24usize {
        let n = 2 + (i * 7) % 10;
        let line = format!(r#"{{"dims":[{n},4],"nodes":{n},"want_mapping":false}}"#);
        let out = s.handle_line(&line);
        assert!(out.contains("\"status\":\"ok\""), "{out}");
    }
}

/// Child half of the crash matrix (no-op unless spawned by the parent
/// test): runs the workload against a persisted service, makes it durable,
/// then walks the flush and compaction paths where the armed fault point
/// kills the process.  The first flush is hit 1 (state durable before the
/// kill), so flush points are armed at hit 2.
#[test]
fn crash_child_runs_workload_then_flush_and_compact() {
    let (Ok(path), Ok(_)) = (
        std::env::var("STENCIL_CRASH_LOG"),
        std::env::var("STENCIL_CRASH_CHILD"),
    ) else {
        return;
    };
    let s = MappingService::open(&cfg(Some(PathBuf::from(path)))).unwrap();
    workload(&s);
    s.flush_persistence(); // flush hit 1: the full state is durable
    s.compact_persistence(); // compaction points (armed at 1) die in here
    s.flush_persistence(); // flush hit 2: flush points die in here
}

/// The crash matrix: every fault point, kill + restart, recovered cache
/// byte-identical to the oracle.
#[test]
#[cfg(unix)]
fn crash_matrix_every_fault_point_recovers_byte_identically() {
    use std::os::unix::process::ExitStatusExt;
    let _g = fault_lock();

    // the oracle: the same workload, no persistence, no faults
    let oracle = MappingService::new(&cfg(None));
    workload(&oracle);
    let expect: Vec<Vec<_>> = (0..oracle.cache_num_shards())
        .map(|sh| oracle.cache_shard_entries_lru_first(sh))
        .collect();
    assert!(expect.iter().map(Vec::len).sum::<usize>() > 0);

    let exe = std::env::current_exe().expect("test executable path");
    let dir = tmp_dir("matrix");
    let matrix = [
        ("persist.compact.begin", 1u64),
        ("persist.compact.frozen", 1),
        ("persist.compact.mid_tmp", 1),
        ("persist.compact.tmp_written", 1),
        ("persist.compact.renamed", 1),
        ("persist.compact.done", 1),
        ("persist.flush.before", 2),
        ("persist.flush.after", 2),
    ];
    for (point, at) in matrix {
        let path = dir.join(format!("{}.log", point.replace('.', "-")));
        let _ = std::fs::remove_file(&path);
        let out = Command::new(&exe)
            .args([
                "crash_child_runs_workload_then_flush_and_compact",
                "--exact",
                "--test-threads=1",
            ])
            .env("STENCIL_CRASH_CHILD", "1")
            .env("STENCIL_CRASH_LOG", &path)
            .env("STENCIL_FAULTPOINT", format!("{point}:{at}"))
            .output()
            .expect("spawning the crash child");
        assert_eq!(
            out.status.signal(),
            Some(libc_sigabrt()),
            "{point}: the armed child must die by abort, got {:?}:\n{}{}",
            out.status,
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        let s = MappingService::open(&cfg(Some(path.clone()))).unwrap();
        for (shard, want) in expect.iter().enumerate() {
            let got = s.cache_shard_entries_lru_first(shard);
            assert_eq!(got.len(), want.len(), "{point}: shard {shard} size");
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.0, w.0, "{point}: shard {shard} key order");
                assert_eq!(*g.1, *w.1, "{point}: shard {shard} entry payload");
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// SIGABRT without pulling in the libc crate.
#[cfg(unix)]
fn libc_sigabrt() -> i32 {
    6
}

/// Child half of the `#KILL9` golden transcript (no-op unless spawned).
/// Phase 1 replays the requests before the marker, flushes, then starts a
/// compaction that the armed fault point turns into a kill; phase 2 reopens
/// the same log and replays the requests after the marker.  Responses go to
/// stdout line-buffered, so everything printed survives the abort.
#[test]
fn crash_transcript_child() {
    let (Ok(phase), Ok(path)) = (
        std::env::var("STENCIL_CRASH_GOLD_CHILD"),
        std::env::var("STENCIL_CRASH_GOLD_LOG"),
    ) else {
        return;
    };
    let requests = data("crash_transcript_requests.txt");
    let all: Vec<&str> = requests.lines().collect();
    let marker = all
        .iter()
        .position(|l| l.trim() == "#KILL9")
        .expect("crash transcript needs a #KILL9 marker line");
    let s = MappingService::open(&cfg(Some(PathBuf::from(path)))).unwrap();
    let lines = if phase == "1" {
        &all[..marker]
    } else {
        &all[marker + 1..]
    };
    for line in lines {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        // the "#>" marker lets the parent cut responses out of the libtest
        // harness chatter (the first println shares a line with the
        // "test ... " header under --nocapture)
        println!("#>{}", s.handle_line(line));
    }
    if phase == "1" {
        s.flush_persistence();
        s.compact_persistence(); // the armed point aborts mid-swap
        panic!("the armed fault point never fired");
    }
}

/// The `#KILL9`/`#RESTART` golden: kill mid-compaction, restart, and the
/// concatenated transcript is byte-identical across thread counts, with the
/// post-restart repeats served from the recovered cache.
#[test]
#[cfg(unix)]
fn kill9_transcript_is_byte_identical_across_thread_counts() {
    use std::os::unix::process::ExitStatusExt;
    let exe = std::env::current_exe().expect("test executable path");
    let dir = tmp_dir("gold");
    let json_lines = |raw: &[u8]| -> Vec<String> {
        String::from_utf8_lossy(raw)
            .lines()
            .filter_map(|l| l.split_once("#>").map(|(_, r)| r.to_string()))
            .collect()
    };
    let mut transcripts = Vec::new();
    for threads in ["1", "4"] {
        let path = dir.join(format!("gold-{threads}.log"));
        let _ = std::fs::remove_file(&path);
        let child = |phase: &str, armed: bool| {
            let mut cmd = Command::new(&exe);
            cmd.args([
                "crash_transcript_child",
                "--exact",
                "--test-threads=1",
                "--nocapture",
            ])
            .env("STENCIL_CRASH_GOLD_CHILD", phase)
            .env("STENCIL_CRASH_GOLD_LOG", &path)
            .env("RAYON_NUM_THREADS", threads);
            if armed {
                cmd.env("STENCIL_FAULTPOINT", "persist.compact.tmp_written:1");
            }
            cmd.output().expect("spawning the transcript child")
        };
        let killed = child("1", true);
        assert_eq!(
            killed.status.signal(),
            Some(libc_sigabrt()),
            "phase 1 must die mid-compaction, got {:?}:\n{}",
            killed.status,
            String::from_utf8_lossy(&killed.stderr)
        );
        let resumed = child("2", false);
        assert!(
            resumed.status.success(),
            "phase 2 failed:\n{}{}",
            String::from_utf8_lossy(&resumed.stdout),
            String::from_utf8_lossy(&resumed.stderr)
        );
        let part2 = json_lines(&resumed.stdout);
        assert!(
            part2[0].contains("\"cached\":true") && part2[1].contains("\"cached\":true"),
            "post-restart repeats must be served from the recovered log:\n{part2:#?}"
        );
        let mut all = json_lines(&killed.stdout);
        all.extend(part2);
        transcripts.push((threads, all));
        let _ = std::fs::remove_file(&path);
    }
    let (_, reference) = &transcripts[0];
    for (threads, transcript) in &transcripts {
        assert_eq!(
            transcript, reference,
            "RAYON_NUM_THREADS={threads}: crash transcript diverged"
        );
    }
}

fn start_server(
    opts: ServeOptions,
) -> (
    std::net::SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let service = Arc::new(MappingService::new(&cfg(None)));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let handle = std::thread::spawn(move || serve_listener_with(service, listener, opts, flag));
    (addr, shutdown, handle)
}

fn ask(conn: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    conn.write_all(line.as_bytes()).unwrap();
    conn.write_all(b"\n").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    reply
}

/// A panicking request is answered with an error line and the worker (there
/// is only one) keeps serving the same connection — under both backends.
#[test]
fn a_panicking_request_cannot_take_a_pool_worker_down() {
    let _g = fault_lock();
    for backend in [PollBackend::Epoll, PollBackend::ThreadPoll] {
        let (addr, shutdown, handle) = start_server(ServeOptions {
            workers: 1,
            poll_backend: backend,
            ..ServeOptions::default()
        });
        let mut conn = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        faultpoint::arm(Some(("serve.request", 1, Action::Panic)));
        let reply = ask(
            &mut conn,
            &mut reader,
            r#"{"dims":[4,4],"nodes":4,"want_mapping":false}"#,
        );
        faultpoint::arm(None);
        assert!(
            reply.contains("internal error"),
            "{backend:?}: the panic must surface as an error response: {reply}"
        );
        let reply = ask(
            &mut conn,
            &mut reader,
            r#"{"dims":[4,4],"nodes":4,"want_mapping":false}"#,
        );
        assert!(
            reply.contains("\"status\":\"ok\""),
            "{backend:?}: the worker must survive the panic: {reply}"
        );
        shutdown.store(true, Ordering::Release);
        drop((conn, reader));
        handle.join().unwrap().unwrap();
    }
}

/// Connections past `max_conns` get one well-formed overloaded line and are
/// closed; closing an admitted connection frees its slot.
#[test]
fn connections_past_max_conns_are_shed_with_an_error_line() {
    let _g = fault_lock();
    for backend in [PollBackend::Epoll, PollBackend::ThreadPoll] {
        let (addr, shutdown, handle) = start_server(ServeOptions {
            workers: 1,
            max_conns: 2,
            poll_backend: backend,
            ..ServeOptions::default()
        });
        let request = r#"{"dims":[4,4],"nodes":4,"want_mapping":false}"#;
        let mut c1 = TcpStream::connect(addr).unwrap();
        let mut r1 = BufReader::new(c1.try_clone().unwrap());
        assert!(ask(&mut c1, &mut r1, request).contains("\"status\":\"ok\""));
        let mut c2 = TcpStream::connect(addr).unwrap();
        let mut r2 = BufReader::new(c2.try_clone().unwrap());
        assert!(ask(&mut c2, &mut r2, request).contains("\"status\":\"ok\""));

        // both slots taken: the third connection is shed with the error line
        // (newline included — the shed write must not tear)
        let c3 = TcpStream::connect(addr).unwrap();
        let mut line = String::new();
        BufReader::new(c3).read_line(&mut line).unwrap();
        assert!(
            line.ends_with('\n'),
            "{backend:?}: shed line torn: {line:?}"
        );
        assert_eq!(line.trim_end(), OVERLOADED_LINE, "{backend:?}");

        // closing an admitted connection frees its slot (the worker has to
        // notice the close on its next poll, so retry briefly)
        drop((c1, r1));
        let mut admitted = false;
        for _ in 0..200 {
            let mut c = TcpStream::connect(addr).unwrap();
            let mut r = BufReader::new(c.try_clone().unwrap());
            if ask(&mut c, &mut r, request).contains("\"status\":\"ok\"") {
                admitted = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            admitted,
            "{backend:?}: a freed slot must admit a new connection"
        );
        shutdown.store(true, Ordering::Release);
        drop((c2, r2));
        handle.join().unwrap().unwrap();
    }
}

/// A client that starts a line and stalls mid-way is answered with one
/// well-formed read-timeout line and closed after the read deadline; an
/// idle keep-alive connection with an empty framer is not.
#[test]
fn dribbling_clients_are_reaped_but_idle_keepalives_survive() {
    let _g = fault_lock();
    for backend in [PollBackend::Epoll, PollBackend::ThreadPoll] {
        let (addr, shutdown, handle) = start_server(ServeOptions {
            workers: 1,
            read_timeout: Duration::from_millis(200),
            poll_backend: backend,
            ..ServeOptions::default()
        });
        let request = r#"{"dims":[4,4],"nodes":4,"want_mapping":false}"#;

        // idle keep-alive: no bytes sent, connection must outlive the deadline
        let mut idle = TcpStream::connect(addr).unwrap();
        let mut idle_reader = BufReader::new(idle.try_clone().unwrap());

        // dribbler: half a line, then silence
        let mut dribble = TcpStream::connect(addr).unwrap();
        dribble.write_all(&request.as_bytes()[..10]).unwrap();

        std::thread::sleep(Duration::from_millis(600));

        // the dribbler was told why before the close: one newline-terminated
        // read-timeout error line, then EOF (not a silent drop)
        dribble
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut dribble_reader = BufReader::new(dribble.try_clone().unwrap());
        let mut reaped = String::new();
        dribble_reader.read_line(&mut reaped).unwrap();
        assert!(
            reaped.ends_with('\n'),
            "{backend:?}: reap line torn: {reaped:?}"
        );
        assert_eq!(reaped.trim_end(), READ_TIMEOUT_LINE, "{backend:?}");
        let mut rest = String::new();
        assert_eq!(
            dribble_reader.read_line(&mut rest).unwrap_or(0),
            0,
            "{backend:?}: the mid-line staller must be disconnected after \
             the error line, got {rest:?}"
        );

        // the idle connection still serves
        let reply = ask(&mut idle, &mut idle_reader, request);
        assert!(reply.contains("\"status\":\"ok\""), "{backend:?}: {reply}");

        shutdown.store(true, Ordering::Release);
        drop((idle, idle_reader, dribble, dribble_reader));
        handle.join().unwrap().unwrap();
    }
}

/// Setting the shutdown flag drains: already-sent lines are answered, the
/// accept loop returns `Ok`, and the listener port closes.
#[test]
fn drain_answers_sent_lines_and_returns_cleanly() {
    let _g = fault_lock();
    for backend in [PollBackend::Epoll, PollBackend::ThreadPoll] {
        let (addr, shutdown, handle) = start_server(ServeOptions {
            workers: 2,
            poll_backend: backend,
            ..ServeOptions::default()
        });
        let mut conn = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        conn.write_all(b"{\"dims\":[6,6],\"nodes\":4,\"want_mapping\":false}\n")
            .unwrap();
        // let the line reach the server before draining, then drain
        std::thread::sleep(Duration::from_millis(100));
        shutdown.store(true, Ordering::Release);
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(
            reply.contains("\"status\":\"ok\""),
            "{backend:?}: the in-flight line must be answered during the drain: {reply}"
        );
        handle.join().unwrap().unwrap();
        // the listener is gone: new connections are refused (or immediately
        // closed if the OS had them queued in the backlog)
        if let Ok(mut late) = TcpStream::connect(addr) {
            late.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut buf = [0u8; 1];
            assert_eq!(
                late.read(&mut buf).unwrap_or(0),
                0,
                "{backend:?}: server must be gone"
            );
        }
        drop((conn, reader));
    }
}

/// SIGTERM against the real binary: it stops accepting, flushes and
/// compacts its log, and exits 0; a fresh process reloads the warm cache.
#[test]
#[cfg(unix)]
fn sigterm_drains_compacts_and_exits_zero() {
    let dir = tmp_dir("sigterm");
    let log = dir.join("sigterm.log");
    let _ = std::fs::remove_file(&log);
    let mut child = Command::new(env!("CARGO_BIN_EXE_stencil-serve"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--persist",
            log.to_str().unwrap(),
        ])
        .stderr(std::process::Stdio::piped())
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawning stencil-serve");
    let stderr = child.stderr.take().unwrap();
    let mut stderr_reader = BufReader::new(stderr);
    let addr = loop {
        let mut line = String::new();
        assert_ne!(
            stderr_reader.read_line(&mut line).unwrap(),
            0,
            "server exited before printing its address"
        );
        if let Some(rest) = line.trim_end().split("listening on ").nth(1) {
            break rest.to_string();
        }
    };
    // drain the rest of stderr in the background so the child never blocks
    let drain = std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = stderr_reader.read_to_string(&mut rest);
        rest
    });

    let mut conn = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let reply = ask(
        &mut conn,
        &mut reader,
        r#"{"dims":[12,8],"nodes":8,"want_mapping":false}"#,
    );
    assert!(reply.contains("\"status\":\"ok\""), "{reply}");

    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("running kill");
    assert!(term.success());
    let status = child.wait().expect("waiting for stencil-serve");
    assert!(
        status.success(),
        "SIGTERM drain must exit 0, got {status:?}:\n{}",
        drain.join().unwrap()
    );

    // the flushed + compacted log reloads warm: pure inserts, zero skips
    let reload_cfg = ServiceConfig {
        persist_path: Some(log.clone()),
        ..ServiceConfig::default()
    };
    let s = MappingService::open(&reload_cfg).unwrap();
    let report = s.load_report();
    assert_eq!(
        (report.entries, report.skipped),
        (1, 0),
        "drain must leave a clean compacted log: {report:?}"
    );
    let out = s.handle_line(r#"{"dims":[12,8],"nodes":8,"want_mapping":false}"#);
    assert!(out.contains("\"cached\":true"), "{out}");
    let _ = std::fs::remove_file(&log);
}
