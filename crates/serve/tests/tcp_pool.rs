//! Real-socket tests of the TCP worker pool: more clients than workers,
//! interleaved and pipelined requests, per-connection response order.
//!
//! PR 3's loadgen and smoke step only exercised the service in-process or
//! over stdin; these tests drive actual `TcpStream`s against
//! `serve_listener_with` so the frontend's readiness machinery (epoll
//! parking or the threadpoll requeue loop, non-blocking reads, blocking
//! writes) is what serves the bytes.  Every test runs under both poll
//! backends.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use stencil_serve::json::Value;
use stencil_serve::server::{serve_listener_with, PollBackend, ServeOptions};
use stencil_serve::service::{MappingService, ServiceConfig};

const BACKENDS: [PollBackend; 2] = [PollBackend::Epoll, PollBackend::ThreadPoll];

/// Binds an ephemeral port and serves it with the given options.
fn start_server(opts: ServeOptions) -> (Arc<MappingService>, std::net::SocketAddr) {
    let service = Arc::new(MappingService::new(&ServiceConfig::default()));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let _ = serve_listener_with(service, listener, opts, Arc::new(AtomicBool::new(false)));
        });
    }
    (service, addr)
}

fn pool_opts(workers: usize, backend: PollBackend) -> ServeOptions {
    ServeOptions {
        workers,
        poll_backend: backend,
        ..ServeOptions::default()
    }
}

/// Twelve clients on a two-worker pool, requests interleaved round-robin
/// across the connections (one request per client per round, responses
/// read *after* all writes of the round), so connections outnumber worker
/// threads 6x and every connection is mid-stream while others are served.
/// Each client must see exactly its own responses, in its own send order.
#[test]
fn more_clients_than_workers_interleaved_requests_keep_per_connection_order() {
    const CLIENTS: usize = 12;
    const WORKERS: usize = 2;
    const ROUNDS: usize = 8;
    for backend in BACKENDS {
        let (_service, addr) = start_server(pool_opts(WORKERS, backend));

        let mut conns: Vec<TcpStream> = (0..CLIENTS)
            .map(|_| TcpStream::connect(addr).unwrap())
            .collect();
        let mut readers: Vec<BufReader<TcpStream>> = conns
            .iter()
            .map(|c| BufReader::new(c.try_clone().unwrap()))
            .collect();

        for round in 0..ROUNDS {
            // interleave writes: every client sends one request before any
            // response of this round is read
            for (client, conn) in conns.iter_mut().enumerate() {
                let id = round * CLIENTS + client;
                // vary the instance per client so hits and misses interleave
                let nodes = 2 + (client % 3) * 2;
                let line = format!(
                    "{{\"id\":{id},\"dims\":[{nodes},6],\"nodes\":{nodes},\"want_mapping\":false}}\n"
                );
                conn.write_all(line.as_bytes()).unwrap();
            }
            for (client, reader) in readers.iter_mut().enumerate() {
                let id = round * CLIENTS + client;
                let mut reply = String::new();
                reader.read_line(&mut reply).unwrap();
                let v = Value::parse(reply.trim_end()).unwrap();
                assert_eq!(
                    v.get("id").and_then(Value::as_usize),
                    Some(id),
                    "{backend:?}: client {client} round {round} got someone \
                     else's response: {reply}"
                );
                assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
            }
        }
    }
}

/// One connection pipelines a burst of requests (including a batch and an
/// error) without reading; the responses must come back 1:1 in order.
#[test]
fn pipelined_burst_on_one_connection_answers_in_order() {
    for backend in BACKENDS {
        let (_service, addr) = start_server(pool_opts(2, backend));
        let mut conn = TcpStream::connect(addr).unwrap();
        let mut burst = String::new();
        for id in 0..20 {
            burst.push_str(&format!(
                "{{\"id\":{id},\"dims\":[6,4],\"nodes\":4,\"want_mapping\":false}}\n"
            ));
        }
        burst.push_str("{\"batch\":[{\"id\":\"x\",\"dims\":[4,4],\"nodes\":4,\"want_mapping\":false},{\"id\":\"y\",\"dims\":[3,3]}]}\n");
        burst.push_str("{broken\n");
        conn.write_all(burst.as_bytes()).unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();

        let reader = BufReader::new(conn);
        let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 22, "{backend:?}");
        for (id, line) in lines[..20].iter().enumerate() {
            let v = Value::parse(line).unwrap();
            assert_eq!(
                v.get("id").and_then(Value::as_usize),
                Some(id),
                "{backend:?}: {line}"
            );
        }
        let batch = Value::parse(&lines[20]).unwrap();
        let items = batch.get("batch").and_then(Value::as_arr).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].get("id").and_then(Value::as_str), Some("x"));
        assert_eq!(
            items[1].get("status").and_then(Value::as_str),
            Some("error")
        );
        assert!(lines[21].contains("\"status\":\"error\""), "{backend:?}");
    }
}

/// A request split into tiny TCP writes (including a mid-line pause) must
/// still be framed into one request; a second connection making progress in
/// the meantime proves the pool is not blocked on the dribbling client.
#[test]
fn slow_dribbling_client_does_not_block_the_pool() {
    for backend in BACKENDS {
        let (_service, addr) = start_server(pool_opts(1, backend)); // a single worker, even
        let mut slow = TcpStream::connect(addr).unwrap();
        let line = b"{\"id\":7,\"dims\":[6,4],\"nodes\":4,\"want_mapping\":false}\n";
        let (head, tail) = line.split_at(10);
        slow.write_all(head).unwrap();
        slow.flush().unwrap();

        // while the slow client's line is incomplete, a fast client is served
        let mut fast = TcpStream::connect(addr).unwrap();
        fast.write_all(b"{\"id\":1,\"dims\":[4,4],\"nodes\":4,\"want_mapping\":false}\n")
            .unwrap();
        let mut fast_reply = String::new();
        BufReader::new(fast.try_clone().unwrap())
            .read_line(&mut fast_reply)
            .unwrap();
        assert!(fast_reply.contains("\"id\":1"), "{backend:?}: {fast_reply}");

        slow.write_all(tail).unwrap();
        let mut slow_reply = String::new();
        BufReader::new(slow.try_clone().unwrap())
            .read_line(&mut slow_reply)
            .unwrap();
        assert!(slow_reply.contains("\"id\":7"), "{backend:?}: {slow_reply}");
    }
}

/// Connections closed abruptly (mid-line, or right after connecting) must
/// not take a worker down; later clients are still served.
#[test]
fn abrupt_disconnects_leave_the_pool_healthy() {
    for backend in BACKENDS {
        let (_service, addr) = start_server(pool_opts(2, backend));
        for _ in 0..8 {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(b"{\"half\":").unwrap();
            drop(c); // vanish mid-line
            let c2 = TcpStream::connect(addr).unwrap();
            drop(c2); // vanish without a byte
        }
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"{\"id\":9,\"dims\":[4,4],\"nodes\":4,\"want_mapping\":false}\n")
            .unwrap();
        let mut reply = String::new();
        BufReader::new(conn).read_line(&mut reply).unwrap();
        assert!(reply.contains("\"id\":9"), "{backend:?}: {reply}");
    }
}

/// A client that pipelines large verbose responses and stops reading stalls
/// the server's blocking `write_all`; once [`ServeOptions::write_timeout`]
/// expires the connection must be torn down — whatever bytes made it out are
/// well-formed lines (plus at most one torn tail), EOF follows, and the
/// socket never serves a later request — while the pool stays healthy for
/// other clients.
#[test]
fn write_timeout_tears_down_a_client_that_stops_reading() {
    for backend in BACKENDS {
        let (_service, addr) = start_server(ServeOptions {
            workers: 2,
            write_timeout: Duration::from_millis(300),
            poll_backend: backend,
            ..ServeOptions::default()
        });
        // ~260 KiB of compact node table per response, ~16 MiB across all
        // 60.  Two sizing constraints, both learned the hard way:
        //
        // * The total must overrun what the kernel will buffer for a
        //   receiver that never reads: the server's send buffer plus the
        //   client's *initial* receive buffer (TCP auto-tuning only grows
        //   it for a reading peer) — measured ~3-4 MiB on loopback here.
        //   16 MiB leaves a ~4x margin.
        // * Responses must be cheap to *produce*, or the server is still
        //   serialising when the client below wakes and starts draining,
        //   and the freshly opened window rescues the blocked write right
        //   at the timeout boundary.  Compact tables are memoised on the
        //   cache entry (generation is a memcpy); verbose tables are
        //   re-serialised per response and lose the race in debug builds.
        //   Keeping the batch small (60, not hundreds) keeps generation
        //   well under the client's sleep below.
        let request = "{\"dims\":[500,400],\"nodes\":100,\"encoding\":\"compact\"}\n";

        // Warm the cache on a well-behaved connection first so the stuck
        // connection's responses are all memoised hits (no multi-second
        // cold compute on the stuck path).
        {
            let mut warm = TcpStream::connect(addr).unwrap();
            warm.write_all(request.as_bytes()).unwrap();
            let mut line = String::new();
            BufReader::new(warm).read_line(&mut line).unwrap();
            assert!(line.contains("\"status\":\"ok\""), "{backend:?}: {line}");
        }

        let mut stuck = TcpStream::connect(addr).unwrap();
        for _ in 0..60 {
            stuck.write_all(request.as_bytes()).unwrap();
        }
        // Do not read: the server's write_all must block and then time out.
        // The sleep must outlast response generation *plus* the 300 ms
        // write timeout, or draining below re-opens the window in time to
        // rescue the blocked write.
        std::thread::sleep(Duration::from_millis(2500));

        // drain what did make it out: every complete line is well formed,
        // nothing valid follows a torn tail, and the stream ends in EOF
        stuck
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut received = Vec::new();
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match stuck.read(&mut chunk) {
                Ok(0) => break, // EOF: the server closed the connection
                Ok(n) => received.extend_from_slice(&chunk[..n]),
                // A reset is also a valid teardown signal: dropping the
                // connection with bytes still queued can surface as RST.
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => break,
                Err(e) => panic!("{backend:?}: expected EOF after write timeout, got {e}"),
            }
        }
        let text = String::from_utf8(received).unwrap();
        let mut parts = text.split('\n');
        let torn_tail = parts.next_back().unwrap(); // after the last '\n'
        let complete = parts.collect::<Vec<_>>();
        assert!(
            complete.len() < 60,
            "{backend:?}: all 60 responses arrived — the write never timed out"
        );
        for line in &complete {
            assert!(
                Value::parse(line).is_ok(),
                "{backend:?}: torn line followed by more output: {:?}",
                &line[..line.len().min(120)]
            );
        }
        let _ = torn_tail; // a torn tail is fine — it is the final bytes

        // the torn-down socket never serves a later request: a fresh write
        // either fails outright or is answered only by EOF
        let mut after = String::new();
        if stuck.write_all(request.as_bytes()).is_ok() {
            let n = stuck.read(&mut chunk).unwrap_or(0);
            after = String::from_utf8_lossy(&chunk[..n]).into_owned();
        }
        assert!(
            after.is_empty(),
            "{backend:?}: a closed connection served a request: {after:?}"
        );

        // the pool is healthy: a fresh client is served promptly
        let mut fresh = TcpStream::connect(addr).unwrap();
        fresh
            .write_all(b"{\"id\":1,\"dims\":[4,4],\"nodes\":4,\"want_mapping\":false}\n")
            .unwrap();
        let mut reply = String::new();
        BufReader::new(fresh).read_line(&mut reply).unwrap();
        assert!(reply.contains("\"status\":\"ok\""), "{backend:?}: {reply}");
    }
}
