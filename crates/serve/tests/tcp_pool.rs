//! Real-socket tests of the TCP worker pool: more clients than workers,
//! interleaved and pipelined requests, per-connection response order.
//!
//! PR 3's loadgen and smoke step only exercised the service in-process or
//! over stdin; these tests drive actual `TcpStream`s against
//! `serve_listener` so the pool's readiness loop (non-blocking reads,
//! requeueing, blocking writes) is what serves the bytes.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use stencil_serve::json::Value;
use stencil_serve::service::{MappingService, ServiceConfig};

/// Binds an ephemeral port and serves it on a pool of `workers` threads.
fn start_server(workers: usize) -> (Arc<MappingService>, std::net::SocketAddr) {
    let service = Arc::new(MappingService::new(&ServiceConfig::default()));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    {
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let _ = stencil_serve::server::serve_listener(service, listener, workers);
        });
    }
    (service, addr)
}

/// Twelve clients on a two-worker pool, requests interleaved round-robin
/// across the connections (one request per client per round, responses
/// read *after* all writes of the round), so connections outnumber worker
/// threads 6x and every connection is mid-stream while others are served.
/// Each client must see exactly its own responses, in its own send order.
#[test]
fn more_clients_than_workers_interleaved_requests_keep_per_connection_order() {
    const CLIENTS: usize = 12;
    const WORKERS: usize = 2;
    const ROUNDS: usize = 8;
    let (_service, addr) = start_server(WORKERS);

    let mut conns: Vec<TcpStream> = (0..CLIENTS)
        .map(|_| TcpStream::connect(addr).unwrap())
        .collect();
    let mut readers: Vec<BufReader<TcpStream>> = conns
        .iter()
        .map(|c| BufReader::new(c.try_clone().unwrap()))
        .collect();

    for round in 0..ROUNDS {
        // interleave writes: every client sends one request before any
        // response of this round is read
        for (client, conn) in conns.iter_mut().enumerate() {
            let id = round * CLIENTS + client;
            // vary the instance per client so hits and misses interleave
            let nodes = 2 + (client % 3) * 2;
            let line = format!(
                "{{\"id\":{id},\"dims\":[{nodes},6],\"nodes\":{nodes},\"want_mapping\":false}}\n"
            );
            conn.write_all(line.as_bytes()).unwrap();
        }
        for (client, reader) in readers.iter_mut().enumerate() {
            let id = round * CLIENTS + client;
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            let v = Value::parse(reply.trim_end()).unwrap();
            assert_eq!(
                v.get("id").and_then(Value::as_usize),
                Some(id),
                "client {client} round {round} got someone else's response: {reply}"
            );
            assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        }
    }
}

/// One connection pipelines a burst of requests (including a batch and an
/// error) without reading; the responses must come back 1:1 in order.
#[test]
fn pipelined_burst_on_one_connection_answers_in_order() {
    let (_service, addr) = start_server(2);
    let mut conn = TcpStream::connect(addr).unwrap();
    let mut burst = String::new();
    for id in 0..20 {
        burst.push_str(&format!(
            "{{\"id\":{id},\"dims\":[6,4],\"nodes\":4,\"want_mapping\":false}}\n"
        ));
    }
    burst.push_str("{\"batch\":[{\"id\":\"x\",\"dims\":[4,4],\"nodes\":4,\"want_mapping\":false},{\"id\":\"y\",\"dims\":[3,3]}]}\n");
    burst.push_str("{broken\n");
    conn.write_all(burst.as_bytes()).unwrap();
    conn.shutdown(std::net::Shutdown::Write).unwrap();

    let reader = BufReader::new(conn);
    let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
    assert_eq!(lines.len(), 22);
    for (id, line) in lines[..20].iter().enumerate() {
        let v = Value::parse(line).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_usize), Some(id), "{line}");
    }
    let batch = Value::parse(&lines[20]).unwrap();
    let items = batch.get("batch").and_then(Value::as_arr).unwrap();
    assert_eq!(items.len(), 2);
    assert_eq!(items[0].get("id").and_then(Value::as_str), Some("x"));
    assert_eq!(
        items[1].get("status").and_then(Value::as_str),
        Some("error")
    );
    assert!(lines[21].contains("\"status\":\"error\""));
}

/// A request split into tiny TCP writes (including a mid-line pause) must
/// still be framed into one request; a second connection making progress in
/// the meantime proves the pool is not blocked on the dribbling client.
#[test]
fn slow_dribbling_client_does_not_block_the_pool() {
    let (_service, addr) = start_server(1); // a single worker, even
    let mut slow = TcpStream::connect(addr).unwrap();
    let line = b"{\"id\":7,\"dims\":[6,4],\"nodes\":4,\"want_mapping\":false}\n";
    let (head, tail) = line.split_at(10);
    slow.write_all(head).unwrap();
    slow.flush().unwrap();

    // while the slow client's line is incomplete, a fast client is served
    let mut fast = TcpStream::connect(addr).unwrap();
    fast.write_all(b"{\"id\":1,\"dims\":[4,4],\"nodes\":4,\"want_mapping\":false}\n")
        .unwrap();
    let mut fast_reply = String::new();
    BufReader::new(fast.try_clone().unwrap())
        .read_line(&mut fast_reply)
        .unwrap();
    assert!(fast_reply.contains("\"id\":1"), "{fast_reply}");

    slow.write_all(tail).unwrap();
    let mut slow_reply = String::new();
    BufReader::new(slow.try_clone().unwrap())
        .read_line(&mut slow_reply)
        .unwrap();
    assert!(slow_reply.contains("\"id\":7"), "{slow_reply}");
}

/// Connections closed abruptly (mid-line, or right after connecting) must
/// not take a worker down; later clients are still served.
#[test]
fn abrupt_disconnects_leave_the_pool_healthy() {
    let (_service, addr) = start_server(2);
    for _ in 0..8 {
        let mut c = TcpStream::connect(addr).unwrap();
        c.write_all(b"{\"half\":").unwrap();
        drop(c); // vanish mid-line
        let c2 = TcpStream::connect(addr).unwrap();
        drop(c2); // vanish without a byte
    }
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"{\"id\":9,\"dims\":[4,4],\"nodes\":4,\"want_mapping\":false}\n")
        .unwrap();
    let mut reply = String::new();
    BufReader::new(conn).read_line(&mut reply).unwrap();
    assert!(reply.contains("\"id\":9"), "{reply}");
}
