//! Adversarial input tests for the serve frontend: hostile request lines
//! must produce exactly one parseable error response each — never a panic,
//! a hang, or a dropped connection loop.
//!
//! The limits these tests pin down:
//!
//! * `stencil_serve::json::MAX_DEPTH` (128): container nesting beyond it is
//!   rejected without recursing further, so one line cannot overflow the
//!   stack (the recursive parser's frames are bounded).
//! * [`stencil_serve::server::MAX_LINE_BYTES`] (4 MiB): longer lines are
//!   answered with one error response and discarded byte-by-byte, so one
//!   unterminated line cannot balloon the server's memory.
//! * [`stencil_serve::json::MAX_COMPACT_ENTRIES`] (2^28): a compact string
//!   cannot make the decoder allocate an unbounded table.
//! * [`stencil_serve::protocol::MAX_GRID_VOLUME`] (2^24): a 40-byte request
//!   cannot ask the engine to materialise a multi-gigabyte grid, and the
//!   dims product is checked so it cannot overflow either.
//! * Invalid UTF-8 is detected at the framing layer and answered with an
//!   error response; the stream keeps serving.

use stencil_serve::json::Value;
use stencil_serve::server::{serve_io, MAX_LINE_BYTES};
use stencil_serve::service::{MappingService, ServiceConfig};

fn service() -> MappingService {
    MappingService::new(&ServiceConfig::default())
}

/// Every line of `input` (as raw bytes) must yield exactly one response
/// line, each one a parseable JSON object with a `status` field.
fn assert_one_parseable_response_per_line(input: &[u8], lines_in: usize) -> Vec<String> {
    let s = service();
    let mut out = Vec::new();
    serve_io(&s, input, &mut out).expect("serve_io must not fail on hostile input");
    let text = String::from_utf8(out).expect("responses are valid UTF-8");
    let lines: Vec<String> = text.lines().map(str::to_string).collect();
    assert_eq!(lines.len(), lines_in, "one response per request line");
    for line in &lines {
        let v = Value::parse(line).unwrap_or_else(|e| panic!("unparseable response {line:?}: {e}"));
        assert!(
            v.get("status").is_some(),
            "response without status: {line:?}"
        );
    }
    lines
}

#[test]
fn truncations_of_a_valid_request_never_panic() {
    let full = r#"{"id":1,"dims":[6,4],"nodes":4,"stencil":[[1,0],[-1,0]],"algorithm":"viem","seed":7,"max_jsum":100,"on_over_budget":"fallback","encoding":"compact","query":"new_rank_of","ranks":[0,1]}"#;
    let s = service();
    for cut in 1..full.len() {
        let prefix = &full[..cut];
        let response = s.handle_line(prefix);
        let v = Value::parse(&response)
            .unwrap_or_else(|e| panic!("cut {cut}: unparseable response {response:?}: {e}"));
        assert!(v.get("status").is_some(), "cut {cut}: {response}");
    }
}

#[test]
fn deep_nesting_is_rejected_not_recursed() {
    let s = service();
    for hostile in [
        "[".repeat(200_000),
        "{\"a\":".repeat(200_000),
        format!("{}1{}", "[".repeat(129), "]".repeat(129)),
        format!(r#"{{"batch":{}1{}}}"#, "[".repeat(200), "]".repeat(200)),
        format!(r#"{{"dims":{}}}"#, "[".repeat(100_000)),
    ] {
        let response = s.handle_line(&hostile);
        let v = Value::parse(&response).expect("parseable error response");
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
    }
    // nesting at the protocol's actual depth still parses
    let fine = format!("{}1{}", "[".repeat(100), "]".repeat(100));
    assert!(Value::parse(&fine).is_ok());
}

#[test]
fn hostile_numbers_and_values_error_cleanly() {
    let s = service();
    for line in [
        r#"{"dims":[1e999,4],"nodes":4}"#,
        r#"{"dims":[99999999999999999999999,4],"nodes":4}"#,
        r#"{"dims":[6.5,4],"nodes":4}"#,
        r#"{"dims":[-6,4],"nodes":4}"#,
        r#"{"dims":[6,4],"nodes":4,"seed":-1}"#,
        r#"{"dims":[6,4],"nodes":0}"#,
        r#"{"dims":[],"nodes":1}"#,
        r#"{"dims":[6,4],"node_sizes":[99999999999999,1]}"#,
        // a tiny line must not buy a gigantic computation …
        r#"{"dims":[65536,65536],"nodes":4}"#,
        // … and the dims product must not overflow usize
        r#"{"dims":[4294967296,4294967296,4294967296],"nodes":4}"#,
        r#"{"dims":[6,4],"nodes":4,"stencil":[[1,0,0]]}"#,
        r#"{"batch":{"not":"an array"}}"#,
        r#"{"dims":[6,4],"nodes":4,"ranks":[0]}"#,
        "null",
        "true",
        "\"just a string\"",
        "[1,2,3]",
    ] {
        let response = s.handle_line(line);
        let v = Value::parse(&response)
            .unwrap_or_else(|e| panic!("{line}: unparseable response {response:?}: {e}"));
        assert_eq!(
            v.get("status").and_then(Value::as_str),
            Some("error"),
            "{line} -> {response}"
        );
    }
}

#[test]
fn invalid_utf8_lines_get_an_error_response_and_the_stream_continues() {
    let mut input: Vec<u8> = Vec::new();
    input.extend_from_slice(b"\xff\xfe\x80bad\n");
    input.extend_from_slice(b"{\"id\":2,\"dims\":[4,4],\"nodes\":4,\"want_mapping\":false}\n");
    let lines = assert_one_parseable_response_per_line(&input, 2);
    assert!(lines[0].contains("not valid UTF-8"), "{}", lines[0]);
    assert!(lines[1].contains("\"status\":\"ok\""), "{}", lines[1]);
}

#[test]
fn overlong_lines_are_discarded_without_ballooning_memory() {
    // a line just over the limit, then a healthy request
    let mut input: Vec<u8> = Vec::with_capacity(MAX_LINE_BYTES + 64);
    input.extend_from_slice(b"{\"dims\":[");
    input.resize(MAX_LINE_BYTES + 1, b'1');
    input.push(b'\n');
    input.extend_from_slice(b"{\"id\":2,\"dims\":[4,4],\"nodes\":4,\"want_mapping\":false}\n");
    let lines = assert_one_parseable_response_per_line(&input, 2);
    assert!(lines[0].contains("exceeds"), "{}", lines[0]);
    assert!(lines[1].contains("\"status\":\"ok\""), "{}", lines[1]);
}

#[test]
fn hostile_compact_strings_are_rejected_by_the_decoder() {
    use stencil_serve::json::decode_nodes_compact;
    // a 12-byte string cannot be allowed to declare 2^60 entries
    for hostile in ["/////////w==", "gICAgICAgICAgAE=", "AAAA", "!!!!"] {
        assert!(decode_nodes_compact(hostile).is_err(), "{hostile}");
    }
    const _: () = assert!(stencil_serve::json::MAX_COMPACT_ENTRIES <= 1 << 28);
}

#[test]
fn a_flood_of_blank_and_comment_free_lines_is_cheap() {
    // 10k empty lines: no responses, no panic (bounded by the line loop)
    let input = "\n".repeat(10_000);
    let s = service();
    let mut out = Vec::new();
    serve_io(&s, input.as_bytes(), &mut out).unwrap();
    assert!(out.is_empty());
}
