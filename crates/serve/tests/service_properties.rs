//! Integration tests for the caching mapping service:
//!
//! * property test: requests that are equal up to a dimension permutation
//!   (and stencil offset order) hit the same canonical cache entry,
//! * property test: the compact node-table encoding decodes to exactly the
//!   verbose table, and `new_rank_of` point answers read the same entries,
//! * property test: reopening a persisted service reproduces the exact
//!   per-shard LRU contents and recency order (oracle: the pre-shutdown
//!   shard dumps),
//! * LRU eviction ordering under concurrent access (per-shard determinism),
//! * byte-identical responses across real `RAYON_NUM_THREADS` settings,
//!   verified via subprocesses like the engine determinism tests.

use proptest::prelude::*;
use stencil_serve::json::{decode_nodes_compact, Value};
use stencil_serve::service::{MappingService, ServiceConfig};
use stencil_serve::{EvictionPolicy, ShardedLru};

/// Builds the request line for dims permuted by `perm` (stencil given as
/// explicit offsets permuted the same way, so the request is equivalent).
fn permuted_request_line(
    dims: &[usize],
    offsets: &[Vec<i64>],
    perm: &[usize],
    algorithm: &str,
) -> String {
    let p_dims: Vec<String> = perm.iter().map(|&i| dims[i].to_string()).collect();
    let p_offsets: Vec<String> = offsets
        .iter()
        .map(|o| {
            let xs: Vec<String> = perm.iter().map(|&i| o[i].to_string()).collect();
            format!("[{}]", xs.join(","))
        })
        .collect();
    format!(
        r#"{{"dims":[{}],"stencil":[{}],"nodes":2,"algorithm":"{algorithm}","want_mapping":false}}"#,
        p_dims.join(","),
        p_offsets.join(",")
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The satellite property: permuted-but-equivalent requests hit the same
    /// cache entry — the cache never grows past one entry, the second
    /// request reports `cached: true`, and both report identical costs.
    #[test]
    fn permuted_equivalent_requests_hit_the_same_cache_entry(
        d0 in 2usize..7,
        d1 in 2usize..7,
        d2 in 1usize..5,
        stencil_choice in 0u8..3,
        shuffle in 0usize..6,
        alg in 0u8..3,
    ) {
        let p = d0 * d1 * d2;
        if !p.is_multiple_of(2) {
            return Ok(());
        }
        let dims = [d0, d1, d2];
        let stencil = match stencil_choice % 3 {
            0 => stencil_grid::Stencil::nearest_neighbor(3),
            1 => stencil_grid::Stencil::nearest_neighbor_with_hops(3),
            _ => stencil_grid::Stencil::component(3),
        };
        let offsets: Vec<Vec<i64>> = stencil.offsets().to_vec();
        let algorithm = ["hyperplane", "kdtree", "stencil_strips"][(alg % 3) as usize];
        const PERMS: [[usize; 3]; 6] = [
            [0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0],
        ];
        let perm = PERMS[shuffle % 6];

        let service = MappingService::new(&ServiceConfig::default());
        let identity = permuted_request_line(&dims, &offsets, &[0, 1, 2], algorithm);
        let permuted = permuted_request_line(&dims, &offsets, &perm, algorithm);
        let first = Value::parse(&service.handle_line(&identity)).unwrap();
        let second = Value::parse(&service.handle_line(&permuted)).unwrap();
        prop_assert_eq!(first.get("status").and_then(Value::as_str), Some("ok"));
        prop_assert_eq!(second.get("status").and_then(Value::as_str), Some("ok"));
        prop_assert_eq!(second.get("cached").and_then(Value::as_bool), Some(true),
            "permuted request must be served from the cache");
        prop_assert_eq!(service.cache_stats().len, 1,
            "equivalent requests must share one entry");
        prop_assert_eq!(first.get("j_sum"), second.get("j_sum"));
        prop_assert_eq!(first.get("j_max"), second.get("j_max"));
    }

    /// Compact-encoding roundtrip: for arbitrary mappings (dims shape,
    /// stencil, algorithm, permuted orientation), decoding the compact
    /// response gives exactly the verbose response's node table, and
    /// `new_rank_of` point answers equal the table's entries at the queried
    /// positions.
    #[test]
    fn compact_and_point_answers_match_the_verbose_table(
        d0 in 2usize..7,
        d1 in 2usize..7,
        d2 in 1usize..5,
        stencil_choice in 0u8..3,
        shuffle in 0usize..6,
        alg in 0u8..4,
        rank_picks in proptest::collection::vec(0usize..1000, 1..6),
    ) {
        let p = d0 * d1 * d2;
        if !p.is_multiple_of(2) {
            return Ok(());
        }
        let dims = [d0, d1, d2];
        let stencil = match stencil_choice % 3 {
            0 => stencil_grid::Stencil::nearest_neighbor(3),
            1 => stencil_grid::Stencil::nearest_neighbor_with_hops(3),
            _ => stencil_grid::Stencil::component(3),
        };
        let offsets: Vec<Vec<i64>> = stencil.offsets().to_vec();
        let algorithm = ["hyperplane", "kdtree", "stencil_strips", "blocked"][(alg % 4) as usize];
        const PERMS: [[usize; 3]; 6] = [
            [0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0],
        ];
        let perm = PERMS[shuffle % 6];
        let service = MappingService::new(&ServiceConfig::default());

        // the same (possibly permuted) request in all three response forms
        let base = permuted_request_line(&dims, &offsets, &perm, algorithm);
        let verbose = base.replace(",\"want_mapping\":false", "");
        let compact = base.replace(
            ",\"want_mapping\":false",
            ",\"encoding\":\"compact\"",
        );
        let ranks: Vec<usize> = rank_picks.iter().map(|&r| r % p).collect();
        let ranks_json: Vec<String> = ranks.iter().map(|r| r.to_string()).collect();
        let points = base.replace(
            ",\"want_mapping\":false",
            &format!(",\"query\":\"new_rank_of\",\"ranks\":[{}]", ranks_json.join(",")),
        );

        let vv = Value::parse(&service.handle_line(&verbose)).unwrap();
        prop_assert_eq!(vv.get("status").and_then(Value::as_str), Some("ok"));
        let table: Vec<u32> = vv.get("nodes").and_then(Value::as_arr).unwrap()
            .iter().map(|x| x.as_usize().unwrap() as u32).collect();
        prop_assert_eq!(table.len(), p);

        let vc = Value::parse(&service.handle_line(&compact)).unwrap();
        prop_assert_eq!(vc.get("encoding").and_then(Value::as_str), Some("compact"));
        let decoded = decode_nodes_compact(
            vc.get("nodes").and_then(Value::as_str).unwrap()).unwrap();
        prop_assert_eq!(&decoded, &table, "compact != verbose");
        prop_assert_eq!(vc.get("j_sum"), vv.get("j_sum"));

        let vq = Value::parse(&service.handle_line(&points)).unwrap();
        prop_assert_eq!(vq.get("status").and_then(Value::as_str), Some("ok"));
        let answers: Vec<u32> = vq.get("nodes").and_then(Value::as_arr).unwrap()
            .iter().map(|x| x.as_usize().unwrap() as u32).collect();
        prop_assert_eq!(answers.len(), ranks.len());
        for (i, &r) in ranks.iter().enumerate() {
            prop_assert_eq!(answers[i], table[r],
                "new_rank_of({}) disagrees with the table", r);
        }
    }

    /// Persistence reload oracle: after an arbitrary request sequence (with
    /// a small capacity so evictions and touches matter), reopening the
    /// service from its log reproduces the exact per-shard cache contents
    /// and recency order that were resident before shutdown.
    #[test]
    fn persistence_reload_reproduces_per_shard_lru_contents(
        picks in proptest::collection::vec(0usize..10, 1..24),
        capacity in 2usize..7,
        case_tag in 0u64..1_000_000,
    ) {
        let dir = std::env::temp_dir().join("stencil-serve-proptest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "reload-{}-{case_tag}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let cfg = ServiceConfig {
            cache_capacity: capacity,
            cache_shards: 2,
            persist_path: Some(path.clone()),
            ..ServiceConfig::default()
        };
        // a pool of distinct cheap instances; repeats become hits (touches)
        let universe: Vec<String> = (0..10).map(|i| {
            let nodes = 2 + i;
            format!(r#"{{"dims":[{nodes},4],"nodes":{nodes},"want_mapping":false}}"#)
        }).collect();
        let before: Vec<Vec<_>>;
        {
            let s = MappingService::open(&cfg).unwrap();
            for &pick in &picks {
                let out = s.handle_line(&universe[pick]);
                prop_assert!(out.contains("\"status\":\"ok\""), "{}", out);
            }
            before = (0..s.cache_num_shards())
                .map(|sh| s.cache_shard_entries_lru_first(sh))
                .collect();
        }
        let s = MappingService::open(&cfg).unwrap();
        for (shard, expected) in before.iter().enumerate() {
            let after = s.cache_shard_entries_lru_first(shard);
            prop_assert_eq!(after.len(), expected.len(), "shard {} size", shard);
            for (a, e) in after.iter().zip(expected) {
                prop_assert_eq!(&a.0, &e.0, "shard {} key order", shard);
                prop_assert_eq!(&*a.1, &*e.1, "shard {} entry payload", shard);
            }
        }
        // and the reloaded entries actually serve: a repeat of the last
        // request is a hit that recomputes nothing
        let misses_before = s.cache_stats().misses;
        let out = s.handle_line(&universe[*picks.last().unwrap()]);
        prop_assert!(out.contains("\"cached\":true"), "{}", out);
        prop_assert_eq!(s.cache_stats().misses, misses_before);
        let _ = std::fs::remove_file(&path);
    }
}

/// Concurrent traffic against a persisted service, then a reload: the log's
/// per-shard record order is pinned to the shard's operation order (the
/// service holds a per-shard persist lock around each `(cache op, record)`
/// pair), so the reloaded per-shard contents and recency must equal the
/// pre-shutdown state no matter how the worker threads interleaved.
#[test]
fn persisted_reload_matches_under_concurrent_traffic() {
    let dir = std::env::temp_dir().join("stencil-serve-proptest");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("concurrent-reload-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cfg = ServiceConfig {
        cache_capacity: 8,
        cache_shards: 2,
        persist_path: Some(path.clone()),
        ..ServiceConfig::default()
    };
    let before: Vec<Vec<_>>;
    {
        let s = MappingService::open(&cfg).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..60usize {
                        // overlapping key universe across threads: plenty of
                        // same-shard contention, hits and evictions
                        let nodes = 2 + (t + i) % 8;
                        let line = format!(
                            r#"{{"dims":[{nodes},4],"nodes":{nodes},"want_mapping":false}}"#
                        );
                        let out = s.handle_line(&line);
                        assert!(out.contains("\"status\":\"ok\""), "{out}");
                    }
                });
            }
        });
        before = (0..s.cache_num_shards())
            .map(|sh| s.cache_shard_entries_lru_first(sh))
            .collect();
    }
    let s = MappingService::open(&cfg).unwrap();
    for (shard, expected) in before.iter().enumerate() {
        let after = s.cache_shard_entries_lru_first(shard);
        assert_eq!(
            after.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            expected.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
            "shard {shard} diverged after a concurrent-traffic reload"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// A sequential model of LRU used as the oracle for the concurrent test.
struct ModelLru {
    cap: usize,
    /// Most recently used first.
    entries: Vec<(u64, u64)>,
}

impl ModelLru {
    fn get(&mut self, k: u64) -> Option<u64> {
        let pos = self.entries.iter().position(|&(key, _)| key == k)?;
        let e = self.entries.remove(pos);
        self.entries.insert(0, e);
        Some(e.1)
    }
    fn insert(&mut self, k: u64, v: u64) {
        if let Some(pos) = self.entries.iter().position(|&(key, _)| key == k) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.cap {
            self.entries.pop();
        }
        self.entries.insert(0, (k, v));
    }
}

/// LRU eviction ordering under concurrent access: each thread owns one
/// shard (keys are pre-filtered by `shard_of`), hammers it with a
/// deterministic mixed get/insert workload, and checks every observation
/// against the sequential model.  Shards are independent, so per-thread
/// behaviour must be exactly sequential-LRU even while all threads run
/// concurrently; afterwards the shard's exact MRU order must match the
/// model's.
#[test]
fn lru_eviction_ordering_is_sequential_per_shard_under_concurrency() {
    const SHARDS: usize = 4;
    const PER_SHARD_CAP: usize = 4;
    let cache: ShardedLru<u64, u64> = ShardedLru::new(SHARDS * PER_SHARD_CAP, SHARDS);
    assert_eq!(cache.num_shards(), SHARDS);

    // partition a key universe by shard
    let mut keys_by_shard: Vec<Vec<u64>> = vec![Vec::new(); SHARDS];
    let mut k = 0u64;
    while keys_by_shard.iter().any(|ks| ks.len() < 16) {
        let s = cache.shard_of(&k);
        if keys_by_shard[s].len() < 16 {
            keys_by_shard[s].push(k);
        }
        k += 1;
    }

    std::thread::scope(|scope| {
        for (shard, keys) in keys_by_shard.iter().enumerate() {
            let cache = &cache;
            scope.spawn(move || {
                let mut model = ModelLru {
                    cap: PER_SHARD_CAP,
                    entries: Vec::new(),
                };
                // deterministic mixed workload: xorshift-style index stream
                let mut state = 0x9E37_79B9u64.wrapping_mul(shard as u64 + 1) | 1;
                for step in 0..4000u64 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let key = keys[(state % 16) as usize];
                    if state.is_multiple_of(3) {
                        let value = key * 1000 + step;
                        cache.insert(key, value);
                        model.insert(key, value);
                    } else {
                        assert_eq!(
                            cache.get(&key),
                            model.get(key),
                            "shard {shard} step {step}: cache diverged from sequential LRU"
                        );
                    }
                }
                // the final recency order of the shard matches the model exactly
                let expected: Vec<u64> = model.entries.iter().map(|&(k, _)| k).collect();
                assert_eq!(
                    cache.shard_keys_mru_first(shard),
                    expected,
                    "shard {shard}: MRU order diverged"
                );
            });
        }
    });
    assert!(cache.len() <= SHARDS * PER_SHARD_CAP);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GDSF with uniform costs is *exactly* per-shard LRU: for arbitrary
    /// mixed get/insert sequences, every observation and the final recency
    /// order match the sequential LRU model.  This is the property that lets
    /// `--eviction gdsf` share the LRU code path, goldens, and persistence
    /// format — the policies only diverge when costs differ.
    #[test]
    fn gdsf_with_uniform_costs_matches_the_lru_oracle(
        ops in proptest::collection::vec(0u64..48_000, 1..120),
        cap in 1usize..6,
    ) {
        let cache: ShardedLru<u64, u64> =
            ShardedLru::with_policy(cap, 1, EvictionPolicy::Gdsf);
        let mut model = ModelLru { cap, entries: Vec::new() };
        for (step, &encoded) in ops.iter().enumerate() {
            // decode (key, op-kind, value) from one draw; the vendored
            // proptest has no tuple strategies
            let key = encoded % 12;
            let op = (encoded / 12) % 2;
            let val = encoded / 24;
            if op == 0 {
                cache.insert_with_cost(key, val, 1);
                model.insert(key, val);
            } else {
                prop_assert_eq!(
                    cache.get(&key),
                    model.get(key),
                    "step {}: uniform-cost GDSF diverged from LRU",
                    step
                );
            }
            prop_assert_eq!(
                cache.shard_keys_mru_first(0),
                model.entries.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
                "step {}: recency order diverged",
                step
            );
        }
    }
}

/// Replays a mixed request batch (singles, batches, errors, fallbacks,
/// permuted repeats) and fingerprints the full response transcript.  Child
/// processes re-run this under different `RAYON_NUM_THREADS`; all
/// transcripts must be byte-identical (the vendored rayon reads the
/// variable once per process, hence subprocesses).
#[test]
fn responses_identical_across_thread_counts() {
    const CHILD_VAR: &str = "STENCIL_SERVE_DETERMINISM_CHILD";
    let transcript = || -> String {
        let service = MappingService::new(&ServiceConfig::default());
        let lines = [
            r#"{"id":1,"dims":[16,12],"nodes":8,"algorithm":"hyperplane"}"#,
            r#"{"id":2,"dims":[12,16],"nodes":8,"algorithm":"hyperplane"}"#,
            r#"{"id":3,"dims":[16,12],"nodes":8,"algorithm":"viem","seed":5}"#,
            r#"{"id":4,"dims":[16,12],"nodes":8,"algorithm":"viem","seed":5}"#,
            r#"{"batch":[{"id":5,"dims":[10,10],"nodes":4,"algorithm":"kdtree"},
                         {"id":6,"dims":[10,10],"nodes":4,"algorithm":"kdtree"},
                         {"id":7,"dims":[10,10],"nodes":4,"algorithm":"stencil_strips"},
                         {"id":8,"dims":[3,3],"nodes":2}]}"#,
            r#"{"id":9,"dims":[16,4],"nodes":8,"algorithm":"blocked","max_jsum":100,"on_over_budget":"fallback"}"#,
            r#"{"id":10,"dims":[4,16],"nodes":8,"algorithm":"blocked","max_jsum":1}"#,
        ];
        let mut out = String::new();
        for line in lines {
            out.push_str(&service.handle_line(line));
            out.push('\n');
        }
        out
    };
    if std::env::var(CHILD_VAR).is_ok() {
        // FNV-1a over the transcript
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in transcript().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        println!("transcript:{h:016x}");
        return;
    }
    let exe = std::env::current_exe().expect("test executable path");
    let mut fingerprints = Vec::new();
    for threads in ["1", "2", "4"] {
        let out = std::process::Command::new(&exe)
            .args([
                "responses_identical_across_thread_counts",
                "--exact",
                "--nocapture",
                "--test-threads=1",
            ])
            .env(CHILD_VAR, "1")
            .env("RAYON_NUM_THREADS", threads)
            .output()
            .expect("spawning the child test process");
        assert!(
            out.status.success(),
            "child with RAYON_NUM_THREADS={threads} failed:\n{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let fp = stdout
            .lines()
            .find_map(|l| l.split("transcript:").nth(1))
            .unwrap_or_else(|| panic!("no transcript fingerprint in child output:\n{stdout}"))
            .split_whitespace()
            .next()
            .expect("fingerprint value")
            .to_string();
        fingerprints.push((threads, fp));
    }
    let (_, reference) = &fingerprints[0];
    for (threads, fp) in &fingerprints {
        assert_eq!(
            fp, reference,
            "RAYON_NUM_THREADS={threads} produced different responses"
        );
    }
}
