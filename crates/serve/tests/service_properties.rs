//! Integration tests for the caching mapping service:
//!
//! * property test: requests that are equal up to a dimension permutation
//!   (and stencil offset order) hit the same canonical cache entry,
//! * LRU eviction ordering under concurrent access (per-shard determinism),
//! * byte-identical responses across real `RAYON_NUM_THREADS` settings,
//!   verified via subprocesses like the engine determinism tests.

use proptest::prelude::*;
use stencil_serve::json::Value;
use stencil_serve::service::{MappingService, ServiceConfig};
use stencil_serve::ShardedLru;

/// Builds the request line for dims permuted by `perm` (stencil given as
/// explicit offsets permuted the same way, so the request is equivalent).
fn permuted_request_line(
    dims: &[usize],
    offsets: &[Vec<i64>],
    perm: &[usize],
    algorithm: &str,
) -> String {
    let p_dims: Vec<String> = perm.iter().map(|&i| dims[i].to_string()).collect();
    let p_offsets: Vec<String> = offsets
        .iter()
        .map(|o| {
            let xs: Vec<String> = perm.iter().map(|&i| o[i].to_string()).collect();
            format!("[{}]", xs.join(","))
        })
        .collect();
    format!(
        r#"{{"dims":[{}],"stencil":[{}],"nodes":2,"algorithm":"{algorithm}","want_mapping":false}}"#,
        p_dims.join(","),
        p_offsets.join(",")
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The satellite property: permuted-but-equivalent requests hit the same
    /// cache entry — the cache never grows past one entry, the second
    /// request reports `cached: true`, and both report identical costs.
    #[test]
    fn permuted_equivalent_requests_hit_the_same_cache_entry(
        d0 in 2usize..7,
        d1 in 2usize..7,
        d2 in 1usize..5,
        stencil_choice in 0u8..3,
        shuffle in 0usize..6,
        alg in 0u8..3,
    ) {
        let p = d0 * d1 * d2;
        if !p.is_multiple_of(2) {
            return Ok(());
        }
        let dims = [d0, d1, d2];
        let stencil = match stencil_choice % 3 {
            0 => stencil_grid::Stencil::nearest_neighbor(3),
            1 => stencil_grid::Stencil::nearest_neighbor_with_hops(3),
            _ => stencil_grid::Stencil::component(3),
        };
        let offsets: Vec<Vec<i64>> = stencil.offsets().to_vec();
        let algorithm = ["hyperplane", "kdtree", "stencil_strips"][(alg % 3) as usize];
        const PERMS: [[usize; 3]; 6] = [
            [0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0],
        ];
        let perm = PERMS[shuffle % 6];

        let service = MappingService::new(&ServiceConfig::default());
        let identity = permuted_request_line(&dims, &offsets, &[0, 1, 2], algorithm);
        let permuted = permuted_request_line(&dims, &offsets, &perm, algorithm);
        let first = Value::parse(&service.handle_line(&identity)).unwrap();
        let second = Value::parse(&service.handle_line(&permuted)).unwrap();
        prop_assert_eq!(first.get("status").and_then(Value::as_str), Some("ok"));
        prop_assert_eq!(second.get("status").and_then(Value::as_str), Some("ok"));
        prop_assert_eq!(second.get("cached").and_then(Value::as_bool), Some(true),
            "permuted request must be served from the cache");
        prop_assert_eq!(service.cache_stats().len, 1,
            "equivalent requests must share one entry");
        prop_assert_eq!(first.get("j_sum"), second.get("j_sum"));
        prop_assert_eq!(first.get("j_max"), second.get("j_max"));
    }
}

/// A sequential model of LRU used as the oracle for the concurrent test.
struct ModelLru {
    cap: usize,
    /// Most recently used first.
    entries: Vec<(u64, u64)>,
}

impl ModelLru {
    fn get(&mut self, k: u64) -> Option<u64> {
        let pos = self.entries.iter().position(|&(key, _)| key == k)?;
        let e = self.entries.remove(pos);
        self.entries.insert(0, e);
        Some(e.1)
    }
    fn insert(&mut self, k: u64, v: u64) {
        if let Some(pos) = self.entries.iter().position(|&(key, _)| key == k) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.cap {
            self.entries.pop();
        }
        self.entries.insert(0, (k, v));
    }
}

/// LRU eviction ordering under concurrent access: each thread owns one
/// shard (keys are pre-filtered by `shard_of`), hammers it with a
/// deterministic mixed get/insert workload, and checks every observation
/// against the sequential model.  Shards are independent, so per-thread
/// behaviour must be exactly sequential-LRU even while all threads run
/// concurrently; afterwards the shard's exact MRU order must match the
/// model's.
#[test]
fn lru_eviction_ordering_is_sequential_per_shard_under_concurrency() {
    const SHARDS: usize = 4;
    const PER_SHARD_CAP: usize = 4;
    let cache: ShardedLru<u64, u64> = ShardedLru::new(SHARDS * PER_SHARD_CAP, SHARDS);
    assert_eq!(cache.num_shards(), SHARDS);

    // partition a key universe by shard
    let mut keys_by_shard: Vec<Vec<u64>> = vec![Vec::new(); SHARDS];
    let mut k = 0u64;
    while keys_by_shard.iter().any(|ks| ks.len() < 16) {
        let s = cache.shard_of(&k);
        if keys_by_shard[s].len() < 16 {
            keys_by_shard[s].push(k);
        }
        k += 1;
    }

    std::thread::scope(|scope| {
        for (shard, keys) in keys_by_shard.iter().enumerate() {
            let cache = &cache;
            scope.spawn(move || {
                let mut model = ModelLru {
                    cap: PER_SHARD_CAP,
                    entries: Vec::new(),
                };
                // deterministic mixed workload: xorshift-style index stream
                let mut state = 0x9E37_79B9u64.wrapping_mul(shard as u64 + 1) | 1;
                for step in 0..4000u64 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let key = keys[(state % 16) as usize];
                    if state.is_multiple_of(3) {
                        let value = key * 1000 + step;
                        cache.insert(key, value);
                        model.insert(key, value);
                    } else {
                        assert_eq!(
                            cache.get(&key),
                            model.get(key),
                            "shard {shard} step {step}: cache diverged from sequential LRU"
                        );
                    }
                }
                // the final recency order of the shard matches the model exactly
                let expected: Vec<u64> = model.entries.iter().map(|&(k, _)| k).collect();
                assert_eq!(
                    cache.shard_keys_mru_first(shard),
                    expected,
                    "shard {shard}: MRU order diverged"
                );
            });
        }
    });
    assert!(cache.len() <= SHARDS * PER_SHARD_CAP);
}

/// Replays a mixed request batch (singles, batches, errors, fallbacks,
/// permuted repeats) and fingerprints the full response transcript.  Child
/// processes re-run this under different `RAYON_NUM_THREADS`; all
/// transcripts must be byte-identical (the vendored rayon reads the
/// variable once per process, hence subprocesses).
#[test]
fn responses_identical_across_thread_counts() {
    const CHILD_VAR: &str = "STENCIL_SERVE_DETERMINISM_CHILD";
    let transcript = || -> String {
        let service = MappingService::new(&ServiceConfig::default());
        let lines = [
            r#"{"id":1,"dims":[16,12],"nodes":8,"algorithm":"hyperplane"}"#,
            r#"{"id":2,"dims":[12,16],"nodes":8,"algorithm":"hyperplane"}"#,
            r#"{"id":3,"dims":[16,12],"nodes":8,"algorithm":"viem","seed":5}"#,
            r#"{"id":4,"dims":[16,12],"nodes":8,"algorithm":"viem","seed":5}"#,
            r#"{"batch":[{"id":5,"dims":[10,10],"nodes":4,"algorithm":"kdtree"},
                         {"id":6,"dims":[10,10],"nodes":4,"algorithm":"kdtree"},
                         {"id":7,"dims":[10,10],"nodes":4,"algorithm":"stencil_strips"},
                         {"id":8,"dims":[3,3],"nodes":2}]}"#,
            r#"{"id":9,"dims":[16,4],"nodes":8,"algorithm":"blocked","max_jsum":100,"on_over_budget":"fallback"}"#,
            r#"{"id":10,"dims":[4,16],"nodes":8,"algorithm":"blocked","max_jsum":1}"#,
        ];
        let mut out = String::new();
        for line in lines {
            out.push_str(&service.handle_line(line));
            out.push('\n');
        }
        out
    };
    if std::env::var(CHILD_VAR).is_ok() {
        // FNV-1a over the transcript
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in transcript().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        println!("transcript:{h:016x}");
        return;
    }
    let exe = std::env::current_exe().expect("test executable path");
    let mut fingerprints = Vec::new();
    for threads in ["1", "2", "4"] {
        let out = std::process::Command::new(&exe)
            .args([
                "responses_identical_across_thread_counts",
                "--exact",
                "--nocapture",
                "--test-threads=1",
            ])
            .env(CHILD_VAR, "1")
            .env("RAYON_NUM_THREADS", threads)
            .output()
            .expect("spawning the child test process");
        assert!(
            out.status.success(),
            "child with RAYON_NUM_THREADS={threads} failed:\n{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        let fp = stdout
            .lines()
            .find_map(|l| l.split("transcript:").nth(1))
            .unwrap_or_else(|| panic!("no transcript fingerprint in child output:\n{stdout}"))
            .split_whitespace()
            .next()
            .expect("fingerprint value")
            .to_string();
        fingerprints.push((threads, fp));
    }
    let (_, reference) = &fingerprints[0];
    for (threads, fp) in &fingerprints {
        assert_eq!(
            fp, reference,
            "RAYON_NUM_THREADS={threads} produced different responses"
        );
    }
}
