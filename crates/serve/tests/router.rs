//! Router integration suite: the consistent-hash router in front of real
//! backend processes.
//!
//! * **Placement purity** (proptest): the backend a request routes to is a
//!   pure function of its canonical cache key and the backend set — every
//!   dimension permutation of a request, and every change to non-key
//!   fields (`id`, `want_mapping`, `encoding`), lands on the same shard.
//! * **Golden byte-identity**: the checked-in transcript request file is
//!   replayed against a single `stencil-serve` process and against a
//!   router fronting two backend processes; the two response transcripts
//!   must match **byte-exactly**, under `RAYON_NUM_THREADS ∈ {1, 4}`.
//! * **Backend loss**: SIGKILL one backend under traffic — requests owned
//!   by the dead shard answer with a well-formed
//!   `{"error":"backend unavailable"}` line (no hang, no torn line), the
//!   other shard keeps serving, and after a restart on the same port the
//!   dead shard rejoins without touching the router.
//! * **Warm handoff**: `--handoff` pulls a compacted persistence log from
//!   a live backend and a new backend started on that file answers the
//!   donor's cached entries as hits.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use stencil_serve::json::Value;
use stencil_serve::router::{Router, BACKEND_UNAVAILABLE, DEFAULT_ROUTE_TIMEOUT};

/// A `stencil-serve` child process plus the address it bound.  Killed on
/// drop so a failing assertion cannot leak servers.
struct Server {
    child: Child,
    addr: String,
    drain: Option<std::thread::JoinHandle<String>>,
}

impl Server {
    /// Spawns the real binary with `args` (plus `--listen addr`), waits for
    /// its "listening on" banner, and drains the rest of stderr in the
    /// background so the child can never block on a full pipe.
    fn spawn(listen: &str, args: &[&str], envs: &[(&str, &str)]) -> Server {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_stencil-serve"));
        cmd.arg("--listen")
            .arg(listen)
            .args(args)
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawning stencil-serve");
        let mut stderr = BufReader::new(child.stderr.take().unwrap());
        let addr = loop {
            let mut line = String::new();
            assert_ne!(
                stderr.read_line(&mut line).unwrap(),
                0,
                "server exited before printing its address"
            );
            if let Some(rest) = line.trim_end().split("listening on ").nth(1) {
                break rest.to_string();
            }
        };
        let drain = std::thread::spawn(move || {
            let mut rest = String::new();
            let _ = stderr.read_to_string(&mut rest);
            rest
        });
        Server {
            child,
            addr,
            drain: Some(drain),
        }
    }

    /// SIGKILLs the process — the `kill -9` half of the backend-loss test.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(d) = self.drain.take() {
            let _ = d.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.kill9();
    }
}

/// One request line in, one response line out, over an existing connection.
fn ask(conn: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    conn.write_all(line.as_bytes()).unwrap();
    conn.write_all(b"\n").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(
        reply.ends_with('\n'),
        "torn response line (connection closed mid-line?): {reply:?}"
    );
    reply.trim_end().to_string()
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let reader = BufReader::new(conn.try_clone().unwrap());
    (conn, reader)
}

/// The golden request lines: every non-comment line of the transcript
/// file.  `#RESTART` is a persistence-restart marker for the transcript
/// suite; here both sides run restart-free, and the post-marker lines
/// repeat earlier requests, so they exercise the routed warm-hit path.
fn golden_requests() -> Vec<String> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data/transcript_requests.txt");
    std::fs::read_to_string(&path)
        .unwrap()
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(str::to_string)
        .collect()
}

/// Replays `requests` one at a time against `addr`, returning the response
/// lines in order.
fn replay(addr: &str, requests: &[String]) -> Vec<String> {
    let (mut conn, mut reader) = connect(addr);
    requests
        .iter()
        .map(|r| ask(&mut conn, &mut reader, r))
        .collect()
}

/// Reserves a free localhost port: bind, read it back, release.  Racy in
/// principle, but the window is tiny and the backend-loss test needs a
/// *fixed* port so the killed backend can be reborn at the same address.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

// ---------------------------------------------------------------------------
// placement purity
// ---------------------------------------------------------------------------

/// Backend specs that resolve (IP literals) without anything listening:
/// `route_index` never dials.
fn offline_specs(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("127.0.0.1:{}", 19_000 + i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Routing is a pure function of the canonical key and the backend
    /// set: any rotation of the dimension vector, and any change to
    /// non-key fields, routes to the same backend; the same request on
    /// the same ring always answers the same index.
    #[test]
    fn route_index_is_pure_in_the_canonical_key(
        dims in proptest::collection::vec(2usize..10, 2..4),
        rot in 0usize..4,
        nodes in 2usize..6,
        id in 0u64..1000,
        want_mapping in proptest::bool::ANY,
    ) {
        // keep the request valid (p divisible by nodes): invalid requests
        // deliberately route by raw bytes, not by canonical key
        let mut dims = dims;
        dims[0] *= nodes;
        let router = Router::new(&offline_specs(5), DEFAULT_ROUTE_TIMEOUT).unwrap();
        let fmt = |d: &[usize], extra: &str| {
            let dims = d.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(",");
            format!(r#"{{"dims":[{dims}],"nodes":{nodes}{extra}}}"#)
        };
        let base = Value::parse(&fmt(&dims, "")).unwrap();
        let home = router.route_index(&base);
        prop_assert_eq!(router.route_index(&base), home, "lookup must be pure");

        let mut rotated = dims.clone();
        rotated.rotate_left(rot % dims.len());
        let permuted = Value::parse(&fmt(&rotated, "")).unwrap();
        prop_assert_eq!(
            router.route_index(&permuted), home,
            "a dimension permutation changed the shard: {:?} vs {:?}", dims, rotated
        );

        let noisy = Value::parse(&fmt(
            &dims,
            &format!(r#","id":{id},"want_mapping":{want_mapping},"encoding":"compact""#),
        )).unwrap();
        prop_assert_eq!(
            router.route_index(&noisy), home,
            "a non-key field changed the shard"
        );
    }
}

// ---------------------------------------------------------------------------
// golden byte-identity through real processes
// ---------------------------------------------------------------------------

/// The full golden request file answered through a router fronting two
/// backends must be byte-identical to a single process answering it
/// directly — for 1 and 4 rayon threads on the serving processes.
#[test]
fn routed_golden_transcript_matches_single_process() {
    let requests = golden_requests();
    for threads in ["1", "4"] {
        let env = [("RAYON_NUM_THREADS", threads)];
        let single = Server::spawn("127.0.0.1:0", &[], &env);
        let b1 = Server::spawn("127.0.0.1:0", &[], &env);
        let b2 = Server::spawn("127.0.0.1:0", &[], &env);
        let route = format!("{},{}", b1.addr, b2.addr);
        let router = Server::spawn("127.0.0.1:0", &["--route", &route], &env);

        let direct = replay(&single.addr, &requests);
        let routed = replay(&router.addr, &requests);
        assert_eq!(direct.len(), routed.len());
        for (i, (d, r)) in direct.iter().zip(&routed).enumerate() {
            assert_eq!(
                d,
                r,
                "response {} diverged between single process and router \
                 (RAYON_NUM_THREADS={threads}): request {:?}",
                i + 1,
                requests[i]
            );
        }
    }
}

// ---------------------------------------------------------------------------
// backend loss and rejoin
// ---------------------------------------------------------------------------

/// Finds one request per backend: dims `[n,4]`, n grown until the ring
/// places the request on the wanted index.
fn request_owned_by(router: &Router, want: usize) -> String {
    for n in 2..200usize {
        let line = format!(r#"{{"dims":[{n},4],"nodes":4,"want_mapping":false}}"#);
        if router.route_index(&Value::parse(&line).unwrap()) == want {
            return line;
        }
    }
    panic!("no probe request routes to backend {want}");
}

#[test]
fn killed_backend_answers_error_lines_and_rejoins_after_restart() {
    let (p1, p2) = (free_port(), free_port());
    let (a1, a2) = (format!("127.0.0.1:{p1}"), format!("127.0.0.1:{p2}"));
    let mut b1 = Server::spawn(&a1, &[], &[]);
    let _b2 = Server::spawn(&a2, &[], &[]);
    let route = format!("{a1},{a2}");
    let router_proc = Server::spawn("127.0.0.1:0", &["--route", &route], &[]);

    // the same specs in-process tell us which shard owns which probe
    let oracle = Router::new(&[a1.clone(), a2.clone()], DEFAULT_ROUTE_TIMEOUT).unwrap();
    let on_dead = request_owned_by(&oracle, 0);
    let on_live = request_owned_by(&oracle, 1);

    let (mut conn, mut reader) = connect(&router_proc.addr);
    assert!(ask(&mut conn, &mut reader, &on_dead).contains("\"status\":\"ok\""));
    assert!(ask(&mut conn, &mut reader, &on_live).contains("\"status\":\"ok\""));

    b1.kill9();

    // every response while the shard is dead must be a well-formed JSON
    // line: either a normal answer (live shard) or the unavailable error
    let mut saw_unavailable = false;
    for _ in 0..6 {
        let reply = ask(&mut conn, &mut reader, &on_dead);
        let parsed = Value::parse(&reply)
            .unwrap_or_else(|e| panic!("torn or malformed error line {reply:?}: {e}"));
        let err = parsed.get("error").and_then(Value::as_str).unwrap_or("");
        assert_eq!(
            err, BACKEND_UNAVAILABLE,
            "dead shard must answer the documented error line, got {reply:?}"
        );
        saw_unavailable = true;
        // the other shard is untouched
        let live = ask(&mut conn, &mut reader, &on_live);
        assert!(live.contains("\"status\":\"ok\""), "{live}");
    }
    assert!(saw_unavailable);

    // a batch touching both shards splits cleanly: per-item error, in order
    let batch = format!(
        r#"{{"batch":[{},{}]}}"#,
        on_dead.replacen('{', r#"{"id":"dead","#, 1),
        on_live.replacen('{', r#"{"id":"live","#, 1)
    );
    let reply = ask(&mut conn, &mut reader, &batch);
    let parsed = Value::parse(&reply).expect("batch response must stay well-formed");
    let items = match parsed.get("batch") {
        Some(Value::Arr(items)) => items,
        other => panic!("expected a batch response, got {other:?}"),
    };
    assert_eq!(items.len(), 2);
    assert_eq!(
        items[0].get("error").and_then(Value::as_str),
        Some(BACKEND_UNAVAILABLE)
    );
    assert_eq!(items[1].get("status").and_then(Value::as_str), Some("ok"));

    // rebirth on the same port: the router must pick the shard back up by
    // itself once the backoff window (≤ 2s) lapses
    let _b1_again = Server::spawn(&a1, &[], &[]);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let reply = ask(&mut conn, &mut reader, &on_dead);
        if reply.contains("\"status\":\"ok\"") {
            break;
        }
        assert!(
            reply.contains(BACKEND_UNAVAILABLE),
            "only the documented error is acceptable while down: {reply}"
        );
        assert!(
            Instant::now() < deadline,
            "restarted backend never rejoined the router"
        );
        std::thread::sleep(Duration::from_millis(200));
    }
}

// ---------------------------------------------------------------------------
// warm handoff
// ---------------------------------------------------------------------------

#[test]
fn handoff_ships_a_warm_cache_image() {
    let dir = std::env::temp_dir().join(format!("stencil-router-handoff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let donor_log = dir.join("donor.log");
    let new_log = dir.join("warmed.log");
    let _ = std::fs::remove_file(&donor_log);
    let _ = std::fs::remove_file(&new_log);

    let donor = Server::spawn(
        "127.0.0.1:0",
        &["--persist", donor_log.to_str().unwrap()],
        &[],
    );
    let (mut conn, mut reader) = connect(&donor.addr);
    let warm = r#"{"dims":[16,6],"nodes":8,"want_mapping":false}"#;
    assert!(ask(&mut conn, &mut reader, warm).contains("\"cached\":false"));
    assert!(ask(&mut conn, &mut reader, r#"{"dims":[9,9],"nodes":3,"want_mapping":false}"#)
        .contains("\"status\":\"ok\""));

    // pull the donor's compacted image into a fresh log file
    let status = Command::new(env!("CARGO_BIN_EXE_stencil-serve"))
        .args([
            "--handoff",
            &donor.addr,
            "--persist",
            new_log.to_str().unwrap(),
        ])
        .status()
        .expect("running --handoff");
    assert!(status.success(), "--handoff must exit 0");

    // a brand-new backend on the shipped log answers the donor's entries warm
    let reborn = Server::spawn(
        "127.0.0.1:0",
        &["--persist", new_log.to_str().unwrap()],
        &[],
    );
    let (mut conn, mut reader) = connect(&reborn.addr);
    let reply = ask(&mut conn, &mut reader, warm);
    assert!(
        reply.contains("\"cached\":true"),
        "handed-off entry must be a warm hit: {reply}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
