//! Router integration suite: the consistent-hash router in front of real
//! backend processes.
//!
//! * **Placement purity** (proptest): the backend a request routes to is a
//!   pure function of its canonical cache key and the backend set — every
//!   dimension permutation of a request, and every change to non-key
//!   fields (`id`, `want_mapping`, `encoding`), lands on the same shard.
//! * **Golden byte-identity**: the checked-in transcript request file is
//!   replayed against a single `stencil-serve` process and against a
//!   router fronting two backend processes; the two response transcripts
//!   must match **byte-exactly**, under `RAYON_NUM_THREADS ∈ {1, 4}`.
//! * **Backend loss**: SIGKILL one backend under traffic — requests owned
//!   by the dead shard answer with a well-formed
//!   `{"error":"backend unavailable"}` line (no hang, no torn line), the
//!   other shard keeps serving, and after a restart on the same port the
//!   dead shard rejoins without touching the router.
//! * **Warm handoff**: `--handoff` pulls a compacted persistence log from
//!   a live backend and a new backend started on that file answers the
//!   donor's cached entries as hits.
//! * **Replication**: with `--replicas 2` over three backends, SIGKILLing
//!   any one backend yields zero error lines and byte-identical responses
//!   (misses were written through to every replica, reads fail over), and
//!   `{"admin":"stats"}` aggregates the fleet into one line.
//! * **Live resharding**: `{"admin":"reshard","add"/"remove":ADDR}` swaps
//!   the ring atomically after warm-handing-off exactly the moving key
//!   ranges — no key ever answers cold across a membership change.
//! * **Router crash matrix**: the router is SIGABRTed at each of its four
//!   fault points (mid-forward, mid-fan-out, mid-handoff-stream, ring
//!   prepared but unswapped); a fresh router over the same backends must
//!   recover byte-identically, and an interrupted reshard must re-run to
//!   completion.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use stencil_serve::json::Value;
use stencil_serve::router::{Router, BACKEND_UNAVAILABLE, DEFAULT_ROUTE_TIMEOUT};

/// A `stencil-serve` child process plus the address it bound.  Killed on
/// drop so a failing assertion cannot leak servers.
struct Server {
    child: Child,
    addr: String,
    drain: Option<std::thread::JoinHandle<String>>,
}

impl Server {
    /// Spawns the real binary with `args` (plus `--listen addr`), waits for
    /// its "listening on" banner, and drains the rest of stderr in the
    /// background so the child can never block on a full pipe.
    fn spawn(listen: &str, args: &[&str], envs: &[(&str, &str)]) -> Server {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_stencil-serve"));
        cmd.arg("--listen")
            .arg(listen)
            .args(args)
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawning stencil-serve");
        let mut stderr = BufReader::new(child.stderr.take().unwrap());
        let addr = loop {
            let mut line = String::new();
            assert_ne!(
                stderr.read_line(&mut line).unwrap(),
                0,
                "server exited before printing its address"
            );
            if let Some(rest) = line.trim_end().split("listening on ").nth(1) {
                break rest.to_string();
            }
        };
        let drain = std::thread::spawn(move || {
            let mut rest = String::new();
            let _ = stderr.read_to_string(&mut rest);
            rest
        });
        Server {
            child,
            addr,
            drain: Some(drain),
        }
    }

    /// SIGKILLs the process — the `kill -9` half of the backend-loss test.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(d) = self.drain.take() {
            let _ = d.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.kill9();
    }
}

/// One request line in, one response line out, over an existing connection.
fn ask(conn: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    conn.write_all(line.as_bytes()).unwrap();
    conn.write_all(b"\n").unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(
        reply.ends_with('\n'),
        "torn response line (connection closed mid-line?): {reply:?}"
    );
    reply.trim_end().to_string()
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let conn = TcpStream::connect(addr).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(conn.try_clone().unwrap());
    (conn, reader)
}

/// The golden request lines: every non-comment line of the transcript
/// file.  `#RESTART` is a persistence-restart marker for the transcript
/// suite; here both sides run restart-free, and the post-marker lines
/// repeat earlier requests, so they exercise the routed warm-hit path.
fn golden_requests() -> Vec<String> {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/transcript_requests.txt");
    std::fs::read_to_string(&path)
        .unwrap()
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(str::to_string)
        .collect()
}

/// Replays `requests` one at a time against `addr`, returning the response
/// lines in order.
fn replay(addr: &str, requests: &[String]) -> Vec<String> {
    let (mut conn, mut reader) = connect(addr);
    requests
        .iter()
        .map(|r| ask(&mut conn, &mut reader, r))
        .collect()
}

/// Reserves a free localhost port: bind, read it back, release.  Racy in
/// principle, but the window is tiny and the backend-loss test needs a
/// *fixed* port so the killed backend can be reborn at the same address.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

// ---------------------------------------------------------------------------
// placement purity
// ---------------------------------------------------------------------------

/// Backend specs that resolve (IP literals) without anything listening:
/// `route_index` never dials.
fn offline_specs(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("127.0.0.1:{}", 19_000 + i))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Routing is a pure function of the canonical key and the backend
    /// set: any rotation of the dimension vector, and any change to
    /// non-key fields, routes to the same backend; the same request on
    /// the same ring always answers the same index.
    #[test]
    fn route_index_is_pure_in_the_canonical_key(
        dims in proptest::collection::vec(2usize..10, 2..4),
        rot in 0usize..4,
        nodes in 2usize..6,
        id in 0u64..1000,
        want_mapping in proptest::bool::ANY,
    ) {
        // keep the request valid (p divisible by nodes): invalid requests
        // deliberately route by raw bytes, not by canonical key
        let mut dims = dims;
        dims[0] *= nodes;
        let router = Router::new(&offline_specs(5), 1, DEFAULT_ROUTE_TIMEOUT).unwrap();
        let fmt = |d: &[usize], extra: &str| {
            let dims = d.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(",");
            format!(r#"{{"dims":[{dims}],"nodes":{nodes}{extra}}}"#)
        };
        let base = Value::parse(&fmt(&dims, "")).unwrap();
        let home = router.route_index(&base);
        prop_assert_eq!(router.route_index(&base), home, "lookup must be pure");

        let mut rotated = dims.clone();
        rotated.rotate_left(rot % dims.len());
        let permuted = Value::parse(&fmt(&rotated, "")).unwrap();
        prop_assert_eq!(
            router.route_index(&permuted), home,
            "a dimension permutation changed the shard: {:?} vs {:?}", dims, rotated
        );

        let noisy = Value::parse(&fmt(
            &dims,
            &format!(r#","id":{id},"want_mapping":{want_mapping},"encoding":"compact""#),
        )).unwrap();
        prop_assert_eq!(
            router.route_index(&noisy), home,
            "a non-key field changed the shard"
        );
    }

    /// Replica sets: the R owners of any key are R *distinct* backends, are
    /// a pure function of the canonical key (dimension permutations and
    /// non-key fields change nothing), and growing the backend set obeys
    /// minimal movement extended to sets — every member of the new replica
    /// set is either the added backend or was already a replica.
    #[test]
    fn replica_sets_are_distinct_pure_and_minimally_moving(
        dims in proptest::collection::vec(2usize..10, 2..4),
        rot in 0usize..4,
        nodes in 2usize..6,
        id in 0u64..1000,
    ) {
        let mut dims = dims;
        dims[0] *= nodes;
        let router = Router::new(&offline_specs(5), 3, DEFAULT_ROUTE_TIMEOUT).unwrap();
        let fmt = |d: &[usize], extra: &str| {
            let dims = d.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(",");
            format!(r#"{{"dims":[{dims}],"nodes":{nodes}{extra}}}"#)
        };
        let base = Value::parse(&fmt(&dims, "")).unwrap();
        let owners = router.replica_specs(&base);
        prop_assert_eq!(owners.len(), 3, "three replicas requested");
        for (i, a) in owners.iter().enumerate() {
            for b in &owners[i + 1..] {
                prop_assert_ne!(a, b);
            }
        }
        prop_assert_eq!(
            &owners[0],
            &offline_specs(5)[router.route_index(&base)],
            "the primary replica is the single-owner lookup"
        );

        let mut rotated = dims.clone();
        rotated.rotate_left(rot % dims.len());
        let permuted = Value::parse(&fmt(&rotated, "")).unwrap();
        prop_assert_eq!(
            router.replica_specs(&permuted), owners.clone(),
            "a dimension permutation changed the replica set"
        );
        let noisy = Value::parse(&fmt(
            &dims,
            &format!(r#","id":{id},"want_mapping":true,"encoding":"compact""#),
        )).unwrap();
        prop_assert_eq!(
            router.replica_specs(&noisy), owners.clone(),
            "a non-key field changed the replica set"
        );

        // minimal movement: add a sixth backend, same replica count
        let grown = Router::new(&offline_specs(6), 3, DEFAULT_ROUTE_TIMEOUT).unwrap();
        let new_spec = &offline_specs(6)[5];
        for owner in grown.replica_specs(&base) {
            prop_assert!(
                owner == *new_spec || owners.contains(&owner),
                "growing the ring moved a replica between pre-existing \
                 backends: {} not in {:?}", owner, owners
            );
        }
    }
}

// ---------------------------------------------------------------------------
// golden byte-identity through real processes
// ---------------------------------------------------------------------------

/// The full golden request file answered through a router fronting two
/// backends must be byte-identical to a single process answering it
/// directly — for 1 and 4 rayon threads on the serving processes.
#[test]
fn routed_golden_transcript_matches_single_process() {
    let requests = golden_requests();
    for threads in ["1", "4"] {
        let env = [("RAYON_NUM_THREADS", threads)];
        let single = Server::spawn("127.0.0.1:0", &[], &env);
        let b1 = Server::spawn("127.0.0.1:0", &[], &env);
        let b2 = Server::spawn("127.0.0.1:0", &[], &env);
        let route = format!("{},{}", b1.addr, b2.addr);
        let router = Server::spawn("127.0.0.1:0", &["--route", &route], &env);

        let direct = replay(&single.addr, &requests);
        let routed = replay(&router.addr, &requests);
        assert_eq!(direct.len(), routed.len());
        for (i, (d, r)) in direct.iter().zip(&routed).enumerate() {
            assert_eq!(
                d,
                r,
                "response {} diverged between single process and router \
                 (RAYON_NUM_THREADS={threads}): request {:?}",
                i + 1,
                requests[i]
            );
        }
    }
}

// ---------------------------------------------------------------------------
// backend loss and rejoin
// ---------------------------------------------------------------------------

/// Finds one request per backend: dims `[n,4]`, n grown until the ring
/// places the request on the wanted index.
fn request_owned_by(router: &Router, want: usize) -> String {
    for n in 2..200usize {
        let line = format!(r#"{{"dims":[{n},4],"nodes":4,"want_mapping":false}}"#);
        if router.route_index(&Value::parse(&line).unwrap()) == want {
            return line;
        }
    }
    panic!("no probe request routes to backend {want}");
}

#[test]
fn killed_backend_answers_error_lines_and_rejoins_after_restart() {
    let (p1, p2) = (free_port(), free_port());
    let (a1, a2) = (format!("127.0.0.1:{p1}"), format!("127.0.0.1:{p2}"));
    let mut b1 = Server::spawn(&a1, &[], &[]);
    let _b2 = Server::spawn(&a2, &[], &[]);
    let route = format!("{a1},{a2}");
    let router_proc = Server::spawn("127.0.0.1:0", &["--route", &route], &[]);

    // the same specs in-process tell us which shard owns which probe
    let oracle = Router::new(&[a1.clone(), a2.clone()], 1, DEFAULT_ROUTE_TIMEOUT).unwrap();
    let on_dead = request_owned_by(&oracle, 0);
    let on_live = request_owned_by(&oracle, 1);

    let (mut conn, mut reader) = connect(&router_proc.addr);
    assert!(ask(&mut conn, &mut reader, &on_dead).contains("\"status\":\"ok\""));
    assert!(ask(&mut conn, &mut reader, &on_live).contains("\"status\":\"ok\""));

    b1.kill9();

    // every response while the shard is dead must be a well-formed JSON
    // line: either a normal answer (live shard) or the unavailable error
    let mut saw_unavailable = false;
    for _ in 0..6 {
        let reply = ask(&mut conn, &mut reader, &on_dead);
        let parsed = Value::parse(&reply)
            .unwrap_or_else(|e| panic!("torn or malformed error line {reply:?}: {e}"));
        let err = parsed.get("error").and_then(Value::as_str).unwrap_or("");
        assert_eq!(
            err, BACKEND_UNAVAILABLE,
            "dead shard must answer the documented error line, got {reply:?}"
        );
        saw_unavailable = true;
        // the other shard is untouched
        let live = ask(&mut conn, &mut reader, &on_live);
        assert!(live.contains("\"status\":\"ok\""), "{live}");
    }
    assert!(saw_unavailable);

    // a batch touching both shards splits cleanly: per-item error, in order
    let batch = format!(
        r#"{{"batch":[{},{}]}}"#,
        on_dead.replacen('{', r#"{"id":"dead","#, 1),
        on_live.replacen('{', r#"{"id":"live","#, 1)
    );
    let reply = ask(&mut conn, &mut reader, &batch);
    let parsed = Value::parse(&reply).expect("batch response must stay well-formed");
    let items = match parsed.get("batch") {
        Some(Value::Arr(items)) => items,
        other => panic!("expected a batch response, got {other:?}"),
    };
    assert_eq!(items.len(), 2);
    assert_eq!(
        items[0].get("error").and_then(Value::as_str),
        Some(BACKEND_UNAVAILABLE)
    );
    assert_eq!(items[1].get("status").and_then(Value::as_str), Some("ok"));

    // rebirth on the same port: the router must pick the shard back up by
    // itself once the backoff window (≤ 2s) lapses
    let _b1_again = Server::spawn(&a1, &[], &[]);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let reply = ask(&mut conn, &mut reader, &on_dead);
        if reply.contains("\"status\":\"ok\"") {
            break;
        }
        assert!(
            reply.contains(BACKEND_UNAVAILABLE),
            "only the documented error is acceptable while down: {reply}"
        );
        assert!(
            Instant::now() < deadline,
            "restarted backend never rejoined the router"
        );
        std::thread::sleep(Duration::from_millis(200));
    }
}

// ---------------------------------------------------------------------------
// warm handoff
// ---------------------------------------------------------------------------

#[test]
fn handoff_ships_a_warm_cache_image() {
    let dir = std::env::temp_dir().join(format!("stencil-router-handoff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let donor_log = dir.join("donor.log");
    let new_log = dir.join("warmed.log");
    let _ = std::fs::remove_file(&donor_log);
    let _ = std::fs::remove_file(&new_log);

    let donor = Server::spawn(
        "127.0.0.1:0",
        &["--persist", donor_log.to_str().unwrap()],
        &[],
    );
    let (mut conn, mut reader) = connect(&donor.addr);
    let warm = r#"{"dims":[16,6],"nodes":8,"want_mapping":false}"#;
    assert!(ask(&mut conn, &mut reader, warm).contains("\"cached\":false"));
    assert!(ask(
        &mut conn,
        &mut reader,
        r#"{"dims":[9,9],"nodes":3,"want_mapping":false}"#
    )
    .contains("\"status\":\"ok\""));

    // pull the donor's compacted image into a fresh log file
    let status = Command::new(env!("CARGO_BIN_EXE_stencil-serve"))
        .args([
            "--handoff",
            &donor.addr,
            "--persist",
            new_log.to_str().unwrap(),
        ])
        .status()
        .expect("running --handoff");
    assert!(status.success(), "--handoff must exit 0");

    // a brand-new backend on the shipped log answers the donor's entries warm
    let reborn = Server::spawn(
        "127.0.0.1:0",
        &["--persist", new_log.to_str().unwrap()],
        &[],
    );
    let (mut conn, mut reader) = connect(&reborn.addr);
    let reply = ask(&mut conn, &mut reader, warm);
    assert!(
        reply.contains("\"cached\":true"),
        "handed-off entry must be a warm hit: {reply}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// replicated shards: failover, stats fan-out, live resharding
// ---------------------------------------------------------------------------

/// The tentpole guarantee: with `--replicas 2` over three backends,
/// SIGKILLing any one backend under load yields **zero** error lines and a
/// transcript byte-identical to a single process.  The warm pass writes
/// every miss through to both replicas; after the kill, keys owned by the
/// dead primary fail over to their warm secondary and answer
/// `"cached":true` exactly as the single process does.
#[test]
fn replica_failover_is_invisible_and_byte_identical() {
    let requests = golden_requests();
    let single = Server::spawn("127.0.0.1:0", &[], &[]);
    let mut b1 = Server::spawn("127.0.0.1:0", &[], &[]);
    let b2 = Server::spawn("127.0.0.1:0", &[], &[]);
    let b3 = Server::spawn("127.0.0.1:0", &[], &[]);
    let route = format!("{},{},{}", b1.addr, b2.addr, b3.addr);
    let router = Server::spawn("127.0.0.1:0", &["--route", &route, "--replicas", "2"], &[]);

    // warm pass: byte-identical while everything is up
    let direct_warm = replay(&single.addr, &requests);
    let routed_warm = replay(&router.addr, &requests);
    assert_eq!(direct_warm, routed_warm, "warm pass diverged");

    b1.kill9();

    // every key is now served by its surviving replica — no error lines,
    // still byte-identical to the single process replaying the same lines
    let direct_after = replay(&single.addr, &requests);
    let routed_after = replay(&router.addr, &requests);
    for (i, (d, r)) in direct_after.iter().zip(&routed_after).enumerate() {
        assert!(
            !r.contains(BACKEND_UNAVAILABLE),
            "request {} answered an error line despite a live replica: {r}",
            i + 1
        );
        assert_eq!(
            d,
            r,
            "response {} diverged after backend loss: request {:?}",
            i + 1,
            requests[i]
        );
    }
}

/// `{"admin":"stats"}` is answered by the router itself: one line
/// aggregating every backend's cache counters and the router's own
/// up/down/backoff view — including `up:false` for a killed backend.
#[test]
fn admin_stats_fans_out_and_aggregates() {
    let mut b1 = Server::spawn("127.0.0.1:0", &[], &[]);
    let b2 = Server::spawn("127.0.0.1:0", &[], &[]);
    let b3 = Server::spawn("127.0.0.1:0", &[], &[]);
    let route = format!("{},{},{}", b1.addr, b2.addr, b3.addr);
    let router = Server::spawn("127.0.0.1:0", &["--route", &route, "--replicas", "2"], &[]);

    let (mut conn, mut reader) = connect(&router.addr);
    let miss = r#"{"dims":[20,4],"nodes":4,"want_mapping":false}"#;
    assert!(ask(&mut conn, &mut reader, miss).contains("\"cached\":false"));
    assert!(ask(&mut conn, &mut reader, miss).contains("\"cached\":true"));

    let reply = ask(&mut conn, &mut reader, r#"{"id":42,"admin":"stats"}"#);
    let v = Value::parse(&reply).expect("stats must be one well-formed line");
    assert_eq!(v.get("id").and_then(Value::as_u64), Some(42));
    assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
    assert_eq!(v.get("admin").and_then(Value::as_str), Some("stats"));
    assert_eq!(v.get("replicas").and_then(Value::as_u64), Some(2));
    assert_eq!(v.get("up").and_then(Value::as_u64), Some(3));
    // the miss was written through to both replicas: two cached copies
    assert_eq!(v.get("entries").and_then(Value::as_u64), Some(2));
    assert!(v.get("hits").and_then(Value::as_u64).unwrap_or(0) >= 1);
    let per_backend = v.get("backends").and_then(Value::as_arr).unwrap();
    assert_eq!(per_backend.len(), 3);
    assert!(per_backend
        .iter()
        .all(|b| b.get("up").and_then(Value::as_bool) == Some(true)));
    let router_stats = v.get("router").expect("router counters");
    assert!(
        router_stats
            .get("forwarded")
            .and_then(Value::as_u64)
            .unwrap_or(0)
            >= 2
    );
    assert_eq!(router_stats.get("fanouts").and_then(Value::as_u64), Some(1));

    // a killed backend shows up as down in the next aggregate
    b1.kill9();
    let reply = ask(&mut conn, &mut reader, r#"{"admin":"stats"}"#);
    let v = Value::parse(&reply).unwrap();
    assert_eq!(v.get("up").and_then(Value::as_u64), Some(2));
    let down: Vec<_> = v
        .get("backends")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .filter(|b| b.get("up").and_then(Value::as_bool) == Some(false))
        .map(|b| {
            b.get("backend")
                .and_then(Value::as_str)
                .unwrap()
                .to_string()
        })
        .collect();
    assert_eq!(down, vec![b1.addr.clone()]);
}

/// Sixteen request lines chosen against the *grown* three-backend ring so
/// that exactly eight keys will move to the added backend (ring index 2)
/// and eight stay put.  Ports are assigned dynamically, so the ring — and
/// which `dims` values move — differs per run; picking keys through an
/// in-process ring oracle keeps the moved count deterministic and
/// guarantees the handoff path actually streams something.
fn reshard_keys(specs3: &[String]) -> Vec<String> {
    let oracle = Router::new(specs3, 1, DEFAULT_ROUTE_TIMEOUT).unwrap();
    let (mut movers, mut stayers) = (0usize, 0usize);
    let mut keys = Vec::new();
    for n in 2usize.. {
        let line = format!(r#"{{"dims":[{n},4],"nodes":4,"want_mapping":false}}"#);
        let moves = oracle.route_index(&Value::parse(&line).unwrap()) == 2;
        if moves && movers < 8 {
            movers += 1;
        } else if !moves && stayers < 8 {
            stayers += 1;
        } else if movers == 8 && stayers == 8 {
            break;
        } else {
            continue;
        }
        keys.push(line);
    }
    keys
}

/// Live resharding: `{"admin":"reshard","add":ADDR}` swaps in the grown
/// ring after warm-handing-off exactly the moving key ranges, so keys that
/// change owners stay warm (`"cached":true`, byte-identical responses);
/// `"remove"` shrinks the ring back and the old owners are still warm.
#[test]
fn reshard_moves_key_ranges_warm() {
    let dir = std::env::temp_dir().join(format!("stencil-reshard-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = |name: &str| dir.join(name).to_str().unwrap().to_string();

    let b1 = Server::spawn("127.0.0.1:0", &["--persist", &log("b1.log")], &[]);
    let b2 = Server::spawn("127.0.0.1:0", &["--persist", &log("b2.log")], &[]);
    let b3 = Server::spawn("127.0.0.1:0", &["--persist", &log("b3.log")], &[]);
    let route = format!("{},{}", b1.addr, b2.addr);
    let router = Server::spawn("127.0.0.1:0", &["--route", &route], &[]);

    // warm a spread of keys through the two-backend ring, twice (second
    // pass pins the warm `"cached":true` response bytes)
    let specs3 = [b1.addr.clone(), b2.addr.clone(), b3.addr.clone()];
    let keys = reshard_keys(&specs3);
    replay(&router.addr, &keys);
    let warm = replay(&router.addr, &keys);
    assert!(warm.iter().all(|r| r.contains("\"cached\":true")));

    // grow the ring: the moving ranges must be streamed to b3 before the swap
    let (mut conn, mut reader) = connect(&router.addr);
    let reply = ask(
        &mut conn,
        &mut reader,
        &format!(r#"{{"id":1,"admin":"reshard","add":"{}"}}"#, b3.addr),
    );
    let v = Value::parse(&reply).expect("reshard must answer one well-formed line");
    assert_eq!(
        v.get("status").and_then(Value::as_str),
        Some("ok"),
        "{reply}"
    );
    assert_eq!(v.get("backends").and_then(Value::as_u64), Some(3));
    assert_eq!(v.get("donors").and_then(Value::as_u64), Some(2));
    assert_eq!(v.get("skipped_donors").and_then(Value::as_u64), Some(0));
    assert_eq!(v.get("absorb_errors").and_then(Value::as_u64), Some(0));
    let moved = v.get("moved_entries").and_then(Value::as_u64).unwrap();
    assert_eq!(moved, 8, "exactly the eight oracle-chosen movers must move");

    // every key — moved or not — still answers warm and byte-identically
    let after_add = replay(&router.addr, &keys);
    assert_eq!(warm, after_add, "responses changed across reshard add");

    // the moved ranges really live on b3: it answers its share as hits
    let oracle3 = Router::new(&specs3, 1, DEFAULT_ROUTE_TIMEOUT).unwrap();
    let on_b3: Vec<String> = keys
        .iter()
        .filter(|k| oracle3.route_index(&Value::parse(k).unwrap()) == 2)
        .cloned()
        .collect();
    assert_eq!(on_b3.len() as u64, moved, "moved count must match the ring");
    let direct_b3 = replay(&b3.addr, &on_b3);
    assert!(
        direct_b3.iter().all(|r| r.contains("\"cached\":true")),
        "b3 must hold its absorbed ranges warm: {direct_b3:?}"
    );

    // shrink back: keys return to owners that never dropped them
    let reply = ask(
        &mut conn,
        &mut reader,
        &format!(r#"{{"admin":"reshard","remove":"{}"}}"#, b3.addr),
    );
    let v = Value::parse(&reply).unwrap();
    assert_eq!(
        v.get("status").and_then(Value::as_str),
        Some("ok"),
        "{reply}"
    );
    assert_eq!(v.get("backends").and_then(Value::as_u64), Some(2));
    let after_remove = replay(&router.addr, &keys);
    assert_eq!(
        warm, after_remove,
        "responses changed across reshard remove"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// router crash matrix: kill -9 at every router fault point, prove recovery
// ---------------------------------------------------------------------------

/// Waits for the router child to die at its armed fault point and asserts
/// it was SIGABRT (the in-process `kill -9` stand-in), not a clean exit.
#[cfg(unix)]
fn wait_abort(server: &mut Server) {
    use std::os::unix::process::ExitStatusExt;
    let status = server.child.wait().unwrap();
    assert_eq!(
        status.signal(),
        Some(6),
        "router must abort at the armed fault point, got {status:?}"
    );
    if let Some(d) = server.drain.take() {
        let _ = d.join();
    }
}

/// Sends one line and tolerates the connection dropping without a response
/// — the expected shape when the armed fault point kills the router.
fn fire_expect_drop(addr: &str, line: &str) {
    let (mut conn, mut reader) = connect(addr);
    conn.write_all(line.as_bytes()).unwrap();
    conn.write_all(b"\n").unwrap();
    let mut reply = String::new();
    let _ = reader.read_line(&mut reply);
}

/// Forward-path crash points: the router is killed between writing a
/// request to a backend and relaying the response (`router.forward_sent`),
/// or between serving a miss and fanning it out to the other replicas
/// (`router.replica_fanout_partial`).  In both cases the backend keeps the
/// computed entry; a fresh router over the same backends must replay the
/// full workload byte-identically to a single process that also saw the
/// half-done request — with zero unavailable lines.
#[cfg(unix)]
fn forward_crash_recovers(point: &str) {
    let requests = golden_requests();
    let probe = requests[0].clone();
    let single = Server::spawn("127.0.0.1:0", &[], &[]);
    let b1 = Server::spawn("127.0.0.1:0", &[], &[]);
    let b2 = Server::spawn("127.0.0.1:0", &[], &[]);
    let b3 = Server::spawn("127.0.0.1:0", &[], &[]);
    let route = format!("{},{},{}", b1.addr, b2.addr, b3.addr);
    let args = ["--route", &route, "--replicas", "2"];
    let arm = format!("{point}:1");
    let mut doomed = Server::spawn("127.0.0.1:0", &args, &[("STENCIL_FAULTPOINT", &arm)]);

    fire_expect_drop(&doomed.addr, &probe);
    wait_abort(&mut doomed);

    // the backends survived the router's death with the probe cached; the
    // single process sees the probe too, then both replay the whole file
    let recovered = Server::spawn("127.0.0.1:0", &args, &[]);
    let direct = replay(&single.addr, std::slice::from_ref(&probe));
    assert!(direct[0].contains("\"cached\":false"));
    let direct = replay(&single.addr, &requests);
    let routed = replay(&recovered.addr, &requests);
    for (i, (d, r)) in direct.iter().zip(&routed).enumerate() {
        assert!(!r.contains(BACKEND_UNAVAILABLE), "request {}: {r}", i + 1);
        assert_eq!(
            d,
            r,
            "response {} diverged after router crash recovery",
            i + 1
        );
    }
}

#[cfg(unix)]
#[test]
fn crash_at_forward_sent_recovers_byte_identical() {
    forward_crash_recovers("router.forward_sent");
}

#[cfg(unix)]
#[test]
fn crash_at_replica_fanout_partial_recovers_byte_identical() {
    forward_crash_recovers("router.replica_fanout_partial");
}

/// Reshard-path crash points: the router is killed after streaming a warm
/// handoff chunk into the gaining backend (`router.handoff_streamed`) or
/// with the new ring fully prepared but not yet swapped
/// (`router.ring_swap_prepared`).  Nothing was swapped, so a fresh router
/// over the *old* backend set serves every key warm; re-running the
/// reshard completes it (absorb skips the half-streamed entries), and the
/// responses never change.
#[cfg(unix)]
fn reshard_crash_recovers(point: &str) {
    let dir = std::env::temp_dir().join(format!("stencil-crash-{point}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = |name: &str| dir.join(name).to_str().unwrap().to_string();
    let b1 = Server::spawn("127.0.0.1:0", &["--persist", &log("b1.log")], &[]);
    let b2 = Server::spawn("127.0.0.1:0", &["--persist", &log("b2.log")], &[]);
    let b3 = Server::spawn("127.0.0.1:0", &["--persist", &log("b3.log")], &[]);
    let route = format!("{},{}", b1.addr, b2.addr);
    let args = ["--route", &route];
    let arm = format!("{point}:1");
    let mut doomed = Server::spawn("127.0.0.1:0", &args, &[("STENCIL_FAULTPOINT", &arm)]);

    let keys = reshard_keys(&[b1.addr.clone(), b2.addr.clone(), b3.addr.clone()]);
    replay(&doomed.addr, &keys);
    let warm = replay(&doomed.addr, &keys);
    assert!(warm.iter().all(|r| r.contains("\"cached\":true")));

    let reshard_line = format!(r#"{{"admin":"reshard","add":"{}"}}"#, b3.addr);
    fire_expect_drop(&doomed.addr, &reshard_line);
    wait_abort(&mut doomed);

    // the swap never landed: a fresh router on the old pair is whole
    let recovered = Server::spawn("127.0.0.1:0", &args, &[]);
    assert_eq!(replay(&recovered.addr, &keys), warm, "old ring lost keys");

    // the interrupted reshard re-runs to completion on the fresh router
    let (mut conn, mut reader) = connect(&recovered.addr);
    let reply = ask(&mut conn, &mut reader, &reshard_line);
    let v = Value::parse(&reply).unwrap();
    assert_eq!(
        v.get("status").and_then(Value::as_str),
        Some("ok"),
        "{reply}"
    );
    assert_eq!(v.get("absorb_errors").and_then(Value::as_u64), Some(0));
    assert_eq!(replay(&recovered.addr, &keys), warm, "new ring lost keys");

    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn crash_at_handoff_streamed_recovers_and_reshard_completes() {
    reshard_crash_recovers("router.handoff_streamed");
}

#[cfg(unix)]
#[test]
fn crash_at_ring_swap_prepared_recovers_and_reshard_completes() {
    reshard_crash_recovers("router.ring_swap_prepared");
}
