//! Golden-transcript tests: the checked-in request file
//! (`tests/data/transcript_requests.txt`) covers every request shape the
//! protocol speaks — singles, batches, compact encoding,
//! `want_mapping:false`, `new_rank_of`, persistence reload (`#RESTART`),
//! and malformed lines — and the responses must match
//! `tests/data/transcript_expected.txt` **byte-exactly**, replayed under
//! `RAYON_NUM_THREADS ∈ {1, 4}` (child processes, because the vendored
//! rayon reads the variable once per process).
//!
//! If a protocol change is deliberate, regenerate with
//! `cargo run --release -p stencil-serve --example regen_transcript`
//! and review the diff line by line.

use stencil_serve::service::ServiceConfig;
use stencil_serve::transcript::replay;

fn data(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Replays the golden transcript with a fresh persistence log and compares
/// every response byte-exactly against the expected file.
fn check_golden(tag: &str) {
    let requests = data("transcript_requests.txt");
    let expected = data("transcript_expected.txt");
    let persist = std::env::temp_dir().join(format!(
        "stencil-serve-golden-{}-{tag}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&persist);
    let cfg = ServiceConfig {
        persist_path: Some(persist.clone()),
        ..ServiceConfig::default()
    };
    let responses = replay(&requests, &cfg).expect("transcript replay failed");
    let _ = std::fs::remove_file(&persist);

    let expected_lines: Vec<&str> = expected.lines().collect();
    assert_eq!(
        responses.len(),
        expected_lines.len(),
        "response count diverged from the golden file"
    );
    for (i, (got, want)) in responses.iter().zip(&expected_lines).enumerate() {
        assert_eq!(
            got,
            want,
            "response {} diverged from the golden transcript \
             (regenerate with `cargo run -p stencil-serve --example \
             regen_transcript` only if the change is deliberate)",
            i + 1
        );
    }
}

#[test]
fn golden_transcript_matches_byte_exactly() {
    check_golden("parent");
}

/// The same golden comparison under explicit thread counts: children rerun
/// this test binary with `RAYON_NUM_THREADS` pinned, so the byte-exact
/// guarantee is proven for 1 and 4 threads, not just the default.
#[test]
fn golden_transcript_matches_across_thread_counts() {
    const CHILD_VAR: &str = "STENCIL_SERVE_TRANSCRIPT_CHILD";
    if let Ok(tag) = std::env::var(CHILD_VAR) {
        check_golden(&tag);
        return;
    }
    let exe = std::env::current_exe().expect("test executable path");
    for threads in ["1", "4"] {
        let out = std::process::Command::new(&exe)
            .args([
                "golden_transcript_matches_across_thread_counts",
                "--exact",
                "--test-threads=1",
            ])
            .env(CHILD_VAR, format!("threads{threads}"))
            .env("RAYON_NUM_THREADS", threads)
            .output()
            .expect("spawning the child test process");
        assert!(
            out.status.success(),
            "golden transcript diverged with RAYON_NUM_THREADS={threads}:\n{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
