//! Consistent-hash request routing across sharded `stencil-serve` backends.
//!
//! `stencil-serve --route b1:port,b2:port,…` turns the process into a
//! protocol-transparent router: it accepts the same NDJSON protocol on the
//! same TCP frontend (see [`crate::server`]), but instead of computing it
//! canonicalises each request (reusing [`stencil_mapping::canonical`] via
//! [`CacheKey::of_request`]), hashes the canonical key bytes with 64-bit
//! FNV-1a onto a [`Ring`] of [`VNODES_PER_BACKEND`] virtual nodes per
//! backend, forwards the line over a pooled persistent TCP connection to
//! the chosen backend, and relays the response line verbatim.
//!
//! **Placement is a pure function of the canonical key and the backend
//! set.**  Canonically-equal requests (a grid and its dimension
//! permutations, reordered stencils) always land on the same backend, so
//! each backend's cache sees exactly the request subsequence it would have
//! seen in a single process and the `cached` flags — and therefore whole
//! transcripts — stay byte-identical to an unsharded server (asserted by
//! the router golden tests and the CI `router-smoke` step).  No rendezvous
//! state, no coordination: adding a backend remaps only the keys whose ring
//! successor changes.
//!
//! Request handling:
//!
//! * a **single request line is forwarded verbatim** (raw bytes, not
//!   re-rendered), so the backend parses exactly what the client sent;
//! * a **batch line is split per item**: each item is routed independently
//!   by its own canonical key, forwarded wrapped as a single-item batch
//!   (`{"batch":[item]}` — so an item that itself contains a `"batch"` key
//!   is still treated as a plain request object, exactly as a single
//!   process treats batch items), and the responses are unwrapped and
//!   reassembled in item order;
//! * **unparseable lines, empty or malformed batches and `"admin"` lines**
//!   are forwarded whole to a backend picked by hashing the raw line bytes
//!   — deterministic, and the backend produces the identical error (or
//!   admin) response a single process would.
//!
//! **Replication** (`--replicas R`, default 1): each key maps to the R
//! *distinct* successor backends on the ring ([`Ring::replica_indices`]).
//! Reads go to the primary and fail over in ring order to the next replica
//! when a backend is down, timed out, or mid-backoff; a served **miss**
//! (`"cached":false`) is written through to the remaining replicas (same
//! raw line, responses discarded), so every replica computes and caches
//! the identical entry.  Converged replica caches are what keep routed
//! transcripts byte-identical through a failover: the replica answers
//! `"cached":true` exactly as the lost primary — and a single process —
//! would.  Killing any one backend with R ≥ 2 therefore yields zero
//! `backend unavailable` lines and no cold recompute storm.
//!
//! **Live resharding**: `{"admin":"reshard","add":ADDR}` (or `"remove"`)
//! is answered by the router itself.  It builds the new ring, pulls
//! compacted `{"admin":"handoff"}` images from the old backends, streams
//! exactly the key ranges whose replica set gains a member into the
//! gaining backends as `{"admin":"absorb"}` chunks, then swaps the routing
//! view atomically — in-flight lines drain on the old view (each line
//! works against an `Arc` snapshot).  `{"admin":"stats"}` is likewise
//! answered by the router: it fans out to every backend and aggregates
//! cache counters plus the router's own up/down/backoff view into one
//! line.
//!
//! Robustness: per-backend connection pools with
//! reconnect-with-exponential-backoff (deterministically jittered per
//! backend, so a fleet-wide restart never wakes all probes at one
//! instant), a per-forward deadline (`--route-timeout`), and
//! `{"error":"backend unavailable"}` lines — only when *every* replica is
//! unreachable — instead of hangs.  A backend that comes back is redialed
//! automatically once its backoff window expires; up/down transitions are
//! logged once each.  The fault points `router.forward`,
//! `router.forward_sent`, `router.reconnect`,
//! `router.replica_fanout_partial`, `router.ring_swap_prepared` and
//! `router.handoff_streamed` ([`crate::faultpoint`]) bracket the forward,
//! fan-out and reshard paths for the crash-matrix suites.
//!
//! The router in the serve-tier picture — and the warm-handoff flow for
//! resharding (`--handoff`, which asks a backend to compact and ship its
//! persistence log; reused wholesale by the reshard choreography) — is
//! described in `docs/ARCHITECTURE.md`; the wire protocol it relays is
//! specified in `docs/PROTOCOL.md`.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

use crate::faultpoint;
use crate::json::{base64_decode, base64_encode, Value};
use crate::persist::{parse_record, Record};
use crate::protocol::{MapRequest, MapResponse, ResponseBody};
use crate::server::LineHandler;
use crate::service::CacheKey;

/// Virtual nodes per backend on the ring.  256 keeps the largest/smallest
/// backend share within a few percent of each other while the whole ring
/// for tens of backends still fits in one cache-friendly sorted `Vec`.
pub const VNODES_PER_BACKEND: usize = 256;

/// Default `--route-timeout`: the per-forward deadline covering connect,
/// write and response read.  Generous enough for a cold p=4800 VieM miss
/// on a loaded backend, short enough that a wedged backend turns into
/// error lines instead of piled-up worker threads.
pub const DEFAULT_ROUTE_TIMEOUT: Duration = Duration::from_secs(10);

/// The error text of a routed line that could not be forwarded to *any* of
/// its replicas — clients see
/// `{"status":"error","error":"backend unavailable"}` (with the request id
/// echoed when there was one) instead of a hang or a torn line.  The string
/// itself lives in [`crate::wire`] with the other transport error texts.
pub use crate::wire::ERROR_BACKEND_UNAVAILABLE as BACKEND_UNAVAILABLE;

/// How long one `connect` may take before the backend counts as down.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// First retry delay after a backend is marked down; doubles per
/// consecutive failure up to [`BACKOFF_MAX`], and any success resets it.
const BACKOFF_BASE: Duration = Duration::from_millis(100);

/// Ceiling of the reconnect backoff: a dead backend is probed at least
/// every 2 s, which bounds how stale the router's down verdict can get
/// after the backend restarts.
const BACKOFF_MAX: Duration = Duration::from_secs(2);

/// Idle connections kept per backend; checkouts beyond this dial extra
/// connections that are simply dropped instead of pooled on checkin.
const POOL_CAP: usize = 8;

/// Upper bound on one buffered backend response (64 MiB — far above any
/// legitimate response, including a shipped handoff log) so a misbehaving
/// backend cannot balloon router memory.
const MAX_RESPONSE_BYTES: usize = 64 << 20;

/// Raw bytes of persistence-log records per `{"admin":"absorb"}` line when
/// a reshard streams moved key ranges into their gaining backend.  2 MiB of
/// raw log is ~2.7 MiB base64 — comfortably inside the backends' 4 MiB
/// request-line limit.
const ABSORB_CHUNK_BYTES: usize = 2 << 20;

/// Deterministic per-backend addition to every reconnect-backoff window,
/// keyed on the backend's construction index: `idx` milliseconds plus a
/// sub-millisecond mix of `idx`.  Indices map to *disjoint* 1 ms intervals,
/// so two backends marked down at the same instant with the same backoff
/// can never probe at the same instant — a fleet-wide backend restart wakes
/// the router's probes staggered instead of as one synchronized storm.
fn probe_jitter(idx: u64) -> Duration {
    Duration::from_micros(idx * 1000 + mix64(idx) % 1000)
}

/// 64-bit FNV-1a over `bytes` — the router's fixed placement hash.  Chosen
/// for being fully specified in a dozen lines (no dependency, no
/// platform variance): the constants below are the standard FNV-1a offset
/// basis and prime.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Finalising mixer (splitmix64's output stage).  FNV-1a alone spreads
/// trailing bytes weakly: sequential vnode indices and backend specs that
/// differ in one port digit land clustered on the ring, which skews shard
/// ownership by an order of magnitude.  One multiply–xor–shift cascade is
/// enough to make the spread uniform, and it is just as deterministic.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The consistent-hash ring: every backend contributes
/// [`VNODES_PER_BACKEND`] points (FNV-1a of `spec NUL vnode_index`), a key
/// is owned by the first point at or clockwise-after its hash.  Lookup is
/// one binary search over a sorted `Vec`.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point hash, backend index)`, sorted — ties (astronomically rare)
    /// break deterministically toward the lower backend index.
    points: Vec<(u64, usize)>,
    /// Number of backends the ring was built from (distinct indices).
    backends: usize,
}

impl Ring {
    /// Builds the ring for the given backend specs (order defines the
    /// backend indices).  Duplicate specs are allowed and simply double a
    /// backend's share of the ring.
    pub fn new(backends: &[String]) -> Ring {
        let mut points = Vec::with_capacity(backends.len() * VNODES_PER_BACKEND);
        for (idx, spec) in backends.iter().enumerate() {
            let mut bytes = Vec::with_capacity(spec.len() + 5);
            bytes.extend_from_slice(spec.as_bytes());
            bytes.push(0);
            for vnode in 0..VNODES_PER_BACKEND as u32 {
                bytes.truncate(spec.len() + 1);
                bytes.extend_from_slice(&vnode.to_le_bytes());
                points.push((mix64(fnv1a_64(&bytes)), idx));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            backends: backends.len(),
        }
    }

    /// The backend index owning `hash`: the first ring point at or after
    /// it, wrapping past the top of the hash space back to the first point.
    /// The hash is finalised with the same splitmix64 step used to place
    /// the vnode points, so callers pass plain [`fnv1a_64`] output.
    pub fn lookup(&self, hash: u64) -> usize {
        let hash = mix64(hash);
        let i = self.points.partition_point(|&(h, _)| h < hash);
        self.points[i % self.points.len()].1
    }

    /// The `replicas` *distinct* backend indices owning `hash`, in failover
    /// order: the [`Ring::lookup`] owner first, then the next distinct
    /// backends clockwise around the ring.  The walk over successor points
    /// collapses repeated indices, so the set size is
    /// `min(replicas, backend count)` — a pure function of the hash and the
    /// backend set, exactly like single-owner lookup, and with the same
    /// minimal-movement property extended to sets: growing the ring can add
    /// the new backend to a key's replica set (evicting its last member)
    /// but never moves a key between two pre-existing backends.
    pub fn replica_indices(&self, hash: u64, replicas: usize) -> Vec<usize> {
        let want = replicas.min(self.backends);
        let mut set = Vec::with_capacity(want);
        if want == 0 {
            return set;
        }
        let hash = mix64(hash);
        let start = self.points.partition_point(|&(h, _)| h < hash);
        for off in 0..self.points.len() {
            let idx = self.points[(start + off) % self.points.len()].1;
            if !set.contains(&idx) {
                set.push(idx);
                if set.len() == want {
                    break;
                }
            }
        }
        set
    }

    /// Number of backends this ring was built from.
    pub fn backend_count(&self) -> usize {
        self.backends
    }

    /// Number of ring points (backends × vnodes).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the ring has no points (an empty backend list).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// One pooled backend connection: the socket plus any bytes already read
/// past the last returned response line.
struct BackendConn {
    stream: TcpStream,
    residual: Vec<u8>,
}

impl BackendConn {
    /// Writes one request line (terminator appended) with the remaining
    /// deadline as the write timeout.
    fn write_line(&mut self, line: &str, deadline: Instant) -> std::io::Result<()> {
        self.stream.set_write_timeout(Some(remaining(deadline)?))?;
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Reads one newline-terminated response line (terminator stripped),
    /// keeping any extra bytes for the next read.
    fn read_line(&mut self, deadline: Instant) -> std::io::Result<String> {
        let mut searched = 0;
        loop {
            if let Some(pos) = self.residual[searched..].iter().position(|&b| b == b'\n') {
                let rest = self.residual.split_off(searched + pos + 1);
                let mut line = std::mem::replace(&mut self.residual, rest);
                line.pop();
                return String::from_utf8(line).map_err(|_| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "backend sent an invalid UTF-8 response line",
                    )
                });
            }
            searched = self.residual.len();
            if searched > MAX_RESPONSE_BYTES {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "backend response line exceeds the relay limit",
                ));
            }
            self.stream.set_read_timeout(Some(remaining(deadline)?))?;
            let mut chunk = [0u8; 64 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "backend closed the connection mid-response",
                    ))
                }
                Ok(n) => self.residual.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Time left until `deadline`, as a non-zero socket timeout; a
/// `TimedOut` error once it has passed.
fn remaining(deadline: Instant) -> std::io::Result<Duration> {
    match deadline.checked_duration_since(Instant::now()) {
        Some(d) if !d.is_zero() => Ok(d),
        _ => Err(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "forward deadline exceeded",
        )),
    }
}

/// Reconnect/backoff state of one backend, shared by all router workers.
struct BackendState {
    pool: Vec<BackendConn>,
    /// While set and in the future, forwards fail fast instead of dialing.
    down_until: Option<Instant>,
    /// The next down window; doubles per consecutive failure.
    backoff: Duration,
}

struct Backend {
    spec: String,
    /// This backend's [`probe_jitter`], fixed at construction.  Added to
    /// every down window so no two backends ever share a probe instant.
    jitter: Duration,
    state: Mutex<BackendState>,
}

impl Backend {
    fn new(spec: String, jitter_index: u64) -> Backend {
        Backend {
            spec,
            jitter: probe_jitter(jitter_index),
            state: Mutex::new(BackendState {
                pool: Vec::new(),
                down_until: None,
                backoff: BACKOFF_BASE,
            }),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, BackendState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Marks the backend down for its current backoff window (plus its
    /// jitter), discards its pooled connections (all presumed stale), and
    /// doubles the window.  The up→down *transition* is logged once; probe
    /// failures while already down stay silent.
    fn mark_down(&self) {
        let mut state = self.lock_state();
        let window = state.backoff + self.jitter;
        if state.down_until.is_none() {
            eprintln!(
                "router: backend {} marked down, next probe in {}ms",
                self.spec,
                window.as_millis()
            );
        }
        state.pool.clear();
        state.down_until = Some(Instant::now() + window);
        state.backoff = (state.backoff * 2).min(BACKOFF_MAX);
    }

    /// Records a successful exchange: clears the down window and resets the
    /// backoff, so a restarted backend rejoins at full speed immediately.
    /// The down→up transition is logged once.
    fn mark_up(&self) {
        let mut state = self.lock_state();
        if state.down_until.is_some() {
            eprintln!("router: backend {} rejoined", self.spec);
        }
        state.down_until = None;
        state.backoff = BACKOFF_BASE;
    }

    /// Returns a healthy connection to the pool (bounded by [`POOL_CAP`]).
    fn checkin(&self, conn: BackendConn) {
        let mut state = self.lock_state();
        if state.pool.len() < POOL_CAP {
            state.pool.push(conn);
        }
    }
}

/// The immutable routing view one request line works against: the backend
/// specs, their live connection/backoff state, and the ring built from
/// them.  The router holds the current view behind an `RwLock<Arc<…>>`;
/// every line clones the `Arc` once, so a reshard can swap in a new view
/// atomically while in-flight lines drain on the old one — and backends
/// common to both views share their `Arc<Backend>` (pools, backoff state)
/// across the swap.
struct RouterInner {
    specs: Vec<String>,
    backends: Vec<Arc<Backend>>,
    ring: Ring,
}

/// The canonical placement hash of one parsed request object: FNV-1a of the
/// canonical [`CacheKey::routing_bytes`] for a well-formed mapping request,
/// FNV-1a of the compact rendering otherwise (still deterministic, and the
/// backend renders the identical error a single process would).
fn item_hash(item: &Value) -> u64 {
    match MapRequest::from_value(item) {
        Ok(req) => fnv1a_64(&CacheKey::of_request(&req).routing_bytes()),
        Err(_) => fnv1a_64(item.compact().as_bytes()),
    }
}

/// Monotonic router counters (diagnostics and test assertions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Lines (or batch items) forwarded and answered by a backend.
    pub forwarded: u64,
    /// Lines (or batch items) answered with [`BACKEND_UNAVAILABLE`].
    pub unavailable: u64,
    /// Fresh backend connections dialed (the first connection to each
    /// backend counts too, so this is ≥ the number of live backends ever
    /// used).
    pub reconnects: u64,
    /// Lines answered by a non-primary replica because the primary (or an
    /// earlier replica) was down, timed out, or mid-backoff.
    pub failovers: u64,
    /// Write-through copies of a miss response delivered to the remaining
    /// replicas (one count per secondary reached, not per miss).
    pub fanouts: u64,
}

/// The consistent-hash router.  Implements [`LineHandler`], so every
/// transport frontend in [`crate::server`] (TCP pool, stdin) can serve it
/// in place of a local [`crate::service::MappingService`].
pub struct Router {
    /// The current routing view; swapped atomically by a reshard.
    inner: RwLock<Arc<RouterInner>>,
    /// Replica count per key (`--replicas`, 1 = the PR 8 single-owner mode).
    replicas: usize,
    route_timeout: Duration,
    /// Serialises reshards; request lines never take it.
    reshard_lock: Mutex<()>,
    /// Next [`probe_jitter`] index for backends added by a reshard —
    /// monotonic over the router's lifetime, so jitters stay distinct no
    /// matter how membership churns.
    next_jitter: AtomicU64,
    forwarded: AtomicU64,
    unavailable: AtomicU64,
    reconnects: AtomicU64,
    failovers: AtomicU64,
    fanouts: AtomicU64,
}

impl Router {
    /// Builds a router over `specs` (`host:port` each, as given to
    /// `--route`, comma-split by the CLI) with `replicas` distinct owners
    /// per key.  Specs are resolved eagerly so a typo fails at startup, but
    /// the backends do not need to be up yet — connections are dialed
    /// lazily on first forward.
    pub fn new(
        specs: &[String],
        replicas: usize,
        route_timeout: Duration,
    ) -> Result<Router, String> {
        if specs.is_empty() {
            return Err("--route needs at least one backend (host:port)".to_string());
        }
        if replicas < 1 {
            return Err("--replicas must be at least 1".to_string());
        }
        if replicas > specs.len() {
            return Err(format!(
                "--replicas {replicas} needs at least {replicas} backends, got {}",
                specs.len()
            ));
        }
        for (i, spec) in specs.iter().enumerate() {
            spec.to_socket_addrs()
                .map_err(|e| format!("backend {spec:?} does not resolve: {e}"))?;
            if replicas > 1 && specs[..i].contains(spec) {
                return Err(format!(
                    "duplicate backend {spec:?}: replicas must be distinct processes"
                ));
            }
        }
        Ok(Router {
            inner: RwLock::new(Arc::new(RouterInner {
                specs: specs.to_vec(),
                backends: specs
                    .iter()
                    .enumerate()
                    .map(|(i, spec)| Arc::new(Backend::new(spec.clone(), i as u64)))
                    .collect(),
                ring: Ring::new(specs),
            })),
            replicas,
            route_timeout,
            reshard_lock: Mutex::new(()),
            next_jitter: AtomicU64::new(specs.len() as u64),
            forwarded: AtomicU64::new(0),
            unavailable: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            fanouts: AtomicU64::new(0),
        })
    }

    /// The current routing view.  One clone per request line: in-flight
    /// lines keep the view they started with across a reshard swap.
    fn snapshot(&self) -> Arc<RouterInner> {
        Arc::clone(&self.inner.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The backend specs of the current view, in ring-index order.
    pub fn backend_specs(&self) -> Vec<String> {
        self.snapshot().specs.clone()
    }

    /// The configured replica count per key.
    pub fn replica_count(&self) -> usize {
        self.replicas
    }

    /// Snapshot of the monotonic router counters.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            forwarded: self.forwarded.load(Ordering::Relaxed),
            unavailable: self.unavailable.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            fanouts: self.fanouts.load(Ordering::Relaxed),
        }
    }

    /// The primary backend index a parsed request object routes to: the
    /// ring successor of the item's routing hash in the current view.
    pub fn route_index(&self, item: &Value) -> usize {
        self.snapshot().ring.lookup(item_hash(item))
    }

    /// The full replica set (primary first, failover order) a parsed
    /// request object routes to, as backend specs of the current view.
    pub fn replica_specs(&self, item: &Value) -> Vec<String> {
        let inner = self.snapshot();
        inner
            .ring
            .replica_indices(item_hash(item), self.replicas)
            .into_iter()
            .map(|i| inner.specs[i].clone())
            .collect()
    }

    /// Checks out a connection to `backend`: a pooled one when available
    /// (`pooled = true`), otherwise a fresh dial — unless the backend is
    /// inside its down window, which fails fast.
    fn checkout(&self, backend: &Backend) -> Result<(BackendConn, bool), ()> {
        {
            let mut state = backend.lock_state();
            if let Some(conn) = state.pool.pop() {
                return Ok((conn, true));
            }
            if let Some(until) = state.down_until {
                if Instant::now() < until {
                    return Err(());
                }
            }
        }
        self.dial(backend).map(|conn| (conn, false))
    }

    /// Dials a fresh connection; failure (re)marks the backend down and
    /// doubles its backoff.
    fn dial(&self, backend: &Backend) -> Result<BackendConn, ()> {
        faultpoint::reach("router.reconnect");
        self.reconnects.fetch_add(1, Ordering::Relaxed);
        let addrs = match backend.spec.to_socket_addrs() {
            Ok(addrs) => addrs,
            Err(_) => {
                backend.mark_down();
                return Err(());
            }
        };
        for addr in addrs {
            if let Ok(stream) = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT) {
                let _ = stream.set_nodelay(true);
                return Ok(BackendConn {
                    stream,
                    residual: Vec::new(),
                });
            }
        }
        backend.mark_down();
        Err(())
    }

    /// Forwards one complete line to `backend` and returns the response
    /// line.  A failure on a *pooled* connection (typically stale after a
    /// backend restart) clears the pool and retries once on a fresh dial
    /// within the same deadline; a failure on a fresh connection — or the
    /// deadline expiring — marks the backend down and reports
    /// unavailability.
    fn forward(&self, backend: &Backend, line: &str) -> Result<String, ()> {
        faultpoint::reach("router.forward");
        let deadline = Instant::now() + self.route_timeout;
        let mut retried = false;
        loop {
            let (mut conn, pooled) = self.checkout(backend)?;
            let result = conn.write_line(line, deadline).and_then(|()| {
                faultpoint::reach("router.forward_sent");
                conn.read_line(deadline)
            });
            match result {
                Ok(response) => {
                    backend.checkin(conn);
                    backend.mark_up();
                    self.forwarded.fetch_add(1, Ordering::Relaxed);
                    return Ok(response);
                }
                Err(e) => {
                    drop(conn); // never pool a connection in an unknown state
                    let timed_out = e.kind() == std::io::ErrorKind::TimedOut;
                    if pooled && !retried && !timed_out {
                        retried = true;
                        backend.lock_state().pool.clear();
                        continue;
                    }
                    if !timed_out {
                        // a timeout says "slow", not "gone": drop the
                        // connection but leave the backend dialable
                        backend.mark_down();
                    }
                    return Err(());
                }
            }
        }
    }

    /// Forwards one line through its replica set in failover order: the
    /// first replica to answer wins, and an answer from a non-primary
    /// counts as a failover.  When the winning response is a cache **miss**
    /// (`"cached":false` anywhere in the line) and the set has more than
    /// one member, the line is written through to the remaining replicas
    /// (best effort, responses discarded) so every replica computes and
    /// caches the entry — the write-through that keeps replica caches
    /// converged, which is what makes a later failover read answer
    /// `"cached":true` byte-identically to a single process.
    fn forward_replicated(
        &self,
        inner: &RouterInner,
        targets: &[usize],
        line: &str,
    ) -> Result<String, ()> {
        for (attempt, &idx) in targets.iter().enumerate() {
            match self.forward(&inner.backends[idx], line) {
                Ok(response) => {
                    if attempt > 0 {
                        self.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    if targets.len() > 1 && response.contains("\"cached\":false") {
                        self.fan_out(inner, targets, idx, line);
                    }
                    return Ok(response);
                }
                Err(()) => continue,
            }
        }
        Err(())
    }

    /// Write-through of a missed line to every replica other than `served`.
    /// Failures are ignored: a down replica warms up later via its own miss
    /// path (or a reshard absorb), it never blocks the winning response.
    fn fan_out(&self, inner: &RouterInner, targets: &[usize], served: usize, line: &str) {
        faultpoint::reach("router.replica_fanout_partial");
        for &idx in targets.iter().filter(|&&idx| idx != served) {
            if self.forward(&inner.backends[idx], line).is_ok() {
                self.fanouts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Appends the [`BACKEND_UNAVAILABLE`] error line (id echoed) to `out`.
    fn push_unavailable(&self, id: Option<Value>, out: &mut String) {
        self.unavailable.fetch_add(1, Ordering::Relaxed);
        MapResponse {
            id,
            body: ResponseBody::Error(BACKEND_UNAVAILABLE.to_string()),
        }
        .write_into(out);
    }

    /// Routes one non-empty batch: items routed independently by canonical
    /// key, forwarded strictly in item order (so canonically-equal items
    /// hit the same backend in the same order a single process would
    /// process them), responses unwrapped and reassembled in order.
    fn route_batch(&self, inner: &RouterInner, items: &[Value], out: &mut String) {
        out.push_str("{\"batch\":[");
        let mut wrapped = String::new();
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let targets = inner.ring.replica_indices(item_hash(item), self.replicas);
            wrapped.clear();
            wrapped.push_str("{\"batch\":[");
            item.write_into(&mut wrapped);
            wrapped.push_str("]}");
            match self.forward_replicated(inner, &targets, &wrapped) {
                Ok(response) => {
                    // strip the single-item wrapper and relay the item
                    // response verbatim; an unwrapped response (e.g. the
                    // wrapped line outgrew the backend's line limit) is an
                    // error object and is relayed as the item's answer
                    match response
                        .strip_prefix("{\"batch\":[")
                        .and_then(|r| r.strip_suffix("]}"))
                    {
                        Some(inner) => out.push_str(inner),
                        None => out.push_str(&response),
                    }
                }
                Err(()) => self.push_unavailable(item.get("id").cloned(), out),
            }
        }
        out.push_str("]}");
    }

    /// `{"admin":"stats"}` — answered by the router itself instead of being
    /// hashed to one arbitrary shard: fans `{"admin":"stats"}` out to every
    /// backend of the current view and aggregates the per-backend cache
    /// counters with the router's own view of each backend (up/down, pooled
    /// connections, backoff) and its forward counters into one JSON line.
    fn admin_stats(&self, inner: &RouterInner, v: &Value, out: &mut String) {
        let now = Instant::now();
        let (mut hits, mut misses, mut entries, mut up) = (0u64, 0u64, 0u64, 0u64);
        let mut per_backend = Vec::new();
        for backend in &inner.backends {
            let (pooled, backoff, down_for) = {
                let state = backend.lock_state();
                (
                    state.pool.len(),
                    state.backoff,
                    state
                        .down_until
                        .and_then(|until| until.checked_duration_since(now)),
                )
            };
            let mut fields = vec![("backend", Value::str(backend.spec.clone()))];
            let reply = self
                .forward(backend, "{\"admin\":\"stats\"}")
                .ok()
                .and_then(|resp| Value::parse(&resp).ok())
                .filter(|r| r.get("status").and_then(Value::as_str) == Some("ok"));
            match reply {
                Some(r) => {
                    up += 1;
                    fields.push(("up", Value::Bool(true)));
                    for (name, total) in [
                        ("hits", &mut hits),
                        ("misses", &mut misses),
                        ("entries", &mut entries),
                    ] {
                        let n = r.get(name).and_then(Value::as_u64).unwrap_or(0);
                        *total += n;
                        fields.push((name, Value::Num(n as f64)));
                    }
                }
                None => fields.push(("up", Value::Bool(false))),
            }
            fields.push(("pooled", Value::Num(pooled as f64)));
            fields.push(("backoff_ms", Value::Num(backoff.as_millis() as f64)));
            if let Some(d) = down_for {
                fields.push(("down_for_ms", Value::Num(d.as_millis() as f64)));
            }
            per_backend.push(Value::obj(fields));
        }
        let stats = self.stats();
        let mut fields = Vec::new();
        if let Some(id) = v.get("id").cloned() {
            fields.push(("id", id));
        }
        fields.push(("status", Value::str("ok")));
        fields.push(("admin", Value::str("stats")));
        fields.push(("replicas", Value::Num(self.replicas as f64)));
        fields.push(("up", Value::Num(up as f64)));
        fields.push(("hits", Value::Num(hits as f64)));
        fields.push(("misses", Value::Num(misses as f64)));
        fields.push(("entries", Value::Num(entries as f64)));
        fields.push(("backends", Value::Arr(per_backend)));
        fields.push((
            "router",
            Value::obj(vec![
                ("forwarded", Value::Num(stats.forwarded as f64)),
                ("unavailable", Value::Num(stats.unavailable as f64)),
                ("reconnects", Value::Num(stats.reconnects as f64)),
                ("failovers", Value::Num(stats.failovers as f64)),
                ("fanouts", Value::Num(stats.fanouts as f64)),
            ]),
        ));
        Value::obj(fields).write_into(out);
    }

    /// `{"admin":"reshard","add":ADDR}` / `{"admin":"reshard","remove":ADDR}`
    /// — live ring membership change, answered by the router itself.
    fn admin_reshard(&self, v: &Value, out: &mut String) {
        let id = v.get("id").cloned();
        match self.reshard(v) {
            Ok(summary) => {
                let mut fields = Vec::new();
                if let Some(id) = id {
                    fields.push(("id", id));
                }
                fields.push(("status", Value::str("ok")));
                fields.push(("admin", Value::str("reshard")));
                fields.extend(summary);
                Value::obj(fields).write_into(out);
            }
            Err(msg) => MapResponse {
                id,
                body: ResponseBody::Error(msg),
            }
            .write_into(out),
        }
    }

    /// The reshard choreography: validate the membership change, build the
    /// new ring, warm the gaining backends with exactly the key ranges that
    /// move (pulled as compacted `{"admin":"handoff"}` images from the old
    /// backends and streamed as `{"admin":"absorb"}` chunks), then swap the
    /// routing view atomically.  In-flight lines drain on the old view; the
    /// next line each worker picks up routes on the new one.  Warm-up is
    /// best effort — a donor without `--persist` (or down) contributes
    /// nothing and is counted in `skipped_donors`; its moved keys recompute
    /// cold on their new owners, which is correct, just slower.
    fn reshard(&self, v: &Value) -> Result<Vec<(&'static str, Value)>, String> {
        let _serialised = self.reshard_lock.lock().unwrap_or_else(|e| e.into_inner());
        let old = self.snapshot();
        let (op, addr) = if let Some(a) = v.get("add").and_then(Value::as_str) {
            ("add", a.to_string())
        } else if let Some(a) = v.get("remove").and_then(Value::as_str) {
            ("remove", a.to_string())
        } else {
            return Err(
                "reshard needs \"add\" or \"remove\" with a backend host:port string".to_string(),
            );
        };
        let mut new_specs = old.specs.clone();
        if op == "add" {
            addr.to_socket_addrs()
                .map_err(|e| format!("backend {addr:?} does not resolve: {e}"))?;
            if new_specs.contains(&addr) {
                return Err(format!("backend {addr:?} is already in the ring"));
            }
            new_specs.push(addr.clone());
        } else {
            let Some(pos) = new_specs.iter().position(|s| *s == addr) else {
                return Err(format!("backend {addr:?} is not in the ring"));
            };
            if new_specs.len() - 1 < self.replicas {
                return Err(format!(
                    "removing {addr:?} would leave {} backends for {} replicas",
                    new_specs.len() - 1,
                    self.replicas
                ));
            }
            new_specs.remove(pos);
        }
        let new_backends = new_specs
            .iter()
            .map(|spec| match old.specs.iter().position(|s| s == spec) {
                // kept backends carry their pools and backoff state across
                Some(i) => Arc::clone(&old.backends[i]),
                None => Arc::new(Backend::new(
                    spec.clone(),
                    self.next_jitter.fetch_add(1, Ordering::Relaxed),
                )),
            })
            .collect();
        let new = Arc::new(RouterInner {
            ring: Ring::new(&new_specs),
            specs: new_specs,
            backends: new_backends,
        });
        let (moved, donors, skipped_donors, absorb_errors) = self.warm_moving_ranges(&old, &new);
        faultpoint::reach("router.ring_swap_prepared");
        *self.inner.write().unwrap_or_else(|e| e.into_inner()) = Arc::clone(&new);
        eprintln!(
            "router: reshard {op} {addr}: ring swapped to {} backends, {moved} entries moved from {donors} donors",
            new.specs.len()
        );
        Ok(vec![
            ("op", Value::str(op)),
            ("backend", Value::str(addr)),
            ("backends", Value::Num(new.specs.len() as f64)),
            ("moved_entries", Value::Num(moved as f64)),
            ("donors", Value::Num(donors as f64)),
            ("skipped_donors", Value::Num(skipped_donors as f64)),
            ("absorb_errors", Value::Num(absorb_errors as f64)),
        ])
    }

    /// Pulls a compacted handoff image from every old backend, keeps only
    /// the insert records whose replica set *gains* a backend in the new
    /// view, and streams each gaining backend its lines in bounded absorb
    /// chunks.  Returns `(entries moved, donors, skipped donors, absorb
    /// errors)`.  Records are deduplicated across donors by their exact log
    /// line (replicas of one key hold byte-identical insert records, so
    /// line identity is key identity).
    fn warm_moving_ranges(&self, old: &RouterInner, new: &RouterInner) -> (u64, u64, u64, u64) {
        let mut seen = std::collections::HashSet::new();
        let mut gained: Vec<Vec<String>> = vec![Vec::new(); new.backends.len()];
        let (mut donors, mut skipped_donors) = (0u64, 0u64);
        for backend in &old.backends {
            let image = self
                .forward(backend, "{\"admin\":\"handoff\"}")
                .ok()
                .and_then(|resp| Value::parse(&resp).ok())
                .filter(|r| r.get("status").and_then(Value::as_str) == Some("ok"))
                .and_then(|r| {
                    r.get("log")
                        .and_then(Value::as_str)
                        .and_then(|log| base64_decode(log).ok())
                })
                .and_then(|bytes| String::from_utf8(bytes).ok());
            let Some(text) = image else {
                // down, or a donor running without --persist: its keys
                // recompute cold on their gaining owners
                skipped_donors += 1;
                continue;
            };
            donors += 1;
            for line in text.lines().filter(|l| !l.is_empty()) {
                let Ok(Record::Insert(key, _)) = parse_record(line) else {
                    continue;
                };
                if !seen.insert(line.to_string()) {
                    continue;
                }
                let hash = fnv1a_64(&key.routing_bytes());
                let old_owners: Vec<&String> = old
                    .ring
                    .replica_indices(hash, self.replicas)
                    .into_iter()
                    .map(|i| &old.specs[i])
                    .collect();
                for ni in new.ring.replica_indices(hash, self.replicas) {
                    if !old_owners.iter().any(|s| **s == new.specs[ni]) {
                        gained[ni].push(line.to_string());
                    }
                }
            }
        }
        let (mut moved, mut absorb_errors) = (0u64, 0u64);
        for (ni, lines) in gained.iter().enumerate() {
            let backend = &new.backends[ni];
            let mut chunk = String::new();
            let mut in_chunk = 0u64;
            for line in lines {
                if !chunk.is_empty() && chunk.len() + line.len() + 1 > ABSORB_CHUNK_BYTES {
                    match self.stream_absorb(backend, &chunk) {
                        Ok(()) => moved += in_chunk,
                        Err(()) => absorb_errors += 1,
                    }
                    chunk.clear();
                    in_chunk = 0;
                }
                chunk.push_str(line);
                chunk.push('\n');
                in_chunk += 1;
            }
            if !chunk.is_empty() {
                match self.stream_absorb(backend, &chunk) {
                    Ok(()) => moved += in_chunk,
                    Err(()) => absorb_errors += 1,
                }
            }
        }
        (moved, donors, skipped_donors, absorb_errors)
    }

    /// Streams one chunk of raw persistence-log lines into `backend` as an
    /// `{"admin":"absorb"}` line and checks it was accepted.
    fn stream_absorb(&self, backend: &Backend, chunk: &str) -> Result<(), ()> {
        let line = format!(
            "{{\"admin\":\"absorb\",\"log\":\"{}\"}}",
            base64_encode(chunk.as_bytes())
        );
        let resp = self.forward(backend, &line)?;
        faultpoint::reach("router.handoff_streamed");
        match Value::parse(&resp)
            .ok()
            .filter(|r| r.get("status").and_then(Value::as_str) == Some("ok"))
        {
            Some(_) => Ok(()),
            None => Err(()),
        }
    }
}

impl LineHandler for Router {
    /// Routes one wire line.  The `degrade` hint is ignored: the router's
    /// own per-line work is negligible, and table-stripping degradation is
    /// each backend's decision based on *its* queue depth.
    fn handle_line_into(&self, line: &str, _degrade: bool, out: &mut String) {
        let inner = self.snapshot();
        let parsed = Value::parse(line).ok();
        if let Some(v) = &parsed {
            // admin wins over batch at the top level, exactly as in
            // MappingService::handle_line_into
            if let Some(cmd) = v.get("admin") {
                match cmd.as_str() {
                    Some("stats") => {
                        self.admin_stats(&inner, v, out);
                        return;
                    }
                    Some("reshard") => {
                        self.admin_reshard(v, out);
                        return;
                    }
                    // every other admin command forwards whole below
                    _ => {}
                }
            } else if let Some(items) = v.get("batch").and_then(Value::as_arr) {
                if !items.is_empty() {
                    self.route_batch(&inner, items, out);
                    return;
                }
            }
        }
        // whole-line forward: single requests route by canonical key and
        // relay raw bytes; everything else (unparseable lines, empty or
        // malformed batches, admin lines) routes by the raw line bytes and
        // the backend produces the identical response a single process would
        // — failover across the replica set applies to both
        let targets = match &parsed {
            Some(v) if v.get("batch").is_none() && v.get("admin").is_none() => {
                inner.ring.replica_indices(item_hash(v), self.replicas)
            }
            _ => inner
                .ring
                .replica_indices(fnv1a_64(line.as_bytes()), self.replicas),
        };
        match self.forward_replicated(&inner, &targets, line) {
            Ok(response) => out.push_str(&response),
            Err(()) => {
                let id = parsed.as_ref().and_then(|v| v.get("id")).cloned();
                self.push_unavailable(id, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // the canonical FNV-1a test vectors
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    fn specs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect()
    }

    #[test]
    fn ring_lookup_is_deterministic_and_covers_all_backends() {
        let ring = Ring::new(&specs(3));
        assert_eq!(ring.len(), 3 * VNODES_PER_BACKEND);
        let mut seen = [false; 3];
        for key in 0..10_000u64 {
            let idx = ring.lookup(fnv1a_64(&key.to_le_bytes()));
            assert_eq!(
                idx,
                ring.lookup(fnv1a_64(&key.to_le_bytes())),
                "lookup must be pure"
            );
            seen[idx] = true;
        }
        assert_eq!(seen, [true; 3], "every backend owns some keys");
    }

    #[test]
    fn ring_shares_are_roughly_balanced() {
        let ring = Ring::new(&specs(4));
        let mut counts = [0usize; 4];
        for key in 0..40_000u64 {
            counts[ring.lookup(fnv1a_64(&key.to_le_bytes()))] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (5_000..=15_000).contains(&c),
                "backend {i} owns {c}/40000 keys — vnode spread is broken: {counts:?}"
            );
        }
    }

    #[test]
    fn adding_a_backend_only_moves_keys_toward_it() {
        // consistent hashing's defining property: growing the ring never
        // moves a key between two pre-existing backends
        let before = Ring::new(&specs(3));
        let after = Ring::new(&specs(4));
        let mut moved = 0usize;
        for key in 0..20_000u64 {
            let hash = fnv1a_64(&key.to_le_bytes());
            let (b, a) = (before.lookup(hash), after.lookup(hash));
            if b != a {
                assert_eq!(a, 3, "key moved between pre-existing backends");
                moved += 1;
            }
        }
        assert!(
            (2_000..=8_000).contains(&moved),
            "a quarter-ish of keys should move to the new backend, moved {moved}"
        );
    }

    #[test]
    fn replica_sets_are_distinct_ordered_and_capped() {
        let ring = Ring::new(&specs(4));
        assert_eq!(ring.backend_count(), 4);
        for key in 0..5_000u64 {
            let hash = fnv1a_64(&key.to_le_bytes());
            let set = ring.replica_indices(hash, 2);
            assert_eq!(set.len(), 2);
            assert_ne!(set[0], set[1], "replicas must be distinct backends");
            assert_eq!(set[0], ring.lookup(hash), "primary must match lookup");
            // asking for more replicas only extends the set, never reorders
            let wider = ring.replica_indices(hash, 3);
            assert_eq!(wider[..2], set[..]);
            // capped at the backend count, covering every backend
            let mut all = ring.replica_indices(hash, 9);
            assert_eq!(all.len(), 4);
            all.sort_unstable();
            assert_eq!(all, [0, 1, 2, 3]);
        }
    }

    #[test]
    fn growing_the_ring_never_moves_a_key_between_old_backends_replicated() {
        // minimal movement, extended to replica sets: after adding a
        // backend, a key's new set is a subset of (old set ∪ {new backend})
        let before = Ring::new(&specs(3));
        let after = Ring::new(&specs(4));
        let mut touched = 0usize;
        for key in 0..20_000u64 {
            let hash = fnv1a_64(&key.to_le_bytes());
            let old_set = before.replica_indices(hash, 2);
            let new_set = after.replica_indices(hash, 2);
            for idx in &new_set {
                assert!(
                    *idx == 3 || old_set.contains(idx),
                    "key {key}: replica moved between pre-existing backends \
                     ({old_set:?} -> {new_set:?})"
                );
            }
            if new_set != old_set {
                touched += 1;
            }
        }
        // the new backend takes over a quarter-ish of primary-or-secondary
        // slots; well under half of all sets may change, never more
        assert!(
            (2_000..=12_000).contains(&touched),
            "replica churn out of range: {touched}/20000 sets changed"
        );
    }

    #[test]
    fn probe_jitter_is_deterministic_and_pairwise_distinct() {
        for idx in 0..64u64 {
            assert_eq!(probe_jitter(idx), probe_jitter(idx), "must be pure");
            // disjoint 1ms intervals per index
            assert!(probe_jitter(idx) >= Duration::from_millis(idx));
            assert!(probe_jitter(idx) < Duration::from_millis(idx + 1));
        }
        for a in 0..64u64 {
            for b in (a + 1)..64 {
                assert_ne!(probe_jitter(a), probe_jitter(b));
            }
        }
    }

    #[test]
    fn two_down_backends_never_share_a_probe_instant() {
        let a = Backend::new("127.0.0.1:19101".to_string(), 0);
        let b = Backend::new("127.0.0.1:19102".to_string(), 1);
        for _ in 0..3 {
            a.mark_down();
            b.mark_down();
            let until_a = a.lock_state().down_until.unwrap();
            let until_b = b.lock_state().down_until.unwrap();
            assert_ne!(
                until_a, until_b,
                "down backends must wake staggered, never as one probe storm"
            );
        }
    }

    #[test]
    fn router_requires_backends_and_validates_specs() {
        assert!(Router::new(&[], 1, DEFAULT_ROUTE_TIMEOUT).is_err());
        assert!(Router::new(&["not a spec".to_string()], 1, DEFAULT_ROUTE_TIMEOUT).is_err());
        let r = Router::new(&specs(2), 1, DEFAULT_ROUTE_TIMEOUT).unwrap();
        assert_eq!(r.backend_specs(), specs(2));
        assert_eq!(r.stats(), RouterStats::default());
        // replica validation: bounds and distinctness
        assert!(Router::new(&specs(2), 0, DEFAULT_ROUTE_TIMEOUT).is_err());
        assert!(Router::new(&specs(2), 3, DEFAULT_ROUTE_TIMEOUT).is_err());
        let dup = vec![specs(1)[0].clone(), specs(1)[0].clone()];
        assert!(Router::new(&dup, 2, DEFAULT_ROUTE_TIMEOUT).is_err());
        assert!(Router::new(&dup, 1, DEFAULT_ROUTE_TIMEOUT).is_ok());
        let r = Router::new(&specs(3), 2, DEFAULT_ROUTE_TIMEOUT).unwrap();
        assert_eq!(r.replica_count(), 2);
        let item = Value::parse(r#"{"dims":[6,6],"nodes":4}"#).unwrap();
        let owners = r.replica_specs(&item);
        assert_eq!(owners.len(), 2);
        assert_ne!(owners[0], owners[1]);
        assert_eq!(owners[0], specs(3)[r.route_index(&item)]);
    }

    #[test]
    fn reshard_validates_membership_changes() {
        // backends are unreachable: validation errors must fire before any
        // warm-up is attempted, so these are instant
        let r = Router::new(&specs(3), 2, DEFAULT_ROUTE_TIMEOUT).unwrap();
        let reshard = |r: &Router, line: &str| {
            let mut out = String::new();
            r.handle_line_into(line, false, &mut out);
            out
        };
        let bad = [
            r#"{"admin":"reshard"}"#,
            r#"{"admin":"reshard","add":"127.0.0.1:7000"}"#,
            r#"{"admin":"reshard","add":"not a spec"}"#,
            r#"{"admin":"reshard","remove":"127.0.0.1:9999"}"#,
        ];
        for line in bad {
            assert!(
                reshard(&r, line).contains("\"status\":\"error\""),
                "{line} must be rejected"
            );
        }
        assert_eq!(r.backend_specs(), specs(3), "failed reshards must not swap");
        // removing below the replica count must be refused: two backends
        // serving two replicas cannot spare either of them
        let r2 = Router::new(&specs(2), 2, DEFAULT_ROUTE_TIMEOUT).unwrap();
        let out = reshard(
            &r2,
            r#"{"id":5,"admin":"reshard","remove":"127.0.0.1:7000"}"#,
        );
        assert!(out.starts_with("{\"id\":5,"));
        assert!(out.contains("\"status\":\"error\""));
        assert!(out.contains("1 backends for 2 replicas"));
        assert_eq!(
            r2.backend_specs(),
            specs(2),
            "failed reshards must not swap"
        );
    }

    #[test]
    fn canonically_equal_requests_route_to_the_same_backend() {
        let r = Router::new(&specs(5), 1, DEFAULT_ROUTE_TIMEOUT).unwrap();
        let a = Value::parse(r#"{"dims":[12,8],"nodes":8,"want_mapping":false}"#).unwrap();
        let b = Value::parse(r#"{"id":99,"dims":[8,12],"nodes":8}"#).unwrap();
        assert_eq!(
            r.route_index(&a),
            r.route_index(&b),
            "a permuted request (different id, different response shape) \
             must colocate with its canonical sibling"
        );
    }

    #[test]
    fn down_backend_fails_fast_within_its_backoff_window() {
        // an unroutable-but-resolvable address: a bound-then-dropped port
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let spec = listener.local_addr().unwrap().to_string();
        drop(listener);
        let r = Router::new(&[spec], 1, Duration::from_secs(2)).unwrap();
        let mut out = String::new();
        r.handle_line_into(r#"{"id":7,"dims":[4,4],"nodes":4}"#, false, &mut out);
        assert_eq!(
            out,
            r#"{"id":7,"status":"error","error":"backend unavailable"}"#
        );
        let dials = r.stats().reconnects;
        assert!(dials >= 1);
        // inside the backoff window the second line fails fast, no new dial
        let mut out2 = String::new();
        r.handle_line_into(r#"{"id":8,"dims":[4,4],"nodes":4}"#, false, &mut out2);
        assert!(out2.contains(BACKEND_UNAVAILABLE));
        assert_eq!(
            r.stats().reconnects,
            dials,
            "fail-fast must not redial inside the backoff window"
        );
        assert_eq!(r.stats().unavailable, 2);
    }
}
