//! Consistent-hash request routing across sharded `stencil-serve` backends.
//!
//! `stencil-serve --route b1:port,b2:port,…` turns the process into a
//! protocol-transparent router: it accepts the same NDJSON protocol on the
//! same TCP frontend (see [`crate::server`]), but instead of computing it
//! canonicalises each request (reusing [`stencil_mapping::canonical`] via
//! [`CacheKey::of_request`]), hashes the canonical key bytes with 64-bit
//! FNV-1a onto a [`Ring`] of [`VNODES_PER_BACKEND`] virtual nodes per
//! backend, forwards the line over a pooled persistent TCP connection to
//! the chosen backend, and relays the response line verbatim.
//!
//! **Placement is a pure function of the canonical key and the backend
//! set.**  Canonically-equal requests (a grid and its dimension
//! permutations, reordered stencils) always land on the same backend, so
//! each backend's cache sees exactly the request subsequence it would have
//! seen in a single process and the `cached` flags — and therefore whole
//! transcripts — stay byte-identical to an unsharded server (asserted by
//! the router golden tests and the CI `router-smoke` step).  No rendezvous
//! state, no coordination: adding a backend remaps only the keys whose ring
//! successor changes.
//!
//! Request handling:
//!
//! * a **single request line is forwarded verbatim** (raw bytes, not
//!   re-rendered), so the backend parses exactly what the client sent;
//! * a **batch line is split per item**: each item is routed independently
//!   by its own canonical key, forwarded wrapped as a single-item batch
//!   (`{"batch":[item]}` — so an item that itself contains a `"batch"` key
//!   is still treated as a plain request object, exactly as a single
//!   process treats batch items), and the responses are unwrapped and
//!   reassembled in item order;
//! * **unparseable lines, empty or malformed batches and `"admin"` lines**
//!   are forwarded whole to a backend picked by hashing the raw line bytes
//!   — deterministic, and the backend produces the identical error (or
//!   admin) response a single process would.
//!
//! Robustness: per-backend connection pools with
//! reconnect-with-exponential-backoff, a per-forward deadline
//! (`--route-timeout`), and `{"error":"backend unavailable"}` lines instead
//! of hangs when a backend is down.  A backend that comes back is redialed
//! automatically once its backoff window expires — the ring membership is
//! static, so rejoining needs no router restart.  The fault points
//! `router.forward` and `router.reconnect` ([`crate::faultpoint`]) bracket
//! the forward path for the robustness suites.
//!
//! The router in the serve-tier picture — and the warm-handoff flow for
//! resharding (`--handoff`, which asks a backend to compact and ship its
//! persistence log) — is described in `docs/ARCHITECTURE.md`; the wire
//! protocol it relays is specified in `docs/PROTOCOL.md`.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::faultpoint;
use crate::json::Value;
use crate::protocol::{MapRequest, MapResponse, ResponseBody};
use crate::server::LineHandler;
use crate::service::CacheKey;

/// Virtual nodes per backend on the ring.  256 keeps the largest/smallest
/// backend share within a few percent of each other while the whole ring
/// for tens of backends still fits in one cache-friendly sorted `Vec`.
pub const VNODES_PER_BACKEND: usize = 256;

/// Default `--route-timeout`: the per-forward deadline covering connect,
/// write and response read.  Generous enough for a cold p=4800 VieM miss
/// on a loaded backend, short enough that a wedged backend turns into
/// error lines instead of piled-up worker threads.
pub const DEFAULT_ROUTE_TIMEOUT: Duration = Duration::from_secs(10);

/// The error text of a routed line that could not be forwarded — clients
/// see `{"status":"error","error":"backend unavailable"}` (with the
/// request id echoed when there was one) instead of a hang or a torn line.
pub const BACKEND_UNAVAILABLE: &str = "backend unavailable";

/// How long one `connect` may take before the backend counts as down.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// First retry delay after a backend is marked down; doubles per
/// consecutive failure up to [`BACKOFF_MAX`], and any success resets it.
const BACKOFF_BASE: Duration = Duration::from_millis(100);

/// Ceiling of the reconnect backoff: a dead backend is probed at least
/// every 2 s, which bounds how stale the router's down verdict can get
/// after the backend restarts.
const BACKOFF_MAX: Duration = Duration::from_secs(2);

/// Idle connections kept per backend; checkouts beyond this dial extra
/// connections that are simply dropped instead of pooled on checkin.
const POOL_CAP: usize = 8;

/// Upper bound on one buffered backend response (64 MiB — far above any
/// legitimate response, including a shipped handoff log) so a misbehaving
/// backend cannot balloon router memory.
const MAX_RESPONSE_BYTES: usize = 64 << 20;

/// 64-bit FNV-1a over `bytes` — the router's fixed placement hash.  Chosen
/// for being fully specified in a dozen lines (no dependency, no
/// platform variance): the constants below are the standard FNV-1a offset
/// basis and prime.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Finalising mixer (splitmix64's output stage).  FNV-1a alone spreads
/// trailing bytes weakly: sequential vnode indices and backend specs that
/// differ in one port digit land clustered on the ring, which skews shard
/// ownership by an order of magnitude.  One multiply–xor–shift cascade is
/// enough to make the spread uniform, and it is just as deterministic.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The consistent-hash ring: every backend contributes
/// [`VNODES_PER_BACKEND`] points (FNV-1a of `spec NUL vnode_index`), a key
/// is owned by the first point at or clockwise-after its hash.  Lookup is
/// one binary search over a sorted `Vec`.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point hash, backend index)`, sorted — ties (astronomically rare)
    /// break deterministically toward the lower backend index.
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// Builds the ring for the given backend specs (order defines the
    /// backend indices).  Duplicate specs are allowed and simply double a
    /// backend's share of the ring.
    pub fn new(backends: &[String]) -> Ring {
        let mut points = Vec::with_capacity(backends.len() * VNODES_PER_BACKEND);
        for (idx, spec) in backends.iter().enumerate() {
            let mut bytes = Vec::with_capacity(spec.len() + 5);
            bytes.extend_from_slice(spec.as_bytes());
            bytes.push(0);
            for vnode in 0..VNODES_PER_BACKEND as u32 {
                bytes.truncate(spec.len() + 1);
                bytes.extend_from_slice(&vnode.to_le_bytes());
                points.push((mix64(fnv1a_64(&bytes)), idx));
            }
        }
        points.sort_unstable();
        Ring { points }
    }

    /// The backend index owning `hash`: the first ring point at or after
    /// it, wrapping past the top of the hash space back to the first point.
    /// The hash is finalised with the same splitmix64 step used to place
    /// the vnode points, so callers pass plain [`fnv1a_64`] output.
    pub fn lookup(&self, hash: u64) -> usize {
        let hash = mix64(hash);
        let i = self.points.partition_point(|&(h, _)| h < hash);
        self.points[i % self.points.len()].1
    }

    /// Number of ring points (backends × vnodes).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the ring has no points (an empty backend list).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// One pooled backend connection: the socket plus any bytes already read
/// past the last returned response line.
struct BackendConn {
    stream: TcpStream,
    residual: Vec<u8>,
}

impl BackendConn {
    /// Writes one request line (terminator appended) with the remaining
    /// deadline as the write timeout.
    fn write_line(&mut self, line: &str, deadline: Instant) -> std::io::Result<()> {
        self.stream.set_write_timeout(Some(remaining(deadline)?))?;
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Reads one newline-terminated response line (terminator stripped),
    /// keeping any extra bytes for the next read.
    fn read_line(&mut self, deadline: Instant) -> std::io::Result<String> {
        let mut searched = 0;
        loop {
            if let Some(pos) = self.residual[searched..].iter().position(|&b| b == b'\n') {
                let rest = self.residual.split_off(searched + pos + 1);
                let mut line = std::mem::replace(&mut self.residual, rest);
                line.pop();
                return String::from_utf8(line).map_err(|_| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "backend sent an invalid UTF-8 response line",
                    )
                });
            }
            searched = self.residual.len();
            if searched > MAX_RESPONSE_BYTES {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "backend response line exceeds the relay limit",
                ));
            }
            self.stream.set_read_timeout(Some(remaining(deadline)?))?;
            let mut chunk = [0u8; 64 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "backend closed the connection mid-response",
                    ))
                }
                Ok(n) => self.residual.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Time left until `deadline`, as a non-zero socket timeout; a
/// `TimedOut` error once it has passed.
fn remaining(deadline: Instant) -> std::io::Result<Duration> {
    match deadline.checked_duration_since(Instant::now()) {
        Some(d) if !d.is_zero() => Ok(d),
        _ => Err(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "forward deadline exceeded",
        )),
    }
}

/// Reconnect/backoff state of one backend, shared by all router workers.
struct BackendState {
    pool: Vec<BackendConn>,
    /// While set and in the future, forwards fail fast instead of dialing.
    down_until: Option<Instant>,
    /// The next down window; doubles per consecutive failure.
    backoff: Duration,
}

struct Backend {
    spec: String,
    state: Mutex<BackendState>,
}

/// Monotonic router counters (diagnostics and test assertions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Lines (or batch items) forwarded and answered by a backend.
    pub forwarded: u64,
    /// Lines (or batch items) answered with [`BACKEND_UNAVAILABLE`].
    pub unavailable: u64,
    /// Fresh backend connections dialed (the first connection to each
    /// backend counts too, so this is ≥ the number of live backends ever
    /// used).
    pub reconnects: u64,
}

/// The consistent-hash router.  Implements [`LineHandler`], so every
/// transport frontend in [`crate::server`] (TCP pool, stdin) can serve it
/// in place of a local [`crate::service::MappingService`].
pub struct Router {
    backends: Vec<Backend>,
    ring: Ring,
    route_timeout: Duration,
    forwarded: AtomicU64,
    unavailable: AtomicU64,
    reconnects: AtomicU64,
}

impl Router {
    /// Builds a router over `specs` (`host:port` each, as given to
    /// `--route`, comma-split by the CLI).  Specs are resolved eagerly so a
    /// typo fails at startup, but the backends do not need to be up yet —
    /// connections are dialed lazily on first forward.
    pub fn new(specs: &[String], route_timeout: Duration) -> Result<Router, String> {
        if specs.is_empty() {
            return Err("--route needs at least one backend (host:port)".to_string());
        }
        for spec in specs {
            spec.to_socket_addrs()
                .map_err(|e| format!("backend {spec:?} does not resolve: {e}"))?;
        }
        Ok(Router {
            ring: Ring::new(specs),
            backends: specs
                .iter()
                .map(|spec| Backend {
                    spec: spec.clone(),
                    state: Mutex::new(BackendState {
                        pool: Vec::new(),
                        down_until: None,
                        backoff: BACKOFF_BASE,
                    }),
                })
                .collect(),
            route_timeout,
            forwarded: AtomicU64::new(0),
            unavailable: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
        })
    }

    /// The backend specs, in ring-index order.
    pub fn backend_specs(&self) -> Vec<String> {
        self.backends.iter().map(|b| b.spec.clone()).collect()
    }

    /// Snapshot of the forward/unavailable/reconnect counters.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            forwarded: self.forwarded.load(Ordering::Relaxed),
            unavailable: self.unavailable.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
        }
    }

    /// The backend index a parsed request object routes to: the ring
    /// successor of the FNV-1a hash of its canonical
    /// [`CacheKey::routing_bytes`].  Objects that do not parse as mapping
    /// requests hash their compact rendering instead — still deterministic,
    /// and the backend renders the identical error a single process would.
    pub fn route_index(&self, item: &Value) -> usize {
        match MapRequest::from_value(item) {
            Ok(req) => self
                .ring
                .lookup(fnv1a_64(&CacheKey::of_request(&req).routing_bytes())),
            Err(_) => self.ring.lookup(fnv1a_64(item.compact().as_bytes())),
        }
    }

    fn lock_state(&self, idx: usize) -> std::sync::MutexGuard<'_, BackendState> {
        self.backends[idx]
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Checks out a connection to backend `idx`: a pooled one when
    /// available (`pooled = true`), otherwise a fresh dial — unless the
    /// backend is inside its down window, which fails fast.
    fn checkout(&self, idx: usize) -> Result<(BackendConn, bool), ()> {
        {
            let mut state = self.lock_state(idx);
            if let Some(conn) = state.pool.pop() {
                return Ok((conn, true));
            }
            if let Some(until) = state.down_until {
                if Instant::now() < until {
                    return Err(());
                }
            }
        }
        self.dial(idx).map(|conn| (conn, false))
    }

    /// Dials a fresh connection; failure (re)marks the backend down and
    /// doubles its backoff.
    fn dial(&self, idx: usize) -> Result<BackendConn, ()> {
        faultpoint::reach("router.reconnect");
        self.reconnects.fetch_add(1, Ordering::Relaxed);
        let addrs = match self.backends[idx].spec.to_socket_addrs() {
            Ok(addrs) => addrs,
            Err(_) => {
                self.mark_down(idx);
                return Err(());
            }
        };
        for addr in addrs {
            if let Ok(stream) = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT) {
                let _ = stream.set_nodelay(true);
                return Ok(BackendConn {
                    stream,
                    residual: Vec::new(),
                });
            }
        }
        self.mark_down(idx);
        Err(())
    }

    /// Marks backend `idx` down for its current backoff window, discards
    /// its pooled connections (all presumed stale), and doubles the window.
    fn mark_down(&self, idx: usize) {
        let mut state = self.lock_state(idx);
        state.pool.clear();
        state.down_until = Some(Instant::now() + state.backoff);
        state.backoff = (state.backoff * 2).min(BACKOFF_MAX);
    }

    /// Records a successful exchange: clears the down window and resets the
    /// backoff, so a restarted backend rejoins at full speed immediately.
    fn mark_up(&self, idx: usize) {
        let mut state = self.lock_state(idx);
        state.down_until = None;
        state.backoff = BACKOFF_BASE;
    }

    /// Returns a healthy connection to the pool (bounded by [`POOL_CAP`]).
    fn checkin(&self, idx: usize, conn: BackendConn) {
        let mut state = self.lock_state(idx);
        if state.pool.len() < POOL_CAP {
            state.pool.push(conn);
        }
    }

    /// Forwards one complete line to backend `idx` and returns the response
    /// line.  A failure on a *pooled* connection (typically stale after a
    /// backend restart) clears the pool and retries once on a fresh dial
    /// within the same deadline; a failure on a fresh connection — or the
    /// deadline expiring — marks the backend down and reports
    /// unavailability.
    fn forward(&self, idx: usize, line: &str) -> Result<String, ()> {
        faultpoint::reach("router.forward");
        let deadline = Instant::now() + self.route_timeout;
        let mut retried = false;
        loop {
            let (mut conn, pooled) = self.checkout(idx)?;
            let result = conn
                .write_line(line, deadline)
                .and_then(|()| conn.read_line(deadline));
            match result {
                Ok(response) => {
                    self.checkin(idx, conn);
                    self.mark_up(idx);
                    self.forwarded.fetch_add(1, Ordering::Relaxed);
                    return Ok(response);
                }
                Err(e) => {
                    drop(conn); // never pool a connection in an unknown state
                    let timed_out = e.kind() == std::io::ErrorKind::TimedOut;
                    if pooled && !retried && !timed_out {
                        retried = true;
                        self.lock_state(idx).pool.clear();
                        continue;
                    }
                    if !timed_out {
                        // a timeout says "slow", not "gone": drop the
                        // connection but leave the backend dialable
                        self.mark_down(idx);
                    }
                    return Err(());
                }
            }
        }
    }

    /// Appends the [`BACKEND_UNAVAILABLE`] error line (id echoed) to `out`.
    fn push_unavailable(&self, id: Option<Value>, out: &mut String) {
        self.unavailable.fetch_add(1, Ordering::Relaxed);
        MapResponse {
            id,
            body: ResponseBody::Error(BACKEND_UNAVAILABLE.to_string()),
        }
        .write_into(out);
    }

    /// Routes one non-empty batch: items routed independently by canonical
    /// key, forwarded strictly in item order (so canonically-equal items
    /// hit the same backend in the same order a single process would
    /// process them), responses unwrapped and reassembled in order.
    fn route_batch(&self, items: &[Value], out: &mut String) {
        out.push_str("{\"batch\":[");
        let mut wrapped = String::new();
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let idx = self.route_index(item);
            wrapped.clear();
            wrapped.push_str("{\"batch\":[");
            item.write_into(&mut wrapped);
            wrapped.push_str("]}");
            match self.forward(idx, &wrapped) {
                Ok(response) => {
                    // strip the single-item wrapper and relay the item
                    // response verbatim; an unwrapped response (e.g. the
                    // wrapped line outgrew the backend's line limit) is an
                    // error object and is relayed as the item's answer
                    match response
                        .strip_prefix("{\"batch\":[")
                        .and_then(|r| r.strip_suffix("]}"))
                    {
                        Some(inner) => out.push_str(inner),
                        None => out.push_str(&response),
                    }
                }
                Err(()) => self.push_unavailable(item.get("id").cloned(), out),
            }
        }
        out.push_str("]}");
    }
}

impl LineHandler for Router {
    /// Routes one wire line.  The `degrade` hint is ignored: the router's
    /// own per-line work is negligible, and table-stripping degradation is
    /// each backend's decision based on *its* queue depth.
    fn handle_line_into(&self, line: &str, _degrade: bool, out: &mut String) {
        let parsed = Value::parse(line).ok();
        if let Some(v) = &parsed {
            // admin wins over batch at the top level, exactly as in
            // MappingService::handle_line_into
            if v.get("admin").is_none() {
                if let Some(items) = v.get("batch").and_then(Value::as_arr) {
                    if !items.is_empty() {
                        self.route_batch(items, out);
                        return;
                    }
                }
            }
        }
        // whole-line forward: single requests route by canonical key and
        // relay raw bytes; everything else (unparseable lines, empty or
        // malformed batches, admin lines) routes by the raw line bytes and
        // the backend produces the identical response a single process would
        let idx = match &parsed {
            Some(v) if v.get("batch").is_none() && v.get("admin").is_none() => self.route_index(v),
            _ => self.ring.lookup(fnv1a_64(line.as_bytes())),
        };
        match self.forward(idx, line) {
            Ok(response) => out.push_str(&response),
            Err(()) => {
                let id = parsed.as_ref().and_then(|v| v.get("id")).cloned();
                self.push_unavailable(id, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // the canonical FNV-1a test vectors
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    fn specs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect()
    }

    #[test]
    fn ring_lookup_is_deterministic_and_covers_all_backends() {
        let ring = Ring::new(&specs(3));
        assert_eq!(ring.len(), 3 * VNODES_PER_BACKEND);
        let mut seen = [false; 3];
        for key in 0..10_000u64 {
            let idx = ring.lookup(fnv1a_64(&key.to_le_bytes()));
            assert_eq!(
                idx,
                ring.lookup(fnv1a_64(&key.to_le_bytes())),
                "lookup must be pure"
            );
            seen[idx] = true;
        }
        assert_eq!(seen, [true; 3], "every backend owns some keys");
    }

    #[test]
    fn ring_shares_are_roughly_balanced() {
        let ring = Ring::new(&specs(4));
        let mut counts = [0usize; 4];
        for key in 0..40_000u64 {
            counts[ring.lookup(fnv1a_64(&key.to_le_bytes()))] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (5_000..=15_000).contains(&c),
                "backend {i} owns {c}/40000 keys — vnode spread is broken: {counts:?}"
            );
        }
    }

    #[test]
    fn adding_a_backend_only_moves_keys_toward_it() {
        // consistent hashing's defining property: growing the ring never
        // moves a key between two pre-existing backends
        let before = Ring::new(&specs(3));
        let after = Ring::new(&specs(4));
        let mut moved = 0usize;
        for key in 0..20_000u64 {
            let hash = fnv1a_64(&key.to_le_bytes());
            let (b, a) = (before.lookup(hash), after.lookup(hash));
            if b != a {
                assert_eq!(a, 3, "key moved between pre-existing backends");
                moved += 1;
            }
        }
        assert!(
            (2_000..=8_000).contains(&moved),
            "a quarter-ish of keys should move to the new backend, moved {moved}"
        );
    }

    #[test]
    fn router_requires_backends_and_validates_specs() {
        assert!(Router::new(&[], DEFAULT_ROUTE_TIMEOUT).is_err());
        assert!(Router::new(&["not a spec".to_string()], DEFAULT_ROUTE_TIMEOUT).is_err());
        let r = Router::new(&specs(2), DEFAULT_ROUTE_TIMEOUT).unwrap();
        assert_eq!(r.backend_specs(), specs(2));
        assert_eq!(r.stats(), RouterStats::default());
    }

    #[test]
    fn canonically_equal_requests_route_to_the_same_backend() {
        let r = Router::new(&specs(5), DEFAULT_ROUTE_TIMEOUT).unwrap();
        let a = Value::parse(r#"{"dims":[12,8],"nodes":8,"want_mapping":false}"#).unwrap();
        let b = Value::parse(r#"{"id":99,"dims":[8,12],"nodes":8}"#).unwrap();
        assert_eq!(
            r.route_index(&a),
            r.route_index(&b),
            "a permuted request (different id, different response shape) \
             must colocate with its canonical sibling"
        );
    }

    #[test]
    fn down_backend_fails_fast_within_its_backoff_window() {
        // an unroutable-but-resolvable address: a bound-then-dropped port
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let spec = listener.local_addr().unwrap().to_string();
        drop(listener);
        let r = Router::new(&[spec], Duration::from_secs(2)).unwrap();
        let mut out = String::new();
        r.handle_line_into(r#"{"id":7,"dims":[4,4],"nodes":4}"#, false, &mut out);
        assert_eq!(
            out,
            r#"{"id":7,"status":"error","error":"backend unavailable"}"#
        );
        let dials = r.stats().reconnects;
        assert!(dials >= 1);
        // inside the backoff window the second line fails fast, no new dial
        let mut out2 = String::new();
        r.handle_line_into(r#"{"id":8,"dims":[4,4],"nodes":4}"#, false, &mut out2);
        assert!(out2.contains(BACKEND_UNAVAILABLE));
        assert_eq!(
            r.stats().reconnects,
            dials,
            "fail-fast must not redial inside the backoff window"
        );
        assert_eq!(r.stats().unavailable, 2);
    }
}
