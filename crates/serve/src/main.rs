//! `stencil-serve` — the caching mapping service.
//!
//! ```text
//! stencil-serve --stdin                          # NDJSON over stdin/stdout
//! stencil-serve --listen 127.0.0.1:7077          # NDJSON over TCP
//!     [--cache-capacity 1024] [--shards 8]
//! ```
//!
//! See the crate docs ([`stencil_serve`]) and the README for the request and
//! response schema.

use std::sync::Arc;

use stencil_serve::service::{MappingService, ServiceConfig};

const USAGE: &str = "\
usage: stencil-serve [--stdin | --listen ADDR] [--cache-capacity N] [--shards N]
                     [--workers N] [--persist FILE]

modes (default: --stdin):
  --stdin              serve newline-delimited JSON requests from stdin to stdout
  --listen ADDR        bind ADDR (e.g. 127.0.0.1:7077) and serve TCP clients

options:
  --cache-capacity N   total cache entries across all shards (default 1024; 0 disables caching)
  --shards N           number of independently locked cache shards (default 8)
  --workers N          TCP worker-pool threads (default 4; connections are not
                       bound to threads, so N clients >> N workers is fine)
  --persist FILE       append-only cache persistence log: loaded (and compacted)
                       on start, written behind while serving, so cached
                       mappings survive restarts

protocol: one JSON request per line, one JSON response per line, e.g.
  printf '{\"id\":1,\"dims\":[50,48],\"nodes\":50,\"want_mapping\":false}\\n' | stencil-serve --stdin
";

// Duplicated from `stencil_bench::arg_value`: stencil-bench depends on this
// crate (for `loadgen`), so depending back on it would cycle.
fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let value_flags = [
        "--listen",
        "--cache-capacity",
        "--shards",
        "--workers",
        "--persist",
    ];
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--stdin" {
            i += 1;
        } else if value_flags.contains(&a.as_str()) {
            // the value must exist and must not itself be a flag
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => i += 2,
                _ => {
                    eprintln!("stencil-serve: {a} requires a value\n{USAGE}");
                    std::process::exit(2);
                }
            }
        } else {
            eprintln!("stencil-serve: unknown argument {a:?}\n{USAGE}");
            std::process::exit(2);
        }
    }

    let parse_num = |flag: &str, default: usize| -> usize {
        match arg_value(&args, flag) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("stencil-serve: {flag} expects a non-negative integer, got {v:?}");
                std::process::exit(2);
            }),
        }
    };
    let cfg = ServiceConfig {
        cache_capacity: parse_num("--cache-capacity", 1024),
        cache_shards: parse_num("--shards", 8),
        persist_path: arg_value(&args, "--persist").map(std::path::PathBuf::from),
    };
    let workers = parse_num("--workers", 4);
    let listen = arg_value(&args, "--listen");
    let service = match MappingService::open(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("stencil-serve: {e}");
            std::process::exit(1);
        }
    };
    if cfg.persist_path.is_some() {
        let report = service.load_report();
        eprintln!(
            "stencil-serve: persistence replayed {} records ({} skipped), {} entries warm",
            report.replayed, report.skipped, report.entries
        );
    }

    let result = match listen {
        Some(addr) => stencil_serve::server::serve_tcp(Arc::new(service), addr.as_str(), workers),
        None => stencil_serve::server::serve_stdin(&service),
    };
    if let Err(e) = result {
        eprintln!("stencil-serve: {e}");
        std::process::exit(1);
    }
}
