//! `stencil-serve` — the caching mapping service.
//!
//! ```text
//! stencil-serve --stdin                          # NDJSON over stdin/stdout
//! stencil-serve --listen 127.0.0.1:7077          # NDJSON over TCP
//!     [--cache-capacity 1024] [--shards 8]
//! ```
//!
//! See the crate docs ([`stencil_serve`]) and the README for the request and
//! response schema.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use stencil_serve::cache::EvictionPolicy;
use stencil_serve::server::{PollBackend, ServeOptions};
use stencil_serve::service::{MappingService, ServiceConfig, DEFAULT_COMPACT_BYTES};

const USAGE: &str = "\
usage: stencil-serve [--stdin | --listen ADDR] [--cache-capacity N] [--shards N]
                     [--workers N] [--persist FILE] [--compact-bytes N]
                     [--eviction lru|gdsf] [--max-conns N] [--read-timeout SECS]
                     [--degrade-queue N] [--poll-backend epoll|threadpoll]

modes (default: --stdin):
  --stdin              serve newline-delimited JSON requests from stdin to stdout
  --listen ADDR        bind ADDR (e.g. 127.0.0.1:7077) and serve TCP clients

options:
  --cache-capacity N   total cache entries across all shards (default 1024; 0 disables caching)
  --shards N           number of independently locked cache shards (default 8)
  --workers N          TCP worker-pool threads (default 4; connections are not
                       bound to threads, so N clients >> N workers is fine)
  --persist FILE       append-only cache persistence log: loaded (and compacted)
                       on start, written behind while serving, so cached
                       mappings survive restarts
  --compact-bytes N    compact the persistence log online once it exceeds N
                       bytes (default 67108864 = 64 MiB; 0 disables online
                       compaction)
  --eviction POLICY    cache eviction policy: lru (default) or gdsf
                       (cost-aware: expensive-to-recompute mappings are
                       retained over cheap ones)
  --max-conns N        shed TCP connections past N simultaneous clients with
                       an {\"error\":\"overloaded\"} line (default 1024)
  --read-timeout SECS  reap connections stalled mid-line for SECS seconds
                       (default 10; idle keep-alives are never reaped)
  --degrade-queue N    serve cost-only responses while the worker queue holds
                       N or more connections (default: off)
  --poll-backend B     TCP readiness backend: epoll (default; idle connections
                       cost zero CPU, Linux only, falls back automatically) or
                       threadpoll (portable polling loop, idle cost grows with
                       connection count)

signals: SIGTERM drains — the listener stops accepting, in-flight lines are
answered, the persistence log is flushed and compacted, and the process
exits 0.

protocol: one JSON request per line, one JSON response per line, e.g.
  printf '{\"id\":1,\"dims\":[50,48],\"nodes\":50,\"want_mapping\":false}\\n' | stencil-serve --stdin
";

// Duplicated from `stencil_bench::arg_value`: stencil-bench depends on this
// crate (for `loadgen`), so depending back on it would cycle.
fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// SIGTERM handler plumbing: the handler must be a plain `extern "C"` fn, so
/// the shutdown flag it sets lives in a process-global `OnceLock`.  Both the
/// `OnceLock::get` (one atomic load) and the `AtomicBool::store` are
/// async-signal-safe: no allocation, no locking.
#[cfg(unix)]
mod sigterm {
    use super::*;

    static SHUTDOWN: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    const SIGTERM: i32 = 15;

    extern "C" {
        // `signal(2)` from libc, which std already links.  Good enough here:
        // one handler, installed once, no SA_RESTART subtleties matter
        // because the accept loop is non-blocking and polls the flag.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigterm(_sig: i32) {
        if let Some(flag) = SHUTDOWN.get() {
            flag.store(true, Ordering::Release);
        }
    }

    pub fn install(flag: Arc<AtomicBool>) {
        let _ = SHUTDOWN.set(flag);
        unsafe {
            signal(SIGTERM, on_sigterm as *const () as usize);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let value_flags = [
        "--listen",
        "--cache-capacity",
        "--shards",
        "--workers",
        "--persist",
        "--compact-bytes",
        "--eviction",
        "--max-conns",
        "--read-timeout",
        "--degrade-queue",
        "--poll-backend",
    ];
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--stdin" {
            i += 1;
        } else if value_flags.contains(&a.as_str()) {
            // the value must exist and must not itself be a flag
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => i += 2,
                _ => {
                    eprintln!("stencil-serve: {a} requires a value\n{USAGE}");
                    std::process::exit(2);
                }
            }
        } else {
            eprintln!("stencil-serve: unknown argument {a:?}\n{USAGE}");
            std::process::exit(2);
        }
    }

    let parse_num = |flag: &str, default: usize| -> usize {
        match arg_value(&args, flag) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("stencil-serve: {flag} expects a non-negative integer, got {v:?}");
                std::process::exit(2);
            }),
        }
    };
    let eviction = match arg_value(&args, "--eviction") {
        None => EvictionPolicy::Lru,
        Some(name) => EvictionPolicy::from_name(&name).unwrap_or_else(|| {
            eprintln!("stencil-serve: --eviction expects 'lru' or 'gdsf', got {name:?}");
            std::process::exit(2);
        }),
    };
    let cfg = ServiceConfig {
        cache_capacity: parse_num("--cache-capacity", 1024),
        cache_shards: parse_num("--shards", 8),
        persist_path: arg_value(&args, "--persist").map(std::path::PathBuf::from),
        eviction,
        compact_bytes: parse_num("--compact-bytes", DEFAULT_COMPACT_BYTES as usize) as u64,
    };
    let defaults = ServeOptions::default();
    let opts = ServeOptions {
        workers: parse_num("--workers", 4),
        max_conns: parse_num("--max-conns", 1024),
        read_timeout: std::time::Duration::from_secs(parse_num(
            "--read-timeout",
            defaults.read_timeout.as_secs() as usize,
        ) as u64),
        degrade_queue: parse_num("--degrade-queue", defaults.degrade_queue),
        write_timeout: defaults.write_timeout,
        poll_backend: match arg_value(&args, "--poll-backend") {
            None => PollBackend::default(),
            Some(name) => PollBackend::from_name(&name).unwrap_or_else(|e| {
                eprintln!("stencil-serve: {e}");
                std::process::exit(2);
            }),
        },
    };
    let listen = arg_value(&args, "--listen");
    let service = match MappingService::open(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("stencil-serve: {e}");
            std::process::exit(1);
        }
    };
    if cfg.persist_path.is_some() {
        let report = service.load_report();
        eprintln!(
            "stencil-serve: persistence replayed {} records ({} skipped), {} entries warm",
            report.replayed, report.skipped, report.entries
        );
    }
    let service = Arc::new(service);

    let shutdown = Arc::new(AtomicBool::new(false));
    #[cfg(unix)]
    sigterm::install(Arc::clone(&shutdown));

    let result = match listen {
        Some(addr) => stencil_serve::server::serve_tcp_with(
            Arc::clone(&service),
            addr.as_str(),
            opts,
            Arc::clone(&shutdown),
        ),
        None => stencil_serve::server::serve_stdin(&service),
    };
    if let Err(e) = result {
        eprintln!("stencil-serve: {e}");
        std::process::exit(1);
    }
    // Clean exit (stdin EOF or SIGTERM drain): make the persistence log both
    // durable and compact before handing the process back.
    service.flush_persistence();
    service.compact_persistence();
    if shutdown.load(Ordering::Acquire) {
        eprintln!("stencil-serve: drained on SIGTERM; persistence flushed and compacted");
    }
    std::process::exit(0);
}
