//! `stencil-serve` — the caching mapping service and its router.
//!
//! ```text
//! stencil-serve --stdin                          # NDJSON over stdin/stdout
//! stencil-serve --listen 127.0.0.1:7077          # NDJSON over TCP
//!     [--cache-capacity 1024] [--shards 8]
//! stencil-serve --listen 127.0.0.1:7070 \
//!     --route 127.0.0.1:7077,127.0.0.1:7078     # consistent-hash router
//! stencil-serve --handoff 127.0.0.1:7077 --persist warm.log  # ship a log
//! ```
//!
//! See `docs/OPERATIONS.md` for the full operator's manual,
//! `docs/PROTOCOL.md` for the wire protocol, and the crate docs
//! ([`stencil_serve`]) for the library API.

use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use stencil_serve::cache::EvictionPolicy;
use stencil_serve::json::{base64_decode, Value};
use stencil_serve::router::{Router, DEFAULT_ROUTE_TIMEOUT};
use stencil_serve::server::{LineHandler, PollBackend, ServeOptions};
use stencil_serve::service::{MappingService, ServiceConfig, DEFAULT_COMPACT_BYTES};

const USAGE: &str = "\
usage: stencil-serve [--stdin | --listen ADDR] [--cache-capacity N] [--shards N]
                     [--workers N] [--persist FILE] [--compact-bytes N]
                     [--eviction lru|gdsf] [--max-conns N] [--read-timeout SECS]
                     [--degrade-queue N] [--poll-backend epoll|threadpoll]
                     [--route B1,B2,... [--replicas R]] [--route-timeout SECS]
       stencil-serve --handoff ADDR --persist FILE

modes (default: --stdin):
  --stdin              serve newline-delimited JSON requests from stdin to stdout
  --listen ADDR        bind ADDR (e.g. 127.0.0.1:7077) and serve TCP clients
  --route B1,B2,...    route mode: instead of computing locally, forward each
                       request to one of the comma-separated backend servers
                       (host:port each), picked by consistent-hashing its
                       canonical key; combine with --listen (or --stdin) for
                       the frontend.  Cache/persistence flags are ignored —
                       caching happens on the backends.
  --handoff ADDR       one-shot client: ask the backend at ADDR to flush and
                       compact its persistence log and ship it; the log is
                       written to the --persist FILE so a new backend can
                       start warm from it.  Exits after the transfer.

options:
  --cache-capacity N   total cache entries across all shards (default 1024; 0 disables caching)
  --shards N           number of independently locked cache shards (default 8)
  --workers N          TCP worker-pool threads (default 4; connections are not
                       bound to threads, so N clients >> N workers is fine)
  --persist FILE       append-only cache persistence log: loaded (and compacted)
                       on start, written behind while serving, so cached
                       mappings survive restarts
  --compact-bytes N    compact the persistence log online once it exceeds N
                       bytes (default 67108864 = 64 MiB; 0 disables online
                       compaction)
  --eviction POLICY    cache eviction policy: lru (default) or gdsf
                       (cost-aware: expensive-to-recompute mappings are
                       retained over cheap ones)
  --max-conns N        shed TCP connections past N simultaneous clients with
                       an {\"error\":\"overloaded\"} line (default 1024)
  --read-timeout SECS  reap connections stalled mid-line for SECS seconds
                       (default 10; idle keep-alives are never reaped)
  --degrade-queue N    serve cost-only responses while the worker queue holds
                       N or more connections (default: off)
  --poll-backend B     TCP readiness backend: epoll (default; idle connections
                       cost zero CPU, Linux only, falls back automatically) or
                       threadpoll (portable polling loop, idle cost grows with
                       connection count)
  --replicas R         route mode: own each key on the R distinct ring-successor
                       backends (default 1).  Misses write through to every
                       replica; reads serve from the primary and fail over in
                       ring order, so any single backend can die without error
                       lines.  Requires R <= number of backends.
  --route-timeout SECS per-forward deadline in route mode, covering connect,
                       write and response read (default 10); a backend (and
                       with --replicas, every replica) that cannot answer in
                       time yields one {\"error\":\"backend unavailable\"} line
                       instead of a hang

signals: SIGTERM drains — the listener stops accepting, in-flight lines are
answered, the persistence log is flushed and compacted, and the process
exits 0.

protocol: one JSON request per line, one JSON response per line, e.g.
  printf '{\"id\":1,\"dims\":[50,48],\"nodes\":50,\"want_mapping\":false}\\n' | stencil-serve --stdin
";

// Duplicated from `stencil_bench::arg_value`: stencil-bench depends on this
// crate (for `loadgen`), so depending back on it would cycle.
fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// SIGTERM handler plumbing: the handler must be a plain `extern "C"` fn, so
/// the shutdown flag it sets lives in a process-global `OnceLock`.  Both the
/// `OnceLock::get` (one atomic load) and the `AtomicBool::store` are
/// async-signal-safe: no allocation, no locking.
#[cfg(unix)]
mod sigterm {
    use super::*;

    static SHUTDOWN: OnceLock<Arc<AtomicBool>> = OnceLock::new();

    const SIGTERM: i32 = 15;

    extern "C" {
        // `signal(2)` from libc, which std already links.  Good enough here:
        // one handler, installed once, no SA_RESTART subtleties matter
        // because the accept loop is non-blocking and polls the flag.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigterm(_sig: i32) {
        if let Some(flag) = SHUTDOWN.get() {
            flag.store(true, Ordering::Release);
        }
    }

    pub fn install(flag: Arc<AtomicBool>) {
        let _ = SHUTDOWN.set(flag);
        unsafe {
            signal(SIGTERM, on_sigterm as *const () as usize);
        }
    }
}

/// The `--handoff` client: asks the backend at `addr` to flush + compact
/// its persistence log and ship it, then writes the decoded log to `dest`.
/// A fresh backend started with `--persist dest` replays it and answers the
/// shipped keys as cache hits from its first request on.
fn run_handoff(addr: &str, dest: &std::path::Path) -> Result<(), String> {
    let mut conn =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    conn.write_all(b"{\"admin\":\"handoff\"}\n")
        .and_then(|()| conn.flush())
        .map_err(|e| format!("cannot send the handoff request: {e}"))?;
    let mut line = String::new();
    BufReader::new(conn)
        .read_line(&mut line)
        .map_err(|e| format!("cannot read the handoff response: {e}"))?;
    let v =
        Value::parse(line.trim_end()).map_err(|e| format!("malformed handoff response: {e}"))?;
    if v.get("status").and_then(Value::as_str) != Some("ok") {
        let reason = v
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("malformed response");
        return Err(format!("backend refused the handoff: {reason}"));
    }
    let log = v
        .get("log")
        .and_then(Value::as_str)
        .ok_or("handoff response carries no log")?;
    let bytes = base64_decode(log).map_err(|e| format!("undecodable log payload: {e}"))?;
    std::fs::write(dest, &bytes).map_err(|e| format!("cannot write {}: {e}", dest.display()))?;
    eprintln!(
        "stencil-serve: handoff from {addr}: {} entries, {} bytes -> {}",
        v.get("entries").and_then(Value::as_u64).unwrap_or(0),
        bytes.len(),
        dest.display()
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let value_flags = [
        "--listen",
        "--cache-capacity",
        "--shards",
        "--workers",
        "--persist",
        "--compact-bytes",
        "--eviction",
        "--max-conns",
        "--read-timeout",
        "--degrade-queue",
        "--poll-backend",
        "--route",
        "--replicas",
        "--route-timeout",
        "--handoff",
    ];
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--stdin" {
            i += 1;
        } else if value_flags.contains(&a.as_str()) {
            // the value must exist and must not itself be a flag
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => i += 2,
                _ => {
                    eprintln!("stencil-serve: {a} requires a value\n{USAGE}");
                    std::process::exit(2);
                }
            }
        } else {
            eprintln!("stencil-serve: unknown argument {a:?}\n{USAGE}");
            std::process::exit(2);
        }
    }

    let parse_num = |flag: &str, default: usize| -> usize {
        match arg_value(&args, flag) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("stencil-serve: {flag} expects a non-negative integer, got {v:?}");
                std::process::exit(2);
            }),
        }
    };
    let eviction = match arg_value(&args, "--eviction") {
        None => EvictionPolicy::Lru,
        Some(name) => EvictionPolicy::from_name(&name).unwrap_or_else(|| {
            eprintln!("stencil-serve: --eviction expects 'lru' or 'gdsf', got {name:?}");
            std::process::exit(2);
        }),
    };
    let cfg = ServiceConfig {
        cache_capacity: parse_num("--cache-capacity", 1024),
        cache_shards: parse_num("--shards", 8),
        persist_path: arg_value(&args, "--persist").map(std::path::PathBuf::from),
        eviction,
        compact_bytes: parse_num("--compact-bytes", DEFAULT_COMPACT_BYTES as usize) as u64,
    };
    let defaults = ServeOptions::default();
    let opts = ServeOptions {
        workers: parse_num("--workers", 4),
        max_conns: parse_num("--max-conns", 1024),
        read_timeout: std::time::Duration::from_secs(parse_num(
            "--read-timeout",
            defaults.read_timeout.as_secs() as usize,
        ) as u64),
        degrade_queue: parse_num("--degrade-queue", defaults.degrade_queue),
        write_timeout: defaults.write_timeout,
        poll_backend: match arg_value(&args, "--poll-backend") {
            None => PollBackend::default(),
            Some(name) => PollBackend::from_name(&name).unwrap_or_else(|e| {
                eprintln!("stencil-serve: {e}");
                std::process::exit(2);
            }),
        },
    };
    let listen = arg_value(&args, "--listen");

    // --handoff: one-shot client, no frontend, no local service
    if let Some(addr) = arg_value(&args, "--handoff") {
        let Some(dest) = arg_value(&args, "--persist") else {
            eprintln!("stencil-serve: --handoff needs --persist FILE as the destination\n{USAGE}");
            std::process::exit(2);
        };
        if let Err(e) = run_handoff(&addr, std::path::Path::new(&dest)) {
            eprintln!("stencil-serve: handoff: {e}");
            std::process::exit(1);
        }
        std::process::exit(0);
    }

    // --route: serve the same frontends, but behind a consistent-hash
    // router instead of a local computing service
    if let Some(list) = arg_value(&args, "--route") {
        if arg_value(&args, "--persist").is_some() {
            eprintln!(
                "stencil-serve: --persist is ignored in route mode (caching and persistence \
                 happen on the backends)"
            );
        }
        let specs: Vec<String> = list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let timeout = std::time::Duration::from_secs(parse_num(
            "--route-timeout",
            DEFAULT_ROUTE_TIMEOUT.as_secs() as usize,
        ) as u64);
        let replicas = parse_num("--replicas", 1);
        let router = match Router::new(&specs, replicas, timeout) {
            Ok(r) => Arc::new(r),
            Err(e) => {
                eprintln!("stencil-serve: {e}");
                std::process::exit(2);
            }
        };
        eprintln!(
            "stencil-serve: routing across {} backends ({} replica{} per key): {}",
            specs.len(),
            replicas,
            if replicas == 1 { "" } else { "s" },
            specs.join(", ")
        );
        let shutdown = Arc::new(AtomicBool::new(false));
        #[cfg(unix)]
        sigterm::install(Arc::clone(&shutdown));
        let handler: Arc<dyn LineHandler> = Arc::clone(&router) as Arc<dyn LineHandler>;
        let result = match listen {
            Some(addr) => stencil_serve::server::serve_tcp_with(
                handler,
                addr.as_str(),
                opts,
                Arc::clone(&shutdown),
            ),
            None => stencil_serve::server::serve_stdin(&*router),
        };
        if let Err(e) = result {
            eprintln!("stencil-serve: {e}");
            std::process::exit(1);
        }
        let stats = router.stats();
        eprintln!(
            "stencil-serve: router drained; {} forwarded, {} unavailable, {} dials, \
             {} failovers, {} fanouts",
            stats.forwarded, stats.unavailable, stats.reconnects, stats.failovers, stats.fanouts
        );
        std::process::exit(0);
    }

    let service = match MappingService::open(&cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("stencil-serve: {e}");
            std::process::exit(1);
        }
    };
    if cfg.persist_path.is_some() {
        let report = service.load_report();
        eprintln!(
            "stencil-serve: persistence replayed {} records ({} skipped), {} entries warm",
            report.replayed, report.skipped, report.entries
        );
    }
    let service = Arc::new(service);

    let shutdown = Arc::new(AtomicBool::new(false));
    #[cfg(unix)]
    sigterm::install(Arc::clone(&shutdown));

    let result = match listen {
        Some(addr) => {
            let handler: Arc<dyn LineHandler> = Arc::clone(&service) as Arc<dyn LineHandler>;
            stencil_serve::server::serve_tcp_with(
                handler,
                addr.as_str(),
                opts,
                Arc::clone(&shutdown),
            )
        }
        None => stencil_serve::server::serve_stdin(&*service),
    };
    if let Err(e) = result {
        eprintln!("stencil-serve: {e}");
        std::process::exit(1);
    }
    // Clean exit (stdin EOF or SIGTERM drain): make the persistence log both
    // durable and compact before handing the process back.
    service.flush_persistence();
    service.compact_persistence();
    if shutdown.load(Ordering::Acquire) {
        eprintln!("stencil-serve: drained on SIGTERM; persistence flushed and compacted");
    }
    std::process::exit(0);
}
