//! A sharded cache for mapping results with pluggable eviction.
//!
//! This is the "cache" step of the request lifecycle documented in
//! `docs/ARCHITECTURE.md`; the keys it stores are the canonical
//! [`CacheKey`](crate::service::CacheKey)s the router also hashes for
//! shard placement.
//!
//! The cache is split into independently locked shards; a key is assigned to
//! a shard by its hash, so concurrent requests for different keys rarely
//! contend on the same mutex.  Each shard keeps a hash map from key to slot
//! index plus an intrusive doubly-linked recency list over a slot arena,
//! giving O(1) lookup, touch and insert without per-entry allocation after
//! the arena has grown to capacity.
//!
//! Two eviction policies share that structure (see [`EvictionPolicy`]):
//!
//! * **LRU** (default): evict the recency-list tail, O(1).  This is the
//!   byte-stable policy every golden transcript is pinned to.
//! * **GDSF** (Greedy-Dual, size/frequency-flattened to *cost*): each entry
//!   carries an integer recompute cost; its priority is `clock + cost`,
//!   refreshed on every hit, and eviction removes the minimum-priority entry
//!   (least recently used among ties), advancing the shard clock to the
//!   evicted priority.  Expensive-to-recompute entries (a multilevel viem
//!   mapping at ~45 ms) therefore outlive floods of cheap ones (rank-local
//!   mappings at ~1 ms) until the clock ages them out.  With uniform costs
//!   the priority order collapses to recency order, so GDSF degenerates to
//!   *exactly* LRU — the property tests pin that equivalence.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const NIL: usize = usize::MAX;

/// Which entry a full shard evicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the least recently used entry (the default; byte-stable with
    /// every existing golden transcript).
    #[default]
    Lru,
    /// Greedy-Dual: evict the entry with the smallest `clock + cost`
    /// priority, so high-recompute-cost entries are retained longer.
    Gdsf,
}

impl EvictionPolicy {
    /// Parses a policy name as spelled on the CLI (`--eviction {lru,gdsf}`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "lru" => Some(EvictionPolicy::Lru),
            "gdsf" => Some(EvictionPolicy::Gdsf),
            _ => None,
        }
    }
}

struct Slot<K, V> {
    key: K,
    value: V,
    /// Recompute cost, set at insert time (GDSF only; 1 under LRU).
    cost: u64,
    /// Greedy-Dual priority `clock_at_last_use + cost` (unused under LRU).
    h: u64,
    prev: usize,
    next: usize,
}

struct Shard<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    /// Most recently used slot.
    head: usize,
    /// Least recently used slot.
    tail: usize,
    capacity: usize,
    policy: EvictionPolicy,
    /// GDSF aging clock: the priority of the last evicted entry (monotone).
    clock: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> Shard<K, V> {
    fn new(capacity: usize, policy: EvictionPolicy) -> Self {
        Shard {
            map: HashMap::with_capacity(capacity.min(1024)),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            policy,
            clock: 0,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn get(&mut self, key: &K) -> Option<(V, bool)> {
        let idx = *self.map.get(key)?;
        let was_mru = self.head == idx;
        if self.policy == EvictionPolicy::Gdsf {
            // a hit re-earns the entry its full cost above the current clock
            self.slots[idx].h = self.clock.saturating_add(self.slots[idx].cost);
        }
        self.unlink(idx);
        self.push_front(idx);
        Some((self.slots[idx].value.clone(), was_mru))
    }

    /// The eviction victim for a full shard: the recency tail under LRU, the
    /// minimum-priority slot under GDSF.  The tail-to-head scan keeps the
    /// *first* (most tail-ward) slot among equal priorities, so with uniform
    /// costs — where priorities are non-increasing from head to tail — the
    /// victim is exactly the LRU tail.
    fn victim(&self) -> usize {
        match self.policy {
            EvictionPolicy::Lru => self.tail,
            EvictionPolicy::Gdsf => {
                let mut best = self.tail;
                let mut idx = self.tail;
                while idx != NIL {
                    if self.slots[idx].h < self.slots[best].h {
                        best = idx;
                    }
                    idx = self.slots[idx].prev;
                }
                best
            }
        }
    }

    fn insert(&mut self, key: K, value: V, cost: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.slots[idx].cost = cost;
            self.slots[idx].h = self.clock.saturating_add(cost);
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() == self.capacity {
            // evict the policy's victim and reuse its slot
            let victim = self.victim();
            debug_assert_ne!(victim, NIL);
            if self.policy == EvictionPolicy::Gdsf {
                // age the shard: everything cheaper than the victim is gone,
                // so future entries start from its priority
                self.clock = self.clock.max(self.slots[victim].h);
            }
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.free.push(victim);
        }
        // priced after any eviction, so the clock advance is reflected
        let h = self.clock.saturating_add(cost);
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot {
                    key: key.clone(),
                    value,
                    cost,
                    h,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    cost,
                    h,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn keys_mru_first(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.head;
        while idx != NIL {
            out.push(self.slots[idx].key.clone());
            idx = self.slots[idx].next;
        }
        out
    }

    fn entries_lru_first(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut idx = self.tail;
        while idx != NIL {
            out.push((self.slots[idx].key.clone(), self.slots[idx].value.clone()));
            idx = self.slots[idx].prev;
        }
        out
    }
}

/// Cache hit/miss counters (monotonic, for diagnostics and the load
/// generator's hit-rate report).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of `get` calls that found the key.
    pub hits: u64,
    /// Number of `get` calls that missed.
    pub misses: u64,
    /// Number of resident entries across all shards.
    pub len: usize,
}

/// A thread-safe, sharded cache (LRU by default, GDSF via
/// [`ShardedLru::with_policy`]).
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    policy: EvictionPolicy,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// Creates an LRU cache holding at most `capacity` entries spread over
    /// `shards` shards (each shard holds `ceil(capacity / shards)`, so the
    /// effective total is `shards * ceil(capacity / shards)`).  A capacity
    /// of 0 disables caching entirely (every `get` misses); the shard count
    /// is clamped to at least 1.
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self::with_policy(capacity, shards, EvictionPolicy::Lru)
    }

    /// Like [`ShardedLru::new`] with an explicit eviction policy.
    pub fn with_policy(capacity: usize, shards: usize, policy: EvictionPolicy) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard, policy)))
                .collect(),
            policy,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The eviction policy this cache was built with.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// The shard index a key belongs to (stable for the cache's lifetime;
    /// exposed so tests can construct single-shard workloads).
    pub fn shard_of(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&self, key: &K) -> Option<V> {
        self.get_tracking_mru(key).map(|(v, _)| v)
    }

    /// Like [`ShardedLru::get`], but also reports whether the key was
    /// *already* most recently used in its shard before this lookup.  The
    /// persistence layer uses this to skip touch records that would replay
    /// as no-ops — for a hot key hit in a loop, only the first touch ever
    /// reaches the log.
    pub fn get_tracking_mru(&self, key: &K) -> Option<(V, bool)> {
        let shard = &self.shards[self.shard_of(key)];
        let got = shard.lock().expect("cache shard poisoned").get(key);
        match got {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Marks `key` most recently used if present, without counting towards
    /// the hit/miss statistics.  Used when replaying a persisted touch
    /// record: the recency effect must be reproduced, but the replay is not
    /// request traffic.  Returns whether the key was resident.
    pub fn touch(&self, key: &K) -> bool {
        let shard = &self.shards[self.shard_of(key)];
        shard
            .lock()
            .expect("cache shard poisoned")
            .get(key)
            .is_some()
    }

    /// Whether `key` is resident, without bumping recency or counting
    /// towards the hit/miss statistics.  The absorb path (a router streaming
    /// moved key ranges during a reshard) uses this to skip entries the
    /// backend already holds without perturbing eviction order.
    pub fn contains(&self, key: &K) -> bool {
        self.shards[self.shard_of(key)]
            .lock()
            .expect("cache shard poisoned")
            .map
            .contains_key(key)
    }

    /// Inserts (or refreshes) `key` with a unit recompute cost, evicting the
    /// shard's policy victim if the shard is full.  Under LRU the cost is
    /// ignored; under GDSF this is shorthand for the cheapest cost class.
    pub fn insert(&self, key: K, value: V) {
        self.insert_with_cost(key, value, 1);
    }

    /// Inserts (or refreshes) `key` carrying an explicit recompute cost.
    /// Under GDSF the cost scales retention (priority `clock + cost`); under
    /// LRU it is ignored, so callers can pass real costs unconditionally.
    pub fn insert_with_cost(&self, key: K, value: V, cost: u64) {
        let shard = &self.shards[self.shard_of(&key)];
        shard
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value, cost);
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters and entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            len: self.len(),
        }
    }

    /// The keys of one shard, most recently used first (diagnostics; used by
    /// the LRU ordering tests).
    pub fn shard_keys_mru_first(&self, shard: usize) -> Vec<K> {
        self.shards[shard]
            .lock()
            .expect("cache shard poisoned")
            .keys_mru_first()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The `(key, value)` pairs of one shard, least recently used first,
    /// without touching recency.  Re-inserting the pairs of every shard in
    /// this order into an empty cache of the same geometry reproduces the
    /// exact per-shard contents *and* recency order — the write-behind
    /// persistence layer compacts its log this way, and the reload property
    /// test uses it as the oracle.
    pub fn shard_entries_lru_first(&self, shard: usize) -> Vec<(K, V)> {
        self.shards[shard]
            .lock()
            .expect("cache shard poisoned")
            .entries_lru_first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_shard(capacity: usize) -> ShardedLru<u64, u64> {
        ShardedLru::new(capacity, 1)
    }

    #[test]
    fn lru_evicts_least_recently_used_in_order() {
        let c = single_shard(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        assert_eq!(c.shard_keys_mru_first(0), vec![3, 2, 1]);
        // touching 1 protects it; 2 becomes LRU
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.shard_keys_mru_first(0), vec![1, 3, 2]);
        c.insert(4, 40);
        assert_eq!(c.get(&2), None, "2 was LRU and must be evicted");
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.get(&4), Some(40));
        assert_eq!(c.len(), 3);
        // continued inserts evict in exact recency order: 1, 3, 4 ...
        c.insert(5, 50);
        assert_eq!(c.get(&1), None);
        c.insert(6, 60);
        assert_eq!(c.get(&3), None);
        assert_eq!(c.shard_keys_mru_first(0), vec![6, 5, 4]);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let c = single_shard(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh: 1 becomes MRU with the new value
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let c = single_shard(2);
        assert!(c.is_empty());
        c.insert(1, 1);
        c.get(&1);
        c.get(&1);
        c.get(&9);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.len), (2, 1, 1));
    }

    #[test]
    fn capacity_is_split_across_shards() {
        let c: ShardedLru<u64, u64> = ShardedLru::new(8, 4);
        assert_eq!(c.num_shards(), 4);
        for k in 0..1000u64 {
            c.insert(k, k);
        }
        // each shard holds at most ceil(8/4) = 2 entries
        assert!(c.len() <= 8);
        for shard in 0..4 {
            assert!(c.shard_keys_mru_first(shard).len() <= 2);
        }
    }

    #[test]
    fn get_tracking_mru_reports_prior_recency() {
        let c = single_shard(3);
        c.insert(1, 10);
        c.insert(2, 20);
        // 2 is MRU: its hit reports was_mru and changes nothing
        assert_eq!(c.get_tracking_mru(&2), Some((20, true)));
        // 1 is not MRU: its hit reports !was_mru and promotes it
        assert_eq!(c.get_tracking_mru(&1), Some((10, false)));
        assert_eq!(c.get_tracking_mru(&1), Some((10, true)));
        assert_eq!(c.get_tracking_mru(&9), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (3, 1));
    }

    #[test]
    fn shard_entries_lru_first_reproduces_the_cache_when_replayed() {
        let c = single_shard(3);
        for (k, v) in [(1, 10), (2, 20), (3, 30), (4, 40)] {
            c.insert(k, v);
        }
        c.get(&2); // touch: recency becomes MRU [2, 4, 3]
        let dump = c.shard_entries_lru_first(0);
        assert_eq!(dump, vec![(3, 30), (4, 40), (2, 20)]);
        // dumping must not have touched recency
        assert_eq!(c.shard_keys_mru_first(0), vec![2, 4, 3]);
        // replaying the dump into a fresh cache reproduces order and values
        let fresh = single_shard(3);
        for (k, v) in dump {
            fresh.insert(k, v);
        }
        assert_eq!(fresh.shard_keys_mru_first(0), c.shard_keys_mru_first(0));
        assert_eq!(fresh.get(&2), Some(20));
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let c = single_shard(0);
        c.insert(1, 1);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.len(), 0);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 1));
    }

    fn gdsf_shard(capacity: usize) -> ShardedLru<u64, u64> {
        ShardedLru::with_policy(capacity, 1, EvictionPolicy::Gdsf)
    }

    /// With uniform costs, GDSF priorities are non-increasing from MRU to
    /// LRU, so the minimum-priority victim is always the recency tail —
    /// i.e. GDSF degenerates to exactly LRU.  Replays a mixed workload on
    /// both policies and checks every observable step.
    #[test]
    fn gdsf_with_uniform_cost_is_exactly_lru() {
        let lru = single_shard(3);
        let gdsf = gdsf_shard(3);
        // deterministic mixed workload: inserts, re-inserts, touches, misses
        let ops: &[(u8, u64)] = &[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 1),
            (0, 4), // evicts
            (1, 2), // miss on both
            (0, 5),
            (1, 3),
            (0, 1), // refresh of a resident key
            (0, 6),
            (1, 4),
            (0, 7),
        ];
        for &(kind, k) in ops {
            match kind {
                0 => {
                    lru.insert(k, k * 10);
                    gdsf.insert_with_cost(k, k * 10, 7); // uniform, non-unit
                }
                _ => {
                    assert_eq!(lru.get(&k), gdsf.get(&k), "divergence touching {k}");
                }
            }
            assert_eq!(
                lru.shard_keys_mru_first(0),
                gdsf.shard_keys_mru_first(0),
                "recency order diverged after op on {k}"
            );
        }
    }

    /// A single expensive entry (cost 1000, the ~45 ms viem class) must
    /// survive a flood of cheap entries (cost 1, the ~1 ms rank-local
    /// class) that overflows the shard many times over.
    #[test]
    fn gdsf_retains_expensive_entry_under_cheap_flood() {
        let c = gdsf_shard(4);
        c.insert_with_cost(100, 1, 1000);
        for k in 0..32u64 {
            c.insert_with_cost(k, k, 1);
        }
        assert_eq!(c.get(&100), Some(1), "expensive entry was evicted");
        // under LRU the same flood evicts it immediately
        let lru = single_shard(4);
        lru.insert_with_cost(100, 1, 1000); // cost ignored
        for k in 0..32u64 {
            lru.insert_with_cost(k, k, 1);
        }
        assert_eq!(lru.get(&100), None);
    }

    /// The clock ages idle expensive entries out: every eviction advances
    /// the shard clock to the victim's priority, so cheap-but-active
    /// entries eventually out-rank an expensive entry that is never hit
    /// again — GDSF is not a pin.
    #[test]
    fn gdsf_clock_eventually_ages_out_an_idle_expensive_entry() {
        let c = gdsf_shard(2);
        c.insert_with_cost(100, 1, 5);
        // each cheap insert evicts the previous cheap one, walking the
        // clock up by 1 per eviction until it passes the idle entry
        for k in 0..16u64 {
            c.insert_with_cost(k, k, 1);
        }
        assert_eq!(c.get(&100), None, "idle expensive entry must age out");
    }

    /// A hit re-earns an expensive entry its full priority, resetting the
    /// aging countdown.
    #[test]
    fn gdsf_hit_refreshes_priority() {
        let c = gdsf_shard(2);
        c.insert_with_cost(100, 1, 5);
        for round in 0..6u64 {
            for k in 0..3u64 {
                c.insert_with_cost(200 + round * 3 + k, k, 1);
            }
            assert_eq!(
                c.get(&100),
                Some(1),
                "refreshed entry evicted in round {round}"
            );
        }
    }
}
