//! Minimal JSON value model with a parser and a *compact* (single line)
//! writer, sized for the newline-delimited wire protocol.
//!
//! The build environment is offline, so `serde_json` is unavailable; the
//! service instead parses requests into this small [`Value`] enum and writes
//! responses with [`Value::compact`].  Only the shapes the protocol uses are
//! supported: objects, arrays, strings, finite numbers, booleans and null.
//! Unlike `stencil_bench::report::json` (a pretty-printing *emitter* for
//! report files), this module must also read, and must emit one-line
//! documents so that one response occupies exactly one line.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A finite number (non-finite values serialise as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a key in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one (rejects fractions,
    /// negatives and numbers beyond exact f64 integer range).
    pub fn as_usize(&self) -> Option<usize> {
        let x = self.as_f64()?;
        if x >= 0.0 && x.fract() == 0.0 && x < 9.0e15 {
            Some(x as usize)
        } else {
            None
        }
    }

    /// The value as a `u64` (same constraints as [`Value::as_usize`]).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_usize().map(|x| x as u64)
    }

    /// The value as an `i64`, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        let x = self.as_f64()?;
        if x.fract() == 0.0 && x.abs() < 9.0e15 {
            Some(x as i64)
        } else {
            None
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document. The entire input must be consumed (trailing
    /// whitespace excepted).
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Writes the value as compact single-line JSON.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => {
                if x.is_finite() {
                    if x.fract() == 0.0 && x.abs() < 9.0e15 {
                        out.push_str(&format!("{}", *x as i64));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts.  The parser is recursive,
/// so unbounded nesting would let one hostile request line overflow the
/// connection thread's stack and abort the whole process; the protocol
/// needs two levels (`batch` of objects of arrays of arrays).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn nested(&mut self, parse: fn(&mut Self) -> Result<Value, String>) -> Result<Value, String> {
        if self.depth == MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        self.depth += 1;
        let result = parse(self);
        self.depth -= 1;
        result
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // surrogate pairs are not needed by the protocol;
                            // lone surrogates map to the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input is a &str, so slices at
                    // char boundaries are valid)
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("invalid number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(Value::parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(Value::parse("\"hi\"").unwrap(), Value::str("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_usize(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn parses_string_escapes() {
        let v = Value::parse(r#""a\"b\nA\\""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\nA\\"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("tru").is_err());
    }

    #[test]
    fn rejects_hostile_nesting_without_overflowing() {
        // one line of 100k open brackets must error, not blow the stack
        let hostile = "[".repeat(100_000);
        let err = Value::parse(&hostile).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // ... while legitimate nesting well past the protocol's needs parses
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Value::parse(&deep).is_ok());
    }

    #[test]
    fn compact_roundtrips() {
        let original = r#"{"id":7,"dims":[12,8],"ok":true,"note":"a b","x":null,"f":1.25}"#;
        let v = Value::parse(original).unwrap();
        assert_eq!(v.compact(), original);
        assert_eq!(Value::parse(&v.compact()).unwrap(), v);
    }

    #[test]
    fn compact_is_single_line_and_escaped() {
        let v = Value::obj(vec![("s", Value::str("line1\nline2\t\"q\""))]);
        let text = v.compact();
        assert!(!text.contains('\n'));
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn numeric_accessors_validate() {
        assert_eq!(Value::Num(3.5).as_usize(), None);
        assert_eq!(Value::Num(-1.0).as_usize(), None);
        assert_eq!(Value::Num(7.0).as_u64(), Some(7));
        assert_eq!(Value::Num(-7.0).as_i64(), Some(-7));
        assert_eq!(Value::Bool(true).as_f64(), None);
    }
}
