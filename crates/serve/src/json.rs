//! Minimal JSON value model with a parser and a *compact* (single line)
//! writer, sized for the newline-delimited wire protocol.
//!
//! The build environment is offline, so `serde_json` is unavailable; the
//! service instead parses requests into this small [`Value`] enum and writes
//! responses with [`Value::compact`].  Only the shapes the protocol uses are
//! supported: objects, arrays, strings, finite numbers, booleans and null.
//! Unlike `stencil_bench::report::json` (a pretty-printing *emitter* for
//! report files), this module must also read, and must emit one-line
//! documents so that one response occupies exactly one line.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A finite number (non-finite values serialise as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a key in an object (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one (rejects fractions,
    /// negatives and numbers beyond exact f64 integer range).
    pub fn as_usize(&self) -> Option<usize> {
        let x = self.as_f64()?;
        if x >= 0.0 && x.fract() == 0.0 && x < 9.0e15 {
            Some(x as usize)
        } else {
            None
        }
    }

    /// The value as a `u64` (same constraints as [`Value::as_usize`]).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_usize().map(|x| x as u64)
    }

    /// The value as an `i64`, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        let x = self.as_f64()?;
        if x.fract() == 0.0 && x.abs() < 9.0e15 {
            Some(x as i64)
        } else {
            None
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document. The entire input must be consumed (trailing
    /// whitespace excepted).
    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Writes the value as compact single-line JSON.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Appends the value as compact single-line JSON to `out`.  The direct
    /// writers below ([`write_f64`], [`write_u32`], [`write_string`]) produce
    /// byte-identical output for the corresponding scalar shapes, so hot
    /// paths can stream fields without building a `Value` tree first.
    pub fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => write_f64(out, *x),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Appends a number exactly as [`Value::Num`] serialises it: integral finite
/// values inside exact-`i64` range print without a fraction, other finite
/// values use Rust's shortest round-trip `Display`, non-finite values become
/// `null`.  Shared by the tree writer and the direct response writer so the
/// two paths cannot drift.
pub fn write_f64(out: &mut String, x: f64) {
    use std::fmt::Write;
    if x.is_finite() {
        if x.fract() == 0.0 && x.abs() < 9.0e15 {
            let _ = write!(out, "{}", x as i64);
        } else {
            let _ = write!(out, "{x}");
        }
    } else {
        out.push_str("null");
    }
}

/// `DIGIT_PAIRS[2n..2n+2]` is the two-digit decimal rendering of `n`
/// (`00`–`99`): one table lookup per two digits instead of two divisions.
const DIGIT_PAIRS: [u8; 200] = {
    let mut d = [0u8; 200];
    let mut n = 0;
    while n < 100 {
        d[2 * n] = b'0' + (n / 10) as u8;
        d[2 * n + 1] = b'0' + (n % 10) as u8;
        n += 1;
    }
    d
};

/// Appends a `u32` in decimal without going through `f64` or `fmt`
/// machinery.  Produces the same digits as `write_f64(out, x as f64)` for
/// every `u32` (both print the exact integer), which keeps verbose node
/// tables byte-identical to the old `Value::Num(n as f64)` path.  This is
/// the per-entry inner loop of verbose table responses (grid-volume calls
/// per response), hence the pair table and the unchecked append.
#[inline]
pub fn write_u32(out: &mut String, mut x: u32) {
    let mut buf = [0u8; 10];
    let mut i = buf.len();
    while x >= 100 {
        let pair = (x % 100) as usize * 2;
        x /= 100;
        i -= 2;
        buf[i] = DIGIT_PAIRS[pair];
        buf[i + 1] = DIGIT_PAIRS[pair + 1];
    }
    if x >= 10 {
        let pair = x as usize * 2;
        i -= 2;
        buf[i] = DIGIT_PAIRS[pair];
        buf[i + 1] = DIGIT_PAIRS[pair + 1];
    } else {
        i -= 1;
        buf[i] = b'0' + x as u8;
    }
    // SAFETY: buf[i..] holds only ASCII digits, so appending the raw bytes
    // keeps the String valid UTF-8.
    unsafe { out.as_mut_vec() }.extend_from_slice(&buf[i..]);
}

/// Appends `[x0,x1,…]` for a `u32` slice: the whole array — brackets,
/// commas and digits — goes through one byte buffer reserved up front, so
/// the per-entry cost is a couple of byte pushes instead of a `String`
/// round-trip per number.  Digits are identical to [`write_u32`] (same pair
/// table), so the output stays byte-identical to the `Value` tree writer.
pub fn write_u32_array(out: &mut String, xs: &[u32]) {
    // SAFETY: every byte pushed below is ASCII ('[', ']', ',' or a digit),
    // so the String stays valid UTF-8.
    let v = unsafe { out.as_mut_vec() };
    v.reserve(xs.len() * 11 + 2);
    v.push(b'[');
    for (k, &x) in xs.iter().enumerate() {
        if k > 0 {
            v.push(b',');
        }
        if x < 10 {
            v.push(b'0' + x as u8);
        } else if x < 100 {
            let pair = x as usize * 2;
            v.push(DIGIT_PAIRS[pair]);
            v.push(DIGIT_PAIRS[pair + 1]);
        } else {
            let mut buf = [0u8; 10];
            let mut i = buf.len();
            let mut x = x;
            while x >= 100 {
                let pair = (x % 100) as usize * 2;
                x /= 100;
                i -= 2;
                buf[i] = DIGIT_PAIRS[pair];
                buf[i + 1] = DIGIT_PAIRS[pair + 1];
            }
            if x >= 10 {
                let pair = x as usize * 2;
                i -= 2;
                buf[i] = DIGIT_PAIRS[pair];
                buf[i + 1] = DIGIT_PAIRS[pair + 1];
            } else {
                i -= 1;
                buf[i] = b'0' + x as u8;
            }
            v.extend_from_slice(&buf[i..]);
        }
    }
    v.push(b']');
}

/// Appends a JSON string literal (quotes included), escaping exactly as the
/// tree writer does.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    // fast path for strings that need no escaping (ids, algorithm names,
    // base64 node tables — i.e. nearly everything the service writes)
    if s.bytes().all(|b| b >= 0x20 && b != b'"' && b != b'\\') {
        out.push_str(s);
        out.push('"');
        return;
    }
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Compact node-table codec
// ---------------------------------------------------------------------------
//
// The verbose wire form of a node table is a JSON array of integers — ~4
// bytes and one `f64` boxing per entry, which dominates the cache-hit path
// for paper-sized tables (4800 entries ≈ 19 KB of JSON).  The compact form
// (`"encoding":"compact"`) instead carries the table as one base64 string:
//
//   varint(len) · zigzag-varint(nodes[0] - 0) · zigzag-varint(nodes[1] -
//   nodes[0]) · …  → standard base64 (padded)
//
// Node tables are runs of equal or adjacent node ids, so the deltas are tiny
// and almost every entry costs one byte before base64.  The codec is
// self-delimiting (leading length) and rejects trailing garbage, so
// `decode_nodes_compact(encode_nodes_compact(t)) == t` exactly.

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Maximum number of table entries [`decode_nodes_compact`] accepts; caps
/// the memory one hostile compact string can make the decoder allocate
/// (2^28 entries would already be a 1 GiB table — far beyond any grid the
/// engine serves).
pub const MAX_COMPACT_ENTRIES: usize = 1 << 28;

/// Standard base64 (RFC 4648 alphabet, `=` padding) of arbitrary bytes.
/// Used by the compact node-table codec and by the warm-handoff admin
/// response, which ships a whole persistence log inside one JSON string.
pub fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        out.push(BASE64_ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(BASE64_ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            BASE64_ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            BASE64_ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes [`base64_encode`] output (strict: length must be a multiple of
/// four, padding only at the end).
pub fn base64_decode(s: &str) -> Result<Vec<u8>, String> {
    fn value_of(c: u8) -> Result<u32, String> {
        match c {
            b'A'..=b'Z' => Ok((c - b'A') as u32),
            b'a'..=b'z' => Ok((c - b'a') as u32 + 26),
            b'0'..=b'9' => Ok((c - b'0') as u32 + 52),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(format!("invalid base64 character {:?}", c as char)),
        }
    }
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!(
            "base64 length {} is not a multiple of 4",
            bytes.len()
        ));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        if pad > 0 && (!last || chunk[..4 - pad].contains(&b'=') || pad > 2) {
            return Err("misplaced base64 padding".to_string());
        }
        let n = (value_of(chunk[0])? << 18)
            | (value_of(chunk[1])? << 12)
            | if pad < 2 { value_of(chunk[2])? << 6 } else { 0 }
            | if pad < 1 { value_of(chunk[3])? } else { 0 };
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

fn push_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes
            .get(*pos)
            .ok_or("truncated varint in compact node table")?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err("varint overflows 64 bits".to_string());
        }
        x |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
        if shift > 63 {
            return Err("varint longer than 10 bytes".to_string());
        }
    }
}

fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

/// Encodes a node table in the compact wire form: base64 over
/// `varint(len)` followed by one zigzag varint per entry holding the delta
/// to the previous entry (the first delta is against 0).
pub fn encode_nodes_compact(nodes: &[u32]) -> String {
    let mut bytes = Vec::with_capacity(nodes.len() + 8);
    push_varint(&mut bytes, nodes.len() as u64);
    let mut prev = 0i64;
    for &n in nodes {
        push_varint(&mut bytes, zigzag(n as i64 - prev));
        prev = n as i64;
    }
    base64_encode(&bytes)
}

/// Decodes the compact wire form back into the node table.  Strict inverse
/// of [`encode_nodes_compact`]: rejects bad base64, truncated or overlong
/// payloads, deltas that leave `u32` range, and length prefixes beyond
/// [`MAX_COMPACT_ENTRIES`].
pub fn decode_nodes_compact(s: &str) -> Result<Vec<u32>, String> {
    let bytes = base64_decode(s)?;
    let mut pos = 0usize;
    let len = read_varint(&bytes, &mut pos)?;
    if len > MAX_COMPACT_ENTRIES as u64 {
        return Err(format!(
            "compact node table declares {len} entries (limit {MAX_COMPACT_ENTRIES})"
        ));
    }
    // every entry costs at least one payload byte, so a length prefix
    // larger than the remaining payload is a lie — reject it before
    // allocating entry-count-proportional memory
    if len as usize > bytes.len() - pos {
        return Err(format!(
            "compact node table declares {len} entries but carries {} bytes",
            bytes.len() - pos
        ));
    }
    let mut nodes = Vec::with_capacity(len as usize);
    let mut prev = 0i64;
    for _ in 0..len {
        let delta = unzigzag(read_varint(&bytes, &mut pos)?);
        let value = prev + delta;
        if !(0..=u32::MAX as i64).contains(&value) {
            return Err(format!("compact node table entry {value} outside u32"));
        }
        nodes.push(value as u32);
        prev = value;
    }
    if pos != bytes.len() {
        return Err(format!(
            "trailing bytes after compact node table ({} of {})",
            pos,
            bytes.len()
        ));
    }
    Ok(nodes)
}

/// Maximum container nesting the parser accepts.  The parser is recursive,
/// so unbounded nesting would let one hostile request line overflow the
/// connection thread's stack and abort the whole process; the protocol
/// needs two levels (`batch` of objects of arrays of arrays).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn nested(&mut self, parse: fn(&mut Self) -> Result<Value, String>) -> Result<Value, String> {
        if self.depth == MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        self.depth += 1;
        let result = parse(self);
        self.depth -= 1;
        result
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // surrogate pairs are not needed by the protocol;
                            // lone surrogates map to the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input is a &str, so slices at
                    // char boundaries are valid)
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("invalid number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(Value::parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(Value::parse("\"hi\"").unwrap(), Value::str("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_usize(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn parses_string_escapes() {
        let v = Value::parse(r#""a\"b\nA\\""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\nA\\"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
        assert!(Value::parse("1 2").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("tru").is_err());
    }

    #[test]
    fn rejects_hostile_nesting_without_overflowing() {
        // one line of 100k open brackets must error, not blow the stack
        let hostile = "[".repeat(100_000);
        let err = Value::parse(&hostile).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // ... while legitimate nesting well past the protocol's needs parses
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Value::parse(&deep).is_ok());
    }

    #[test]
    fn compact_roundtrips() {
        let original = r#"{"id":7,"dims":[12,8],"ok":true,"note":"a b","x":null,"f":1.25}"#;
        let v = Value::parse(original).unwrap();
        assert_eq!(v.compact(), original);
        assert_eq!(Value::parse(&v.compact()).unwrap(), v);
    }

    #[test]
    fn compact_is_single_line_and_escaped() {
        let v = Value::obj(vec![("s", Value::str("line1\nline2\t\"q\""))]);
        let text = v.compact();
        assert!(!text.contains('\n'));
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn compact_codec_roundtrips_known_tables() {
        for table in [
            vec![],
            vec![0u32],
            vec![0, 0, 0, 1, 1, 1, 2, 2, 2],
            vec![7, 3, 3, 0, u32::MAX, u32::MAX - 1, 0],
            (0..4800).map(|x| x / 48).collect::<Vec<u32>>(),
        ] {
            let encoded = encode_nodes_compact(&table);
            assert_eq!(decode_nodes_compact(&encoded).unwrap(), table, "{encoded}");
        }
    }

    #[test]
    fn compact_codec_is_dense_for_run_structured_tables() {
        // 4800 entries in 100 runs of 48: ~1 byte per entry before base64
        let table: Vec<u32> = (0..4800).map(|x| x / 48).collect();
        let encoded = encode_nodes_compact(&table);
        assert!(
            encoded.len() < 7000,
            "compact form is {} bytes",
            encoded.len()
        );
    }

    #[test]
    fn compact_decoder_rejects_malformed_payloads() {
        for (input, needle) in [
            ("%%%%", "invalid base64"),
            ("AAA", "multiple of 4"),
            ("A=AA", "padding"),
            ("====", "padding"),
            // varint(2 entries) but only one delta byte present
            (base64_encode(&[2, 2]).as_str(), "carries"),
            // length fits the byte count, but the delta varint is cut off
            (base64_encode(&[1, 0x80]).as_str(), "truncated"),
            // 11-byte varint
            (
                base64_encode(&[
                    0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 1,
                ])
                .as_str(),
                "varint",
            ),
            // declares an absurd entry count
            (
                base64_encode(&{
                    let mut b = Vec::new();
                    push_varint(&mut b, u64::MAX / 2);
                    b
                })
                .as_str(),
                "limit",
            ),
            // declares far more entries than it carries bytes: must be
            // rejected before any entry-count-proportional allocation
            (
                base64_encode(&{
                    let mut b = Vec::new();
                    push_varint(&mut b, (MAX_COMPACT_ENTRIES - 1) as u64);
                    b
                })
                .as_str(),
                "carries",
            ),
            // delta walks below zero
            (
                base64_encode(&{
                    let mut b = Vec::new();
                    push_varint(&mut b, 1);
                    push_varint(&mut b, zigzag(-1));
                    b
                })
                .as_str(),
                "outside u32",
            ),
            // trailing bytes after the declared entries
            (
                base64_encode(&{
                    let mut b = Vec::new();
                    push_varint(&mut b, 1);
                    push_varint(&mut b, zigzag(5));
                    b.push(0);
                    b
                })
                .as_str(),
                "trailing",
            ),
        ] {
            let err = decode_nodes_compact(input).unwrap_err();
            assert!(err.contains(needle), "{input:?}: {err}");
        }
    }

    #[test]
    fn base64_roundtrips_all_lengths() {
        for len in 0..10usize {
            let bytes: Vec<u8> = (0..len as u8)
                .map(|b| b.wrapping_mul(37).wrapping_add(11))
                .collect();
            let encoded = base64_encode(&bytes);
            assert_eq!(base64_decode(&encoded).unwrap(), bytes);
        }
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn direct_writers_match_the_tree_writer_byte_for_byte() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            4800.0,
            1.25,
            -3.5e-7,
            8.999e15,
            9.1e15,
            f64::MAX,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ] {
            let mut direct = String::new();
            write_f64(&mut direct, x);
            assert_eq!(direct, Value::Num(x).compact(), "f64 {x}");
        }
        for n in [0u32, 1, 9, 10, 47, 4799, 99_999, u32::MAX] {
            let mut direct = String::new();
            write_u32(&mut direct, n);
            assert_eq!(direct, Value::Num(n as f64).compact(), "u32 {n}");
        }
        for s in ["", "viem", "a b", "line1\nline2\t\"q\"\\", "\u{1}\u{1f}é"] {
            let mut direct = String::new();
            write_string(&mut direct, s);
            assert_eq!(direct, Value::str(s).compact(), "str {s:?}");
        }
    }

    #[test]
    fn numeric_accessors_validate() {
        assert_eq!(Value::Num(3.5).as_usize(), None);
        assert_eq!(Value::Num(-1.0).as_usize(), None);
        assert_eq!(Value::Num(7.0).as_u64(), Some(7));
        assert_eq!(Value::Num(-7.0).as_i64(), Some(-7));
        assert_eq!(Value::Bool(true).as_f64(), None);
    }
}
