//! # stencil-serve
//!
//! A caching mapping service in front of the `stencilmap` engine: the
//! "serve millions of users" subsystem of the roadmap.  Clients send
//! newline-delimited JSON mapping requests (over TCP or stdin/stdout) and
//! receive the process-to-node mapping plus its `Jsum`/`Jmax` cost.
//!
//! * **Canonicalizing cache** — requests are normalised with
//!   [`stencil_mapping::canonical`] (dimension permutation + stencil offset
//!   order) before hitting a sharded LRU keyed by
//!   `(dims, stencil, alloc, algorithm)`, so equivalent requests share one
//!   entry regardless of orientation.
//! * **Allocation-free misses** — cache misses run through the existing
//!   parallel mapping engine (rank-local mappers via the workspace pool, the
//!   VieM-style pipeline via the multilevel partitioner).
//! * **Admission control** — every computed mapping is scored once with the
//!   streaming evaluator; requests can carry a `max_jsum` budget and either
//!   get rejected or transparently fall back to a specialised algorithm that
//!   fits the budget.
//! * **Cheap hit path** — responses can skip the node table entirely
//!   (`want_mapping: false`), carry it as one base64 delta-varint string
//!   (`"encoding":"compact"`, ~3 bytes/entry less wire and far less
//!   serialisation than the verbose JSON array), or answer point lookups
//!   (`"query":"new_rank_of"`) straight from the cached mapping.
//! * **Write-behind persistence** — with `--persist FILE` the canonical
//!   cache entries survive restarts: inserts and touches append to a log
//!   from a background thread, the log is replayed and compacted on start,
//!   so warm-up after a restart is free.
//! * **Determinism** — responses are byte-identical for every thread count
//!   (asserted in CI by replaying a request batch under
//!   `RAYON_NUM_THREADS ∈ {1, 4}` and comparing outputs).
//! * **Horizontal scale** — `--route` turns a process into a consistent-hash
//!   [`router`] over a pool of shared-nothing backends: canonically-equal
//!   requests colocate on one backend shard, so routed transcripts stay
//!   byte-identical to a single process, and `--handoff` ships a compacted
//!   persistence log to warm a new shard (see `docs/OPERATIONS.md`).
//!
//! ## Quick example
//!
//! ```
//! use stencil_serve::service::{MappingService, ServiceConfig};
//!
//! let service = MappingService::new(&ServiceConfig::default());
//! let reply = service.handle_line(
//!     r#"{"id":1,"dims":[12,8],"nodes":8,"algorithm":"hyperplane","want_mapping":false}"#,
//! );
//! assert!(reply.contains("\"status\":\"ok\""));
//! let warm = service.handle_line(
//!     r#"{"id":2,"dims":[8,12],"nodes":8,"algorithm":"hyperplane","want_mapping":false}"#,
//! );
//! // the permuted grid hits the same canonical cache entry
//! assert!(warm.contains("\"cached\":true"));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod faultpoint;
pub mod json;
pub mod persist;
pub mod protocol;
pub mod router;
pub mod server;
pub mod service;
pub mod transcript;
pub mod wire;

pub use cache::{CacheStats, EvictionPolicy, ShardedLru};
pub use protocol::{
    Algorithm, Encoding, MapRequest, MapResponse, OverBudget, Payload, Query, ResponseBody,
};
pub use router::{Ring, Router, RouterStats};
pub use server::LineHandler;
pub use service::{CacheEntry, CacheKey, MappingService, ServiceConfig};
