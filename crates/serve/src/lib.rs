//! # stencil-serve
//!
//! A caching mapping service in front of the `stencilmap` engine: the
//! "serve millions of users" subsystem of the roadmap.  Clients send
//! newline-delimited JSON mapping requests (over TCP or stdin/stdout) and
//! receive the process-to-node mapping plus its `Jsum`/`Jmax` cost.
//!
//! * **Canonicalizing cache** — requests are normalised with
//!   [`stencil_mapping::canonical`] (dimension permutation + stencil offset
//!   order) before hitting a sharded LRU keyed by
//!   `(dims, stencil, alloc, algorithm)`, so equivalent requests share one
//!   entry regardless of orientation.
//! * **Allocation-free misses** — cache misses run through the existing
//!   parallel mapping engine (rank-local mappers via the workspace pool, the
//!   VieM-style pipeline via the multilevel partitioner).
//! * **Admission control** — every computed mapping is scored once with the
//!   streaming evaluator; requests can carry a `max_jsum` budget and either
//!   get rejected or transparently fall back to a specialised algorithm that
//!   fits the budget.
//! * **Determinism** — responses are byte-identical for every thread count
//!   (asserted in CI by replaying a request batch under
//!   `RAYON_NUM_THREADS ∈ {1, 4}` and comparing outputs).
//!
//! ## Quick example
//!
//! ```
//! use stencil_serve::service::{MappingService, ServiceConfig};
//!
//! let service = MappingService::new(&ServiceConfig::default());
//! let reply = service.handle_line(
//!     r#"{"id":1,"dims":[12,8],"nodes":8,"algorithm":"hyperplane","want_mapping":false}"#,
//! );
//! assert!(reply.contains("\"status\":\"ok\""));
//! let warm = service.handle_line(
//!     r#"{"id":2,"dims":[8,12],"nodes":8,"algorithm":"hyperplane","want_mapping":false}"#,
//! );
//! // the permuted grid hits the same canonical cache entry
//! assert!(warm.contains("\"cached\":true"));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod json;
pub mod protocol;
pub mod server;
pub mod service;

pub use cache::{CacheStats, ShardedLru};
pub use protocol::{Algorithm, MapRequest, MapResponse, OverBudget, ResponseBody};
pub use service::{CacheEntry, CacheKey, MappingService, ServiceConfig};
