//! Deterministic fault injection for crash testing.
//!
//! A *fault point* is a named place in a crash-critical code path (today:
//! the persistence writer's append/flush/compaction path and the request
//! handler entry).  Every point is compiled in unconditionally — unarmed,
//! reaching one costs a relaxed atomic increment and a relaxed flag load —
//! and its **hit count is observable** via [`hits`], which the robustness
//! tests use both to prove a path was exercised (e.g. "three compactions
//! actually ran") and to pick the Nth occurrence to kill.
//!
//! Arming happens once per process through the `STENCIL_FAULTPOINT`
//! environment variable (read lazily on the first reach), or
//! programmatically through [`arm`] from tests:
//!
//! ```text
//! STENCIL_FAULTPOINT=persist.compact.tmp_written        # abort on hit 1
//! STENCIL_FAULTPOINT=persist.flush.before:2             # abort on hit 2
//! STENCIL_FAULTPOINT=serve.request:1:panic              # panic instead
//! ```
//!
//! The default action is [`std::process::abort`] — the closest in-process
//! stand-in for `kill -9`: no destructors, no buffered-writer flushes, no
//! persistence drain.  The `panic` action unwinds instead, which is what
//! the worker-isolation tests use to prove a poisoned request cannot take
//! a pool worker down.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Every registered fault point.  [`reach`] debug-asserts membership so a
/// typo in a call site cannot silently create an unkillable point; the
/// crash-matrix test iterates this list, so adding a point here *is* adding
/// it to the matrix.
pub const POINTS: &[&str] = &[
    // The writer decided to compact (threshold crossed or explicit
    // request), before the cache is frozen.
    "persist.compact.begin",
    // Cache mutations frozen, queued records drained to the live log and
    // flushed; nothing of the new file exists yet.
    "persist.compact.frozen",
    // The first snapshot line has been written to the temporary file.
    "persist.compact.mid_tmp",
    // The temporary file is complete and flushed, the rename has not
    // happened.
    "persist.compact.tmp_written",
    // The rename landed: the compacted file *is* the log, but the append
    // handle still points at the unlinked old file.
    "persist.compact.renamed",
    // Compaction finished: fresh append handle, byte counter reset.
    "persist.compact.done",
    // An explicit flush request arrived, before the buffered bytes reach
    // the file.
    "persist.flush.before",
    // An explicit flush completed, before the caller is acked.
    "persist.flush.after",
    // One request line entered the service (used with the `panic` action
    // to test worker isolation, never with abort in normal suites).
    "serve.request",
    // The router is about to forward one request (or batch item) to the
    // backend picked by the ring, before any bytes are written.
    "router.forward",
    // The router is about to dial a fresh backend connection (pool empty
    // or the pooled connection just failed).
    "router.reconnect",
    // The request line has been written to the chosen backend; the response
    // has not been read yet.  A kill here leaves the backend computing (and
    // caching) an answer the router never relays.
    "router.forward_sent",
    // A replicated miss response is in hand and the write-through fan-out
    // to the remaining replicas is about to start: a kill here leaves the
    // serving replica warm and the others cold for this key.
    "router.replica_fanout_partial",
    // A reshard has pulled and redistributed the moving key ranges and
    // built the new ring; the atomic swap has not happened yet.
    "router.ring_swap_prepared",
    // One warm-handoff image chunk has been streamed (absorbed) into a
    // backend gaining keys during a reshard.
    "router.handoff_streamed",
];

/// What an armed fault point does when its hit count is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// `std::process::abort()` — the `kill -9` stand-in.
    Abort,
    /// `panic!` — unwinds into whatever isolation the caller has.
    Panic,
}

#[derive(Debug, Clone)]
struct Armed {
    point: String,
    /// Fire on the Nth hit (1-based).
    at: u64,
    action: Action,
}

struct Registry {
    hits: Vec<AtomicU64>,
    armed: Mutex<Option<Armed>>,
    /// Fast path: skip the mutex entirely while nothing is armed.
    any_armed: AtomicBool,
}

fn registry() -> &'static Registry {
    static REGISTRY: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| {
        let reg = Registry {
            hits: POINTS.iter().map(|_| AtomicU64::new(0)).collect(),
            armed: Mutex::new(None),
            any_armed: AtomicBool::new(false),
        };
        if let Ok(spec) = std::env::var("STENCIL_FAULTPOINT") {
            match parse_spec(&spec) {
                Ok(armed) => {
                    *reg.armed.lock().unwrap() = Some(armed);
                    reg.any_armed.store(true, Ordering::Release);
                }
                Err(e) => eprintln!("stencil-serve: ignoring STENCIL_FAULTPOINT: {e}"),
            }
        }
        reg
    })
}

fn parse_spec(spec: &str) -> Result<Armed, String> {
    let mut parts = spec.split(':');
    let point = parts.next().unwrap_or("").to_string();
    if !POINTS.contains(&point.as_str()) {
        return Err(format!("unknown fault point {point:?}"));
    }
    let at = match parts.next() {
        None | Some("") => 1,
        Some(n) => n
            .parse::<u64>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("hit count must be a positive integer, got {n:?}"))?,
    };
    let action = match parts.next() {
        None | Some("abort") => Action::Abort,
        Some("panic") => Action::Panic,
        Some(other) => return Err(format!("unknown action {other:?} (abort or panic)")),
    };
    Ok(Armed { point, at, action })
}

fn index_of(name: &str) -> usize {
    debug_assert!(
        POINTS.contains(&name),
        "fault point {name:?} is not registered in faultpoint::POINTS"
    );
    POINTS.iter().position(|&p| p == name).unwrap_or(0)
}

/// Marks the named fault point as reached: increments its hit counter and,
/// when the point is armed and this is the armed occurrence, aborts (or
/// panics).  Unarmed cost: two relaxed atomics.
pub fn reach(name: &str) {
    let reg = registry();
    let count = reg.hits[index_of(name)].fetch_add(1, Ordering::Relaxed) + 1;
    if !reg.any_armed.load(Ordering::Acquire) {
        return;
    }
    let action = {
        let armed = reg.armed.lock().unwrap();
        match armed.as_ref() {
            Some(a) if a.point == name && a.at == count => a.action,
            _ => return,
        }
    };
    match action {
        Action::Abort => {
            eprintln!("stencil-serve: fault point {name} (hit {count}): aborting");
            std::process::abort();
        }
        Action::Panic => {
            panic!("fault point {name} (hit {count}): injected panic");
        }
    }
}

/// How many times the named point has been reached in this process.
pub fn hits(name: &str) -> u64 {
    registry().hits[index_of(name)].load(Ordering::Relaxed)
}

/// Arms (or with `None`, disarms) a fault point programmatically.  Tests
/// use this instead of the environment variable when they run in-process;
/// the armed state is process-global, so tests that arm must serialise
/// themselves around it.  `at` counts *future* hits: the trigger fires on
/// the `at`-th reach counted from now.
pub fn arm(spec: Option<(&str, u64, Action)>) {
    let reg = registry();
    let mut armed = reg.armed.lock().unwrap();
    match spec {
        None => {
            *armed = None;
            reg.any_armed.store(false, Ordering::Release);
        }
        Some((name, at, action)) => {
            assert!(POINTS.contains(&name), "unknown fault point {name:?}");
            assert!(at >= 1, "hit counts are 1-based");
            let already = reg.hits[index_of(name)].load(Ordering::Relaxed);
            *armed = Some(Armed {
                point: name.to_string(),
                at: already + at,
                action,
            });
            reg.any_armed.store(true, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_counts_accumulate_and_specs_parse() {
        let before = hits("persist.compact.done");
        reach("persist.compact.done");
        reach("persist.compact.done");
        assert_eq!(hits("persist.compact.done"), before + 2);

        let a = parse_spec("persist.flush.before").unwrap();
        assert_eq!(
            (a.point.as_str(), a.at, a.action),
            ("persist.flush.before", 1, Action::Abort)
        );
        let a = parse_spec("persist.compact.renamed:3").unwrap();
        assert_eq!((a.at, a.action), (3, Action::Abort));
        let a = parse_spec("serve.request:2:panic").unwrap();
        assert_eq!((a.at, a.action), (2, Action::Panic));
        assert!(parse_spec("no.such.point").is_err());
        assert!(parse_spec("serve.request:0").is_err());
        assert!(parse_spec("serve.request:1:explode").is_err());
    }

    #[test]
    fn armed_panic_fires_on_the_chosen_future_hit() {
        // This test arms a point, so it must not run concurrently with other
        // arming tests in this binary — unit tests here are the only users.
        reach("persist.flush.after"); // pre-existing traffic
        arm(Some(("persist.flush.after", 2, Action::Panic)));
        reach("persist.flush.after"); // hit 1 after arming: no fire
        let result = std::panic::catch_unwind(|| reach("persist.flush.after"));
        arm(None);
        assert!(result.is_err(), "second post-arm hit must panic");
        // disarmed: further hits are silent
        reach("persist.flush.after");
    }
}
