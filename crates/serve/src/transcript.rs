//! Golden-transcript replay for the serve protocol.
//!
//! A transcript request file is newline-delimited JSON with two extras:
//! lines starting with `#` are comments, and the special marker line
//! [`RESTART_MARKER`] shuts the current service down (flushing its
//! persistence log) and reopens it from the same configuration — which is
//! how the checked-in golden transcript exercises the
//! persistence-reload path.  Every non-comment line produces exactly one
//! response line; the golden test compares them byte-exactly against the
//! checked-in expected file, and `examples/regen_transcript.rs`
//! regenerates that file after deliberate protocol changes.

use crate::service::{MappingService, ServiceConfig};

/// Marker line that restarts the service mid-transcript.
pub const RESTART_MARKER: &str = "#RESTART";

/// Replays a transcript request file against services created from `cfg`,
/// returning one response line per request line (comments and blank lines
/// skipped).  At each [`RESTART_MARKER`] the service is dropped — which
/// flushes its write-behind persistence log — and reopened from `cfg`, so
/// a configured `persist_path` carries the cache across the marker.
pub fn replay(requests: &str, cfg: &ServiceConfig) -> Result<Vec<String>, String> {
    let mut service = MappingService::open(cfg)?;
    let mut responses = Vec::new();
    for line in requests.lines() {
        let trimmed = line.trim();
        if trimmed == RESTART_MARKER {
            drop(service);
            service = MappingService::open(cfg)?;
            continue;
        }
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        responses.push(service.handle_line(line));
    }
    Ok(responses)
}
