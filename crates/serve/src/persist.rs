//! Write-behind persistence of canonical cache entries.
//!
//! The cache's canonical entries are the expensive part of the service —
//! a p = 4800 multilevel mapping costs ~48 ms to recompute but ~6 KB to
//! store.  This module makes them survive restarts with an **append-only
//! log**: every cache insert (a computed miss) and every recency-*changing*
//! cache hit (touches of an already-MRU key replay as no-ops and are
//! skipped, so a hot key costs one record ever) is serialised to one JSON
//! line and handed to a background writer thread over a bounded queue, so
//! the request path never waits on the filesystem.  The writer appends and
//! flushes, so even a `kill -9` loses at most the records still queued; if
//! the disk cannot keep up, records are dropped and counted instead of
//! buffering without bound.
//!
//! On start the log is replayed in order through the fresh cache — inserts
//! insert, touches re-order recency — which reproduces the exact per-shard
//! LRU contents and recency order the previous process had persisted.  The
//! replayed state is then **compacted**: the log is rewritten as one insert
//! record per resident entry, least recently used first per shard, so the
//! file stays proportional to the cache instead of the request history.
//!
//! Records are self-describing JSON lines (node tables in the compact
//! base64 codec of [`crate::json`]); unparseable or inconsistent lines —
//! e.g. the torn tail of a killed writer — are skipped, never fatal.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;

use crate::cache::ShardedLru;
use crate::json::{decode_nodes_compact, encode_nodes_compact, Value};
use crate::protocol::Algorithm;
use crate::service::{CacheEntry, CacheKey};

/// One replayed log record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A computed entry was inserted under its canonical key.
    Insert(CacheKey, CacheEntry),
    /// A cached entry was served (recency touch).
    Touch(CacheKey),
}

fn key_fields(key: &CacheKey) -> Vec<(&'static str, Value)> {
    vec![
        (
            "dims",
            Value::Arr(key.dims.iter().map(|&d| Value::Num(d as f64)).collect()),
        ),
        (
            "stencil",
            Value::Arr(key.stencil.iter().map(|&o| Value::Num(o as f64)).collect()),
        ),
        ("periodic", Value::Bool(key.periodic)),
        (
            "alloc",
            Value::Arr(key.alloc.iter().map(|&s| Value::Num(s as f64)).collect()),
        ),
        ("algorithm", Value::str(key.algorithm.wire_name())),
        ("seed", Value::Num(key.seed as f64)),
    ]
}

/// Serialises an insert record (one line, no trailing newline).
pub fn insert_line(key: &CacheKey, entry: &CacheEntry) -> String {
    let mut fields = vec![("op", Value::str("insert"))];
    fields.extend(key_fields(key));
    fields.push(("j_sum", Value::Num(entry.j_sum as f64)));
    fields.push(("j_max", Value::Num(entry.j_max as f64)));
    fields.push(("nodes", Value::str(encode_nodes_compact(&entry.nodes))));
    Value::obj(fields).compact()
}

/// Serialises a touch record (one line, no trailing newline).
pub fn touch_line(key: &CacheKey) -> String {
    let mut fields = vec![("op", Value::str("touch"))];
    fields.extend(key_fields(key));
    Value::obj(fields).compact()
}

fn parse_usize_arr(v: &Value, what: &str) -> Result<Vec<usize>, String> {
    v.as_arr()
        .ok_or(format!("{what} must be an array"))?
        .iter()
        .map(|x| {
            x.as_usize()
                .ok_or(format!("{what} entries must be integers"))
        })
        .collect()
}

/// Parses one log line back into a [`Record`], validating it is
/// self-consistent (grid volume matches the node table, node ids stay
/// within the allocation) so a corrupt line can never poison the cache.
pub fn parse_record(line: &str) -> Result<Record, String> {
    let v = Value::parse(line)?;
    let dims = parse_usize_arr(v.get("dims").ok_or("missing dims")?, "dims")?;
    if dims.is_empty() || dims.contains(&0) {
        return Err("invalid dims".to_string());
    }
    // checked product + the same bound live requests obey: a corrupt line
    // must not overflow (debug panic) or smuggle in a grid no request could
    // ever have created
    let volume = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .filter(|&p| p <= crate::protocol::MAX_GRID_VOLUME)
        .ok_or("grid volume out of range")?;
    let stencil: Vec<i64> = v
        .get("stencil")
        .ok_or("missing stencil")?
        .as_arr()
        .ok_or("stencil must be an array")?
        .iter()
        .map(|x| x.as_i64().ok_or("stencil entries must be integers"))
        .collect::<Result<_, _>>()?;
    if !stencil.len().is_multiple_of(dims.len()) {
        return Err("stencil length does not match dimensionality".to_string());
    }
    let periodic = v
        .get("periodic")
        .and_then(Value::as_bool)
        .ok_or("missing periodic")?;
    let alloc = parse_usize_arr(v.get("alloc").ok_or("missing alloc")?, "alloc")?;
    // node sizes are bounded by the volume (≤ MAX_GRID_VOLUME), so the sum
    // of up to `volume` such entries cannot overflow usize on 64-bit
    if alloc.is_empty()
        || alloc.contains(&0)
        || alloc.len() > volume
        || alloc.iter().any(|&s| s > volume)
        || alloc.iter().sum::<usize>() != volume
    {
        return Err("allocation does not cover the grid".to_string());
    }
    let algorithm = Algorithm::from_wire(
        v.get("algorithm")
            .and_then(Value::as_str)
            .ok_or("missing algorithm")?,
    )?;
    let seed = v
        .get("seed")
        .and_then(Value::as_u64)
        .ok_or("missing seed")?;
    let key = CacheKey {
        dims,
        stencil,
        periodic,
        alloc: alloc.clone(),
        algorithm,
        seed,
    };
    match v.get("op").and_then(Value::as_str) {
        Some("touch") => Ok(Record::Touch(key)),
        Some("insert") => {
            let nodes = decode_nodes_compact(
                v.get("nodes")
                    .and_then(Value::as_str)
                    .ok_or("missing nodes")?,
            )?;
            if nodes.len() != volume {
                return Err(format!(
                    "node table holds {} entries for a volume-{volume} grid",
                    nodes.len()
                ));
            }
            if nodes.iter().any(|&n| n as usize >= key.alloc.len()) {
                return Err("node id outside the allocation".to_string());
            }
            let j_sum = v
                .get("j_sum")
                .and_then(Value::as_u64)
                .ok_or("missing j_sum")?;
            let j_max = v
                .get("j_max")
                .and_then(Value::as_u64)
                .ok_or("missing j_max")?;
            Ok(Record::Insert(key, CacheEntry::new(nodes, j_sum, j_max)))
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// What [`load_and_compact`] found in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadReport {
    /// Records replayed successfully.
    pub replayed: usize,
    /// Lines skipped as unparseable or inconsistent (torn writes).
    pub skipped: usize,
    /// Entries resident after the replay.
    pub entries: usize,
}

/// Replays the log at `path` into `cache` (inserts insert, touches
/// re-order) and rewrites it compacted: one insert record per resident
/// entry, least recently used first per shard, so replaying the rewritten
/// file reproduces the exact per-shard contents and recency.  A missing
/// file is an empty log.  Returns what was replayed.
pub fn load_and_compact(
    path: &Path,
    cache: &ShardedLru<CacheKey, Arc<CacheEntry>>,
) -> Result<LoadReport, String> {
    let mut report = LoadReport::default();
    match File::open(path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(format!("cannot open {}: {e}", path.display())),
        Ok(file) => {
            for line in BufReader::new(file).split(b'\n') {
                let line = line.map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                if line.iter().all(|b| b.is_ascii_whitespace()) {
                    continue;
                }
                let parsed = std::str::from_utf8(&line)
                    .map_err(|e| e.to_string())
                    .and_then(parse_record);
                match parsed {
                    Ok(Record::Insert(key, entry)) => {
                        cache.insert(key, Arc::new(entry));
                        report.replayed += 1;
                    }
                    Ok(Record::Touch(key)) => {
                        cache.touch(&key);
                        report.replayed += 1;
                    }
                    Err(_) => report.skipped += 1,
                }
            }
        }
    }
    report.entries = cache.len();

    // compaction: rewrite as the minimal insert sequence reproducing the
    // replayed state, atomically (write-temp + rename) so a crash here
    // cannot lose the old log
    let tmp = path.with_extension("compacting");
    {
        let file =
            File::create(&tmp).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        let mut w = BufWriter::new(file);
        for shard in 0..cache.num_shards() {
            for (key, entry) in cache.shard_entries_lru_first(shard) {
                writeln!(w, "{}", insert_line(&key, &entry))
                    .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
            }
        }
        w.flush()
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot replace {}: {e}", path.display()))?;
    Ok(report)
}

enum Msg {
    Line(String),
    Flush(SyncSender<()>),
}

/// How many records may queue between the request path and the writer
/// thread.  If the disk cannot keep up, further records are *dropped and
/// counted* rather than allowed to grow memory without bound — persistence
/// is an optimisation (a dropped record costs a recompute after the next
/// restart), so it must never be able to take the serving path down.
const PERSIST_QUEUE_CAP: usize = 1 << 16;

/// The write-behind log writer: a background thread appending records so
/// the request path only pays one bounded channel send.
pub struct PersistLog {
    tx: Option<SyncSender<Msg>>,
    handle: Option<std::thread::JoinHandle<()>>,
    dropped: Arc<AtomicU64>,
}

impl PersistLog {
    /// Opens the log at `path` for appending and spawns the writer thread.
    pub fn open_append(path: &Path) -> Result<PersistLog, String> {
        let file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| format!("cannot append to {}: {e}", path.display()))?;
        Ok(Self::spawn(file))
    }

    fn spawn(file: File) -> PersistLog {
        let (tx, rx): (SyncSender<Msg>, Receiver<Msg>) = sync_channel(PERSIST_QUEUE_CAP);
        let dropped = Arc::new(AtomicU64::new(0));
        let dropped_writer = Arc::clone(&dropped);
        let handle = std::thread::spawn(move || {
            fn write_line(w: &mut BufWriter<File>, line: &str, dropped: &AtomicU64) {
                if w.write_all(line.as_bytes()).is_err() || w.write_all(b"\n").is_err() {
                    dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            let mut w = BufWriter::new(file);
            while let Ok(msg) = rx.recv() {
                match msg {
                    Msg::Line(line) => {
                        write_line(&mut w, &line, &dropped_writer);
                        // batch whatever else is already queued, then flush
                        // once, so bursts cost one syscall, not one each
                        while let Ok(more) = rx.try_recv() {
                            match more {
                                Msg::Line(line) => write_line(&mut w, &line, &dropped_writer),
                                Msg::Flush(ack) => {
                                    let _ = w.flush();
                                    let _ = ack.send(());
                                }
                            }
                        }
                        let _ = w.flush();
                    }
                    Msg::Flush(ack) => {
                        let _ = w.flush();
                        let _ = ack.send(());
                    }
                }
            }
            let _ = w.flush();
        });
        PersistLog {
            tx: Some(tx),
            handle: Some(handle),
            dropped,
        }
    }

    fn send(&self, line: String) {
        if let Some(tx) = &self.tx {
            match tx.try_send(Msg::Line(line)) {
                Ok(()) => {}
                // queue full (disk too slow) or writer gone: drop the
                // record rather than block or buffer the serving path
                Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Queues an insert record (called on every computed miss).
    pub fn record_insert(&self, key: &CacheKey, entry: &CacheEntry) {
        self.send(insert_line(key, entry));
    }

    /// Queues a touch record (called on every cache hit).
    pub fn record_touch(&self, key: &CacheKey) {
        self.send(touch_line(key));
    }

    /// Blocks until every record queued so far has reached the file.
    pub fn flush(&self) {
        if let Some(tx) = &self.tx {
            let (ack_tx, ack_rx) = sync_channel(1);
            if tx.send(Msg::Flush(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
            }
        }
    }

    /// Number of records lost to write errors (diagnostics).
    pub fn dropped_records(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for PersistLog {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> CacheKey {
        CacheKey {
            dims: vec![3, 2],
            stencil: vec![1, 0, -1, 0],
            periodic: false,
            alloc: vec![3, 3],
            algorithm: Algorithm::Viem,
            seed,
        }
    }

    fn entry() -> CacheEntry {
        CacheEntry::new(vec![0, 0, 0, 1, 1, 1], 4, 2)
    }

    #[test]
    fn records_roundtrip() {
        let line = insert_line(&key(7), &entry());
        assert_eq!(
            parse_record(&line).unwrap(),
            Record::Insert(key(7), entry())
        );
        let line = touch_line(&key(9));
        assert_eq!(parse_record(&line).unwrap(), Record::Touch(key(9)));
    }

    #[test]
    fn inconsistent_records_are_rejected() {
        let good = insert_line(&key(1), &entry());
        for (mangle, needle) in [
            (good.replace("\"dims\":[3,2]", "\"dims\":[3,3]"), "cover"),
            (good.replace("\"dims\":[3,2]", "\"dims\":[0,6]"), "dims"),
            (good.replace("\"op\":\"insert\"", "\"op\":\"upsert\""), "op"),
            (good.replace("\"alloc\":[3,3]", "\"alloc\":[6]"), "node id"),
            (
                good.replace("\"algorithm\":\"viem\"", "\"algorithm\":\"magic\""),
                "algorithm",
            ),
            // overflowing / oversized grids must be skipped, not trusted
            (
                good.replace(
                    "\"dims\":[3,2]",
                    "\"dims\":[4294967296,4294967296,4294967296]",
                ),
                "volume",
            ),
            (
                good.replace("\"dims\":[3,2]", "\"dims\":[65536,65536]"),
                "volume",
            ),
            (good.replace("\"alloc\":[3,3]", "\"alloc\":[0,6]"), "cover"),
            (good[..good.len() / 2].to_string(), ""),
        ] {
            let err = parse_record(&mangle).unwrap_err();
            assert!(err.contains(needle), "{mangle}: {err}");
        }
    }

    #[test]
    fn log_replays_and_compacts() {
        let dir = std::env::temp_dir().join(format!("stencil-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replay.log");
        let _ = std::fs::remove_file(&path);
        {
            let log = PersistLog::open_append(&path).unwrap();
            log.record_insert(&key(1), &entry());
            log.record_insert(&key(2), &entry());
            log.record_touch(&key(1));
            log.flush();
        }
        // torn tail: half a record, as a kill mid-write would leave
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            let torn = insert_line(&key(3), &entry());
            f.write_all(&torn.as_bytes()[..torn.len() / 2]).unwrap();
        }
        let cache: ShardedLru<CacheKey, Arc<CacheEntry>> = ShardedLru::new(8, 2);
        let report = load_and_compact(&path, &cache).unwrap();
        assert_eq!((report.replayed, report.skipped, report.entries), (3, 1, 2));
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(3)).is_none());
        // the compacted file is pure insert records and replays identically
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(!text.contains("\"op\":\"touch\""));
        let again: ShardedLru<CacheKey, Arc<CacheEntry>> = ShardedLru::new(8, 2);
        load_and_compact(&path, &again).unwrap();
        for shard in 0..cache.num_shards() {
            assert_eq!(
                again
                    .shard_entries_lru_first(shard)
                    .iter()
                    .map(|(k, _)| k.clone())
                    .collect::<Vec<_>>(),
                cache
                    .shard_entries_lru_first(shard)
                    .iter()
                    .map(|(k, _)| k.clone())
                    .collect::<Vec<_>>()
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}
