//! Write-behind persistence of canonical cache entries.
//!
//! The cache's canonical entries are the expensive part of the service —
//! a p = 4800 multilevel mapping costs ~48 ms to recompute but ~6 KB to
//! store.  This module makes them survive restarts with an **append-only
//! log**: every cache insert (a computed miss) and every recency-*changing*
//! cache hit (touches of an already-MRU key replay as no-ops and are
//! skipped, so a hot key costs one record ever) is serialised to one JSON
//! line and handed to a background writer thread over a bounded queue, so
//! the request path never waits on the filesystem.  The writer appends and
//! flushes, so even a `kill -9` loses at most the records still queued; if
//! the disk cannot keep up, records are dropped and counted instead of
//! buffering without bound.
//!
//! On start the log is replayed in order through the fresh cache — inserts
//! insert, touches re-order recency — which reproduces the exact per-shard
//! LRU contents and recency order the previous process had persisted.  The
//! replayed state is then **compacted**: the log is rewritten as one insert
//! record per resident entry, least recently used first per shard, so the
//! file stays proportional to the cache instead of the request history.
//!
//! A long-lived process no longer needs to restart for that: the writer
//! thread also runs **online compaction**.  When the live log passes a byte
//! threshold (`--compact-bytes`), the writer freezes cache mutations via a
//! [`CacheSnapshotter`] (taking every per-shard persistence lock), drains
//! the queue into the old log, writes a fresh compacted log *beside* the
//! live one and atomically swaps it in with a rename, then reopens its
//! append handle on the new file.  Every step preserves the torn-tail skip
//! rules: before the rename the old log is complete and flushed, after the
//! rename the new log is complete and flushed, so a `kill -9` at any byte
//! of the swap recovers to exactly the frozen cache state.  The
//! [`crate::faultpoint`] hooks around each step are what the crash-matrix
//! suite arms to prove that.
//!
//! Records are self-describing JSON lines (node tables in the compact
//! base64 codec of [`crate::json`]); unparseable or inconsistent lines —
//! e.g. the torn tail of a killed writer — are skipped, never fatal.
//!
//! Where this sits in the serve tier — and how the router's warm-handoff
//! path ships a compacted log to warm a new shard — is described in
//! `docs/ARCHITECTURE.md` (persistence section).

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::cache::ShardedLru;
use crate::faultpoint;
use crate::json::{decode_nodes_compact, encode_nodes_compact, Value};
use crate::protocol::Algorithm;
use crate::service::{entry_cost, CacheEntry, CacheKey};

/// One replayed log record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A computed entry was inserted under its canonical key.
    Insert(CacheKey, CacheEntry),
    /// A cached entry was served (recency touch).
    Touch(CacheKey),
}

fn key_fields(key: &CacheKey) -> Vec<(&'static str, Value)> {
    vec![
        (
            "dims",
            Value::Arr(key.dims.iter().map(|&d| Value::Num(d as f64)).collect()),
        ),
        (
            "stencil",
            Value::Arr(key.stencil.iter().map(|&o| Value::Num(o as f64)).collect()),
        ),
        ("periodic", Value::Bool(key.periodic)),
        (
            "alloc",
            Value::Arr(key.alloc.iter().map(|&s| Value::Num(s as f64)).collect()),
        ),
        ("algorithm", Value::str(key.algorithm.wire_name())),
        ("seed", Value::Num(key.seed as f64)),
    ]
}

/// Serialises an insert record (one line, no trailing newline).
pub fn insert_line(key: &CacheKey, entry: &CacheEntry) -> String {
    let mut fields = vec![("op", Value::str("insert"))];
    fields.extend(key_fields(key));
    fields.push(("j_sum", Value::Num(entry.j_sum as f64)));
    fields.push(("j_max", Value::Num(entry.j_max as f64)));
    fields.push(("nodes", Value::str(encode_nodes_compact(&entry.nodes))));
    Value::obj(fields).compact()
}

/// Serialises a touch record (one line, no trailing newline).
pub fn touch_line(key: &CacheKey) -> String {
    let mut fields = vec![("op", Value::str("touch"))];
    fields.extend(key_fields(key));
    Value::obj(fields).compact()
}

fn parse_usize_arr(v: &Value, what: &str) -> Result<Vec<usize>, String> {
    v.as_arr()
        .ok_or(format!("{what} must be an array"))?
        .iter()
        .map(|x| {
            x.as_usize()
                .ok_or(format!("{what} entries must be integers"))
        })
        .collect()
}

/// Parses one log line back into a [`Record`], validating it is
/// self-consistent (grid volume matches the node table, node ids stay
/// within the allocation) so a corrupt line can never poison the cache.
pub fn parse_record(line: &str) -> Result<Record, String> {
    let v = Value::parse(line)?;
    let dims = parse_usize_arr(v.get("dims").ok_or("missing dims")?, "dims")?;
    if dims.is_empty() || dims.contains(&0) {
        return Err("invalid dims".to_string());
    }
    // checked product + the same bound live requests obey: a corrupt line
    // must not overflow (debug panic) or smuggle in a grid no request could
    // ever have created
    let volume = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .filter(|&p| p <= crate::protocol::MAX_GRID_VOLUME)
        .ok_or("grid volume out of range")?;
    let stencil: Vec<i64> = v
        .get("stencil")
        .ok_or("missing stencil")?
        .as_arr()
        .ok_or("stencil must be an array")?
        .iter()
        .map(|x| x.as_i64().ok_or("stencil entries must be integers"))
        .collect::<Result<_, _>>()?;
    if !stencil.len().is_multiple_of(dims.len()) {
        return Err("stencil length does not match dimensionality".to_string());
    }
    let periodic = v
        .get("periodic")
        .and_then(Value::as_bool)
        .ok_or("missing periodic")?;
    let alloc = parse_usize_arr(v.get("alloc").ok_or("missing alloc")?, "alloc")?;
    // node sizes are bounded by the volume (≤ MAX_GRID_VOLUME), so the sum
    // of up to `volume` such entries cannot overflow usize on 64-bit
    if alloc.is_empty()
        || alloc.contains(&0)
        || alloc.len() > volume
        || alloc.iter().any(|&s| s > volume)
        || alloc.iter().sum::<usize>() != volume
    {
        return Err("allocation does not cover the grid".to_string());
    }
    let algorithm = Algorithm::from_wire(
        v.get("algorithm")
            .and_then(Value::as_str)
            .ok_or("missing algorithm")?,
    )?;
    let seed = v
        .get("seed")
        .and_then(Value::as_u64)
        .ok_or("missing seed")?;
    let key = CacheKey {
        dims,
        stencil,
        periodic,
        alloc: alloc.clone(),
        algorithm,
        seed,
    };
    match v.get("op").and_then(Value::as_str) {
        Some("touch") => Ok(Record::Touch(key)),
        Some("insert") => {
            let nodes = decode_nodes_compact(
                v.get("nodes")
                    .and_then(Value::as_str)
                    .ok_or("missing nodes")?,
            )?;
            if nodes.len() != volume {
                return Err(format!(
                    "node table holds {} entries for a volume-{volume} grid",
                    nodes.len()
                ));
            }
            if nodes.iter().any(|&n| n as usize >= key.alloc.len()) {
                return Err("node id outside the allocation".to_string());
            }
            let j_sum = v
                .get("j_sum")
                .and_then(Value::as_u64)
                .ok_or("missing j_sum")?;
            let j_max = v
                .get("j_max")
                .and_then(Value::as_u64)
                .ok_or("missing j_max")?;
            Ok(Record::Insert(key, CacheEntry::new(nodes, j_sum, j_max)))
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

/// What [`load_and_compact`] found in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoadReport {
    /// Records replayed successfully.
    pub replayed: usize,
    /// Lines skipped as unparseable or inconsistent (torn writes).
    pub skipped: usize,
    /// Entries resident after the replay.
    pub entries: usize,
}

/// Replays the log at `path` into `cache` (inserts insert, touches
/// re-order) and rewrites it compacted: one insert record per resident
/// entry, least recently used first per shard, so replaying the rewritten
/// file reproduces the exact per-shard contents and recency.  A missing
/// file is an empty log.  Returns what was replayed.
pub fn load_and_compact(
    path: &Path,
    cache: &ShardedLru<CacheKey, Arc<CacheEntry>>,
) -> Result<LoadReport, String> {
    let mut report = LoadReport::default();
    match File::open(path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(format!("cannot open {}: {e}", path.display())),
        Ok(file) => {
            for line in BufReader::new(file).split(b'\n') {
                let line = line.map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                if line.iter().all(|b| b.is_ascii_whitespace()) {
                    continue;
                }
                let parsed = std::str::from_utf8(&line)
                    .map_err(|e| e.to_string())
                    .and_then(parse_record);
                match parsed {
                    Ok(Record::Insert(key, entry)) => {
                        // re-derive the GDSF cost (a pure function of the
                        // key) instead of persisting it; ignored under LRU
                        let cost = entry_cost(&key);
                        cache.insert_with_cost(key, Arc::new(entry), cost);
                        report.replayed += 1;
                    }
                    Ok(Record::Touch(key)) => {
                        cache.touch(&key);
                        report.replayed += 1;
                    }
                    Err(_) => report.skipped += 1,
                }
            }
        }
    }
    report.entries = cache.len();

    // compaction: rewrite as the minimal insert sequence reproducing the
    // replayed state, atomically (write-temp + rename) so a crash here
    // cannot lose the old log
    let tmp = path.with_extension("compacting");
    {
        let file =
            File::create(&tmp).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        let mut w = BufWriter::new(file);
        for shard in 0..cache.num_shards() {
            for (key, entry) in cache.shard_entries_lru_first(shard) {
                writeln!(w, "{}", insert_line(&key, &entry))
                    .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
            }
        }
        w.flush()
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot replace {}: {e}", path.display()))?;
    Ok(report)
}

enum Msg {
    Line(String),
    Flush(SyncSender<()>),
    Compact(SyncSender<()>),
}

/// How many records may queue between the request path and the writer
/// thread.  If the disk cannot keep up, further records are *dropped and
/// counted* rather than allowed to grow memory without bound — persistence
/// is an optimisation (a dropped record costs a recompute after the next
/// restart), so it must never be able to take the serving path down.
const PERSIST_QUEUE_CAP: usize = 1 << 16;

/// How long appended records may sit in the writer's buffer before a flush
/// (light traffic pays one flush per interval instead of one per record).
const FLUSH_INTERVAL: Duration = Duration::from_millis(50);

/// How many buffered bytes force a flush before the interval elapses, so a
/// burst bounds its unflushed (kill-loss) window by volume as well as time.
const FLUSH_BYTES: u64 = 256 * 1024;

/// Monotonic counters of everything the writer thread has done, for
/// diagnostics and the write-amplification benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PersistStats {
    /// Records written to the log (appends; compaction snapshots excluded).
    pub appended: u64,
    /// Records lost to a full queue or write errors.
    pub dropped: u64,
    /// `flush` syscalls issued (explicit, interval, byte-threshold and
    /// compaction flushes).
    pub flushes: u64,
    /// Online compactions completed (log rewritten and swapped).
    pub compactions: u64,
}

#[derive(Default)]
struct StatCells {
    appended: AtomicU64,
    dropped: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
}

/// Freezes the cache for online compaction: holds every per-shard
/// persistence lock (the request path holds its shard's lock around each
/// (cache op, record send) pair, so once all locks are held, every applied
/// mutation's record is already in the writer's queue) and hands the writer
/// the compacted insert lines, least recently used first per shard.
#[derive(Clone)]
pub struct CacheSnapshotter {
    cache: Arc<ShardedLru<CacheKey, Arc<CacheEntry>>>,
    locks: Arc<Vec<Mutex<()>>>,
}

impl CacheSnapshotter {
    /// Builds a snapshotter over the service's cache and its per-shard
    /// persistence locks.
    pub fn new(
        cache: Arc<ShardedLru<CacheKey, Arc<CacheEntry>>>,
        locks: Arc<Vec<Mutex<()>>>,
    ) -> CacheSnapshotter {
        CacheSnapshotter { cache, locks }
    }

    /// Runs `f` on the compacted line image of the cache while all cache
    /// mutations (and their record sends) are blocked.
    fn with_frozen<R>(&self, f: impl FnOnce(&[String]) -> R) -> R {
        let _guards: Vec<_> = self
            .locks
            .iter()
            .map(|l| l.lock().expect("persistence shard lock poisoned"))
            .collect();
        let mut lines = Vec::new();
        for shard in 0..self.cache.num_shards() {
            for (key, entry) in self.cache.shard_entries_lru_first(shard) {
                lines.push(insert_line(&key, &entry));
            }
        }
        f(&lines)
    }
}

/// The write-behind log writer: a background thread appending records so
/// the request path only pays one bounded channel send.  With a
/// [`CacheSnapshotter`] attached, the thread also compacts the log in place
/// (atomic tmp-write + rename swap) whenever it outgrows the configured
/// threshold — see the module docs for the crash-safety argument.
pub struct PersistLog {
    tx: Option<SyncSender<Msg>>,
    handle: Option<std::thread::JoinHandle<()>>,
    stats: Arc<StatCells>,
    path: PathBuf,
}

/// Everything the writer thread owns.
struct WriterState {
    rx: Receiver<Msg>,
    w: BufWriter<File>,
    path: PathBuf,
    /// Bytes in the live log (file + buffered).
    live_bytes: u64,
    /// Bytes written since the last flush.
    unflushed: u64,
    /// Compact once `live_bytes` reaches this (0 = online compaction off).
    compact_at: u64,
    /// The configured threshold `--compact-bytes` (0 = off).
    compact_bytes: u64,
    snapshotter: Option<CacheSnapshotter>,
    stats: Arc<StatCells>,
}

impl WriterState {
    fn write_line(&mut self, line: &str) {
        if self.w.write_all(line.as_bytes()).is_err() || self.w.write_all(b"\n").is_err() {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.stats.appended.fetch_add(1, Ordering::Relaxed);
        let bytes = line.len() as u64 + 1;
        self.live_bytes += bytes;
        self.unflushed += bytes;
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
        self.unflushed = 0;
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether the live log has outgrown its threshold.
    fn over_threshold(&self) -> bool {
        self.compact_at > 0 && self.live_bytes >= self.compact_at && self.snapshotter.is_some()
    }

    /// Online compaction: freeze the cache, drain the queue into the old
    /// log (so it stays complete if the process dies before the swap),
    /// write the compacted image beside it, swap via rename, reopen the
    /// append handle.  Returns the flush/compact acks collected from the
    /// drained queue; the caller sends them once the swap is durable.
    fn compact(&mut self) -> Vec<SyncSender<()>> {
        let Some(snapshotter) = self.snapshotter.clone() else {
            return Vec::new();
        };
        faultpoint::reach("persist.compact.begin");
        let mut acks: Vec<SyncSender<()>> = Vec::new();
        snapshotter.with_frozen(|lines| {
            // 1. Every record sent before the freeze is reflected in the
            // frozen cache (= `lines`), but append the stragglers to the old
            // log anyway and flush: if we die before the rename, the old log
            // alone must replay to the frozen state.
            while let Ok(msg) = self.rx.try_recv() {
                match msg {
                    Msg::Line(line) => self.write_line(&line),
                    Msg::Flush(ack) | Msg::Compact(ack) => acks.push(ack),
                }
            }
            self.flush();
            faultpoint::reach("persist.compact.frozen");

            // 2. The compacted image, beside the live log.
            let tmp = self.path.with_extension("compacting");
            let mut tmp_bytes: u64 = 0;
            let written = (|| -> std::io::Result<()> {
                let mut tw = BufWriter::new(File::create(&tmp)?);
                for (i, line) in lines.iter().enumerate() {
                    tw.write_all(line.as_bytes())?;
                    tw.write_all(b"\n")?;
                    tmp_bytes += line.len() as u64 + 1;
                    if i == 0 {
                        faultpoint::reach("persist.compact.mid_tmp");
                    }
                }
                tw.flush()?;
                Ok(())
            })();
            if let Err(e) = written {
                eprintln!(
                    "stencil-serve: online compaction failed writing {}: {e}",
                    tmp.display()
                );
                // back off: retry only after another threshold's worth
                self.compact_at = self.live_bytes + self.compact_bytes;
                return;
            }
            faultpoint::reach("persist.compact.tmp_written");

            // 3. The atomic swap.
            if let Err(e) = std::fs::rename(&tmp, &self.path) {
                eprintln!(
                    "stencil-serve: online compaction failed swapping {}: {e}",
                    self.path.display()
                );
                self.compact_at = self.live_bytes + self.compact_bytes;
                return;
            }
            faultpoint::reach("persist.compact.renamed");

            // 4. Append to the new file from here on.  Until this open
            // succeeds the handle still points at the unlinked old file —
            // appends would vanish on restart, which is within the queued-
            // records loss contract but worth retiring immediately.
            match OpenOptions::new()
                .append(true)
                .create(true)
                .open(&self.path)
            {
                Ok(file) => {
                    self.w = BufWriter::new(file);
                    self.live_bytes = tmp_bytes;
                    self.unflushed = 0;
                    // classic garbage-vs-live trigger: recompact when the
                    // log doubles, but never below the configured floor
                    self.compact_at = self.compact_bytes.max(tmp_bytes.saturating_mul(2));
                    self.stats.compactions.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    eprintln!(
                        "stencil-serve: cannot reopen {} after compaction: {e}",
                        self.path.display()
                    );
                    self.compact_at = self.live_bytes + self.compact_bytes;
                }
            }
        });
        faultpoint::reach("persist.compact.done");
        acks
    }
}

impl PersistLog {
    /// Opens the log at `path` for appending and spawns the writer thread.
    /// `compact_bytes` is the online-compaction threshold (0 disables it);
    /// compaction also needs a `snapshotter` to freeze and image the cache
    /// — without one, only explicit [`PersistLog::compact`] flushes.
    pub fn open_append(
        path: &Path,
        compact_bytes: u64,
        snapshotter: Option<CacheSnapshotter>,
    ) -> Result<PersistLog, String> {
        let file = OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| format!("cannot append to {}: {e}", path.display()))?;
        let live_bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
        let (tx, rx): (SyncSender<Msg>, Receiver<Msg>) = sync_channel(PERSIST_QUEUE_CAP);
        let stats = Arc::new(StatCells::default());
        let mut state = WriterState {
            rx,
            w: BufWriter::new(file),
            path: path.to_path_buf(),
            live_bytes,
            unflushed: 0,
            compact_at: compact_bytes,
            compact_bytes,
            snapshotter,
            stats: Arc::clone(&stats),
        };
        let handle = std::thread::spawn(move || {
            let mut dirty = false;
            loop {
                // batch flushes: while dirty, wait at most FLUSH_INTERVAL
                // for more records and flush on the timeout, so light
                // traffic pays one flush per interval, not one per record
                let msg = if dirty {
                    match state.rx.recv_timeout(FLUSH_INTERVAL) {
                        Ok(msg) => Some(msg),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                } else {
                    match state.rx.recv() {
                        Ok(msg) => Some(msg),
                        Err(_) => break,
                    }
                };
                match msg {
                    None => {
                        state.flush();
                        dirty = false;
                    }
                    Some(Msg::Line(line)) => {
                        state.write_line(&line);
                        dirty = true;
                        if state.unflushed >= FLUSH_BYTES {
                            state.flush();
                            dirty = false;
                        }
                        if state.over_threshold() {
                            for ack in state.compact() {
                                let _ = ack.send(());
                            }
                            dirty = false;
                        }
                    }
                    Some(Msg::Flush(ack)) => {
                        faultpoint::reach("persist.flush.before");
                        state.flush();
                        faultpoint::reach("persist.flush.after");
                        dirty = false;
                        let _ = ack.send(());
                    }
                    Some(Msg::Compact(ack)) => {
                        let acks = if state.snapshotter.is_some() {
                            state.compact()
                        } else {
                            state.flush();
                            Vec::new()
                        };
                        dirty = false;
                        let _ = ack.send(());
                        for ack in acks {
                            let _ = ack.send(());
                        }
                    }
                }
            }
            // channel closed: drain is complete, make it durable
            state.flush();
        });
        Ok(PersistLog {
            tx: Some(tx),
            handle: Some(handle),
            stats,
            path: path.to_path_buf(),
        })
    }

    /// The path of the live log file (the warm-handoff admin request reads
    /// it after a compact-and-flush to ship the whole cache image).
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn send(&self, line: String) {
        if let Some(tx) = &self.tx {
            match tx.try_send(Msg::Line(line)) {
                Ok(()) => {}
                // queue full (disk too slow) or writer gone: drop the
                // record rather than block or buffer the serving path
                Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                    self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Queues an insert record (called on every computed miss).
    pub fn record_insert(&self, key: &CacheKey, entry: &CacheEntry) {
        self.send(insert_line(key, entry));
    }

    /// Queues a touch record (called on every cache hit).
    pub fn record_touch(&self, key: &CacheKey) {
        self.send(touch_line(key));
    }

    /// Blocks until every record queued so far has reached the file.
    pub fn flush(&self) {
        if let Some(tx) = &self.tx {
            let (ack_tx, ack_rx) = sync_channel(1);
            if tx.send(Msg::Flush(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
            }
        }
    }

    /// Blocks until the writer has compacted the log (or, without a
    /// snapshotter, at least flushed it).  Used on drain/shutdown and by
    /// the crash tests to trigger compaction at a deterministic moment.
    pub fn compact(&self) {
        if let Some(tx) = &self.tx {
            let (ack_tx, ack_rx) = sync_channel(1);
            if tx.send(Msg::Compact(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
            }
        }
    }

    /// Number of records lost to a full queue or write errors (diagnostics).
    pub fn dropped_records(&self) -> u64 {
        self.stats.dropped.load(Ordering::Relaxed)
    }

    /// Monotonic writer counters (appends, drops, flushes, compactions).
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            appended: self.stats.appended.load(Ordering::Relaxed),
            dropped: self.stats.dropped.load(Ordering::Relaxed),
            flushes: self.stats.flushes.load(Ordering::Relaxed),
            compactions: self.stats.compactions.load(Ordering::Relaxed),
        }
    }
}

impl Drop for PersistLog {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> CacheKey {
        CacheKey {
            dims: vec![3, 2],
            stencil: vec![1, 0, -1, 0],
            periodic: false,
            alloc: vec![3, 3],
            algorithm: Algorithm::Viem,
            seed,
        }
    }

    fn entry() -> CacheEntry {
        CacheEntry::new(vec![0, 0, 0, 1, 1, 1], 4, 2)
    }

    #[test]
    fn records_roundtrip() {
        let line = insert_line(&key(7), &entry());
        assert_eq!(
            parse_record(&line).unwrap(),
            Record::Insert(key(7), entry())
        );
        let line = touch_line(&key(9));
        assert_eq!(parse_record(&line).unwrap(), Record::Touch(key(9)));
    }

    #[test]
    fn inconsistent_records_are_rejected() {
        let good = insert_line(&key(1), &entry());
        for (mangle, needle) in [
            (good.replace("\"dims\":[3,2]", "\"dims\":[3,3]"), "cover"),
            (good.replace("\"dims\":[3,2]", "\"dims\":[0,6]"), "dims"),
            (good.replace("\"op\":\"insert\"", "\"op\":\"upsert\""), "op"),
            (good.replace("\"alloc\":[3,3]", "\"alloc\":[6]"), "node id"),
            (
                good.replace("\"algorithm\":\"viem\"", "\"algorithm\":\"magic\""),
                "algorithm",
            ),
            // overflowing / oversized grids must be skipped, not trusted
            (
                good.replace(
                    "\"dims\":[3,2]",
                    "\"dims\":[4294967296,4294967296,4294967296]",
                ),
                "volume",
            ),
            (
                good.replace("\"dims\":[3,2]", "\"dims\":[65536,65536]"),
                "volume",
            ),
            (good.replace("\"alloc\":[3,3]", "\"alloc\":[0,6]"), "cover"),
            (good[..good.len() / 2].to_string(), ""),
        ] {
            let err = parse_record(&mangle).unwrap_err();
            assert!(err.contains(needle), "{mangle}: {err}");
        }
    }

    #[test]
    fn log_replays_and_compacts() {
        let dir = std::env::temp_dir().join(format!("stencil-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replay.log");
        let _ = std::fs::remove_file(&path);
        {
            let log = PersistLog::open_append(&path, 0, None).unwrap();
            log.record_insert(&key(1), &entry());
            log.record_insert(&key(2), &entry());
            log.record_touch(&key(1));
            log.flush();
        }
        // torn tail: half a record, as a kill mid-write would leave
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            let torn = insert_line(&key(3), &entry());
            f.write_all(&torn.as_bytes()[..torn.len() / 2]).unwrap();
        }
        let cache: ShardedLru<CacheKey, Arc<CacheEntry>> = ShardedLru::new(8, 2);
        let report = load_and_compact(&path, &cache).unwrap();
        assert_eq!((report.replayed, report.skipped, report.entries), (3, 1, 2));
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(3)).is_none());
        // the compacted file is pure insert records and replays identically
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(!text.contains("\"op\":\"touch\""));
        let again: ShardedLru<CacheKey, Arc<CacheEntry>> = ShardedLru::new(8, 2);
        load_and_compact(&path, &again).unwrap();
        for shard in 0..cache.num_shards() {
            assert_eq!(
                again
                    .shard_entries_lru_first(shard)
                    .iter()
                    .map(|(k, _)| k.clone())
                    .collect::<Vec<_>>(),
                cache
                    .shard_entries_lru_first(shard)
                    .iter()
                    .map(|(k, _)| k.clone())
                    .collect::<Vec<_>>()
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    fn snapshotter_for(cache: &Arc<ShardedLru<CacheKey, Arc<CacheEntry>>>) -> CacheSnapshotter {
        let locks = Arc::new(
            (0..cache.num_shards())
                .map(|_| Mutex::new(()))
                .collect::<Vec<_>>(),
        );
        CacheSnapshotter::new(Arc::clone(cache), locks)
    }

    /// Explicit online compaction rewrites the log to one insert per
    /// resident entry and keeps appending to the swapped-in file.
    #[test]
    fn explicit_compaction_rewrites_and_keeps_appending() {
        let dir = std::env::temp_dir().join(format!("stencil-persist-c-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("compact.log");
        let _ = std::fs::remove_file(&path);

        let cache: Arc<ShardedLru<CacheKey, Arc<CacheEntry>>> = Arc::new(ShardedLru::new(8, 2));
        let log = PersistLog::open_append(&path, 0, Some(snapshotter_for(&cache))).unwrap();
        // simulate the service: apply to the cache, then record
        for seed in [1, 2] {
            cache.insert(key(seed), Arc::new(entry()));
            log.record_insert(&key(seed), &entry());
        }
        for _ in 0..20 {
            cache.touch(&key(1));
            log.record_touch(&key(1));
            cache.touch(&key(2));
            log.record_touch(&key(2));
        }
        log.flush();
        assert!(std::fs::read_to_string(&path).unwrap().lines().count() > 20);

        log.compact();
        assert_eq!(log.stats().compactions, 1);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "compacted to one insert per entry");
        assert!(!text.contains("\"op\":\"touch\""));

        // appends keep flowing into the swapped-in file
        cache.insert(key(3), Arc::new(entry()));
        log.record_insert(&key(3), &entry());
        log.flush();
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 3);

        // the swapped log replays to the same per-shard state
        drop(log);
        let reloaded: ShardedLru<CacheKey, Arc<CacheEntry>> = ShardedLru::new(8, 2);
        load_and_compact(&path, &reloaded).unwrap();
        for shard in 0..cache.num_shards() {
            assert_eq!(
                reloaded
                    .shard_entries_lru_first(shard)
                    .iter()
                    .map(|(k, _)| k.clone())
                    .collect::<Vec<_>>(),
                cache
                    .shard_entries_lru_first(shard)
                    .iter()
                    .map(|(k, _)| k.clone())
                    .collect::<Vec<_>>()
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Crossing the byte threshold triggers compaction from the writer
    /// itself, and sustained touch traffic cannot grow the log: three
    /// cycles in, the file still holds just the resident entries.
    #[test]
    fn threshold_compaction_bounds_log_growth_under_touch_traffic() {
        let dir = std::env::temp_dir().join(format!("stencil-persist-t-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("threshold.log");
        let _ = std::fs::remove_file(&path);

        const THRESHOLD: u64 = 4096;
        let cache: Arc<ShardedLru<CacheKey, Arc<CacheEntry>>> = Arc::new(ShardedLru::new(8, 2));
        let log = PersistLog::open_append(&path, THRESHOLD, Some(snapshotter_for(&cache))).unwrap();
        for seed in [1, 2] {
            cache.insert(key(seed), Arc::new(entry()));
            log.record_insert(&key(seed), &entry());
        }
        let done_before = crate::faultpoint::hits("persist.compact.done");
        while log.stats().compactions < 3 {
            // alternating touches: every hit changes recency, so every hit
            // appends a record — the sustained-touch worst case
            cache.touch(&key(1));
            log.record_touch(&key(1));
            cache.touch(&key(2));
            log.record_touch(&key(2));
        }
        log.flush();
        let size = std::fs::metadata(&path).unwrap().len();
        assert!(
            size <= THRESHOLD + 2048,
            "log grew to {size} bytes across compactions"
        );
        // the fault-point hit counters observed every cycle
        assert!(crate::faultpoint::hits("persist.compact.done") >= done_before + 3);
        drop(log);
        let reloaded: ShardedLru<CacheKey, Arc<CacheEntry>> = ShardedLru::new(8, 2);
        let report = load_and_compact(&path, &reloaded).unwrap();
        assert_eq!(report.skipped, 0, "swapped logs must replay cleanly");
        assert_eq!(reloaded.len(), 2);
        let _ = std::fs::remove_file(&path);
    }
}
