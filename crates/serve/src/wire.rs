//! The transport-level wire error strings, in one place.
//!
//! `docs/PROTOCOL.md` specifies three error lines the transport itself can
//! emit (as opposed to errors produced by request handling): the overload
//! shed line, the mid-line stall reap line, and the route-mode
//! backend-unavailable line.  They used to be spelled out where they were
//! written — the TCP frontend ([`crate::server`]) and the router's
//! forwarded-error path ([`crate::router`]) — which let the literals drift
//! apart from each other and from the documented protocol.  Now every wire
//! string is defined here, the emitters import it, and the unit test below
//! pins the exact bytes so a change to any of them is a deliberate,
//! reviewed protocol change.
//!
//! The full lines are provided pre-rendered (and newline-terminated) so the
//! emitters can write them in **one** buffered write — the protocol promise
//! that shed/reap lines can never arrive torn.

/// The error *text* of the overload shed line.
pub const ERROR_OVERLOADED: &str = "overloaded";

/// The error *text* of the mid-line stall reap line.
pub const ERROR_READ_TIMEOUT: &str = "read timeout";

/// The error *text* of a routed line whose owning backends are all
/// unreachable (route mode only; the request id is echoed when present).
pub const ERROR_BACKEND_UNAVAILABLE: &str = "backend unavailable";

/// The full overload shed line, as specified in `docs/PROTOCOL.md`: sent
/// once to a connection past `--max-conns`, then the connection is closed.
pub const OVERLOADED_LINE: &str = "{\"status\":\"error\",\"error\":\"overloaded\"}";

/// [`OVERLOADED_LINE`] with its terminator, for the single-write emit path.
pub const OVERLOADED_LINE_NL: &str = "{\"status\":\"error\",\"error\":\"overloaded\"}\n";

/// The full reap line: a client that held a half-written line longer than
/// `--read-timeout` receives this, then the connection is closed.
pub const READ_TIMEOUT_LINE: &str = "{\"status\":\"error\",\"error\":\"read timeout\"}";

/// [`READ_TIMEOUT_LINE`] with its terminator, for the single-write emit path.
pub const READ_TIMEOUT_LINE_NL: &str = "{\"status\":\"error\",\"error\":\"read timeout\"}\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;

    /// The composed lines must be exactly the error texts rendered through
    /// the normal response shape — and stay parseable, newline-composed and
    /// byte-for-byte what `docs/PROTOCOL.md` specifies.
    #[test]
    fn wire_lines_match_their_error_texts_and_stay_well_formed() {
        assert_eq!(
            OVERLOADED_LINE,
            format!("{{\"status\":\"error\",\"error\":\"{ERROR_OVERLOADED}\"}}")
        );
        assert_eq!(
            READ_TIMEOUT_LINE,
            format!("{{\"status\":\"error\",\"error\":\"{ERROR_READ_TIMEOUT}\"}}")
        );
        assert_eq!(OVERLOADED_LINE_NL, format!("{OVERLOADED_LINE}\n"));
        assert_eq!(READ_TIMEOUT_LINE_NL, format!("{READ_TIMEOUT_LINE}\n"));
        for (line, text) in [
            (OVERLOADED_LINE, ERROR_OVERLOADED),
            (READ_TIMEOUT_LINE, ERROR_READ_TIMEOUT),
        ] {
            let v = Value::parse(line).expect("wire error lines must parse");
            assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
            assert_eq!(v.get("error").and_then(Value::as_str), Some(text));
        }
        // the router renders BACKEND_UNAVAILABLE through MapResponse, so the
        // id-less form must match the same shape
        let mut rendered = String::new();
        crate::protocol::MapResponse {
            id: None,
            body: crate::protocol::ResponseBody::Error(ERROR_BACKEND_UNAVAILABLE.to_string()),
        }
        .write_into(&mut rendered);
        assert_eq!(
            rendered,
            format!("{{\"status\":\"error\",\"error\":\"{ERROR_BACKEND_UNAVAILABLE}\"}}")
        );
    }
}
