//! The mapping service: canonicalizing cache in front of the mapping engine,
//! with streaming-evaluator admission control.
//!
//! Every request is canonicalised ([`stencil_mapping::canonical`]) before the
//! cache lookup, so all requests that are equal up to a dimension relabeling
//! (and stencil offset order) share one cache entry.  Misses are computed
//! through the existing mapping engine — the rank-local mappers run through
//! the allocation-free parallel pool, the VieM-style pipeline through the
//! multilevel partitioner — and every computed mapping is scored once with
//! [`stencil_mapping::metrics::evaluate_streaming`] (`O(p)` memory); the
//! cost rides along in the cache entry, so admission decisions on hits are
//! free.
//!
//! Everything is deterministic: for a fixed request sequence the responses
//! are byte-identical for every thread count (the engine's guarantee) and
//! the hit/miss pattern is a pure function of the sequence.

use std::sync::{Arc, Mutex, OnceLock};

use crate::cache::{CacheStats, EvictionPolicy, ShardedLru};
use crate::faultpoint;
use crate::json::{encode_nodes_compact, Value};
use crate::persist::{load_and_compact, CacheSnapshotter, LoadReport, PersistLog, PersistStats};
use crate::protocol::{
    Algorithm, Encoding, MapRequest, MapResponse, OverBudget, Payload, Query, ResponseBody,
};
use stencil_mapping::baselines::Blocked;
use stencil_mapping::canonical::{canonicalize, Canonical};
use stencil_mapping::hyperplane::Hyperplane;
use stencil_mapping::kdtree::KdTree;
use stencil_mapping::metrics::evaluate_streaming;
use stencil_mapping::nodecart::Nodecart;
use stencil_mapping::stencil_strips::StencilStrips;
use stencil_mapping::viem::GraphMapper;
use stencil_mapping::{Mapper, MappingProblem};

/// Cache key of one canonical mapping computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical dimension sizes.
    pub dims: Vec<usize>,
    /// Canonical stencil, flattened (`k * ndims` entries).
    pub stencil: Vec<i64>,
    /// Torus boundaries.
    pub periodic: bool,
    /// Per-node allocation sizes.
    pub alloc: Vec<usize>,
    /// Algorithm.
    pub algorithm: Algorithm,
    /// Seed (normalised to 0 for algorithms that ignore it).
    pub seed: u64,
}

impl CacheKey {
    /// The canonical cache key of one parsed request, exactly as
    /// [`MappingService`] caches it: canonical dims/stencil from
    /// [`stencil_mapping::canonical`], the requested algorithm, and the seed
    /// normalised to 0 for algorithms that ignore it.  The router hashes
    /// [`CacheKey::routing_bytes`] of this key, so canonically-equal
    /// requests always land on the same backend shard.
    pub fn of_request(req: &MapRequest) -> CacheKey {
        let canon = canonicalize(&req.dims, &req.stencil);
        CacheKey::of_canonical(req, &canon, req.algorithm, req.seed)
    }

    /// [`CacheKey::of_request`] with an already-computed canonicalisation
    /// and an explicit `(algorithm, seed)` (the budget-fallback path probes
    /// sibling keys of the same canonical problem).
    pub fn of_canonical(
        req: &MapRequest,
        canon: &Canonical,
        algorithm: Algorithm,
        seed: u64,
    ) -> CacheKey {
        CacheKey {
            dims: canon.dims.as_slice().to_vec(),
            stencil: canon.stencil.to_flat(),
            periodic: req.periodic,
            alloc: req.alloc.sizes().to_vec(),
            algorithm,
            seed: if algorithm.uses_seed() { seed } else { 0 },
        }
    }

    /// A stable, unambiguous byte encoding of the key for consistent
    /// hashing.  Every field is length-prefixed or fixed-width
    /// (little-endian), so distinct keys can never encode to the same
    /// bytes.  This encoding is part of the router's placement contract:
    /// changing it reshuffles every key across the ring.
    pub fn routing_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 * (self.dims.len() + self.alloc.len()) + 32);
        out.extend_from_slice(&(self.dims.len() as u32).to_le_bytes());
        for &d in &self.dims {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        out.extend_from_slice(&(self.stencil.len() as u32).to_le_bytes());
        for &s in &self.stencil {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.push(self.periodic as u8);
        out.extend_from_slice(&(self.alloc.len() as u32).to_le_bytes());
        for &a in &self.alloc {
            out.extend_from_slice(&(a as u64).to_le_bytes());
        }
        let name = self.algorithm.wire_name().as_bytes();
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out
    }
}

/// A cached mapping in canonical coordinates, with its cost.
#[derive(Debug, Default)]
pub struct CacheEntry {
    /// `position → node` on the canonical grid.
    pub nodes: Vec<u32>,
    /// Total inter-node edges.
    pub j_sum: u64,
    /// Bottleneck-node egress.
    pub j_max: u64,
    /// Lazily memoised compact encoding of `nodes` (canonical orientation):
    /// computed at most once per entry, so repeat compact-mode hits on an
    /// identity-permutation request skip the encode entirely.
    compact: OnceLock<String>,
}

impl CacheEntry {
    /// Creates an entry (the compact encoding is computed lazily).
    pub fn new(nodes: Vec<u32>, j_sum: u64, j_max: u64) -> Self {
        CacheEntry {
            nodes,
            j_sum,
            j_max,
            compact: OnceLock::new(),
        }
    }

    /// The compact wire encoding of the canonical-orientation node table,
    /// encoded on first use and memoised.
    pub fn compact_encoding(&self) -> &str {
        self.compact
            .get_or_init(|| encode_nodes_compact(&self.nodes))
    }
}

impl PartialEq for CacheEntry {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes && self.j_sum == other.j_sum && self.j_max == other.j_max
    }
}

impl Eq for CacheEntry {}

impl Clone for CacheEntry {
    fn clone(&self) -> Self {
        CacheEntry::new(self.nodes.clone(), self.j_sum, self.j_max)
    }
}

/// The GDSF recompute cost of a cache entry: grid volume × the algorithm's
/// [`Algorithm::cost_weight`].  A pure function of the key, so the
/// persistence log never stores costs — replay re-derives them.  Ignored
/// under LRU eviction.
pub fn entry_cost(key: &CacheKey) -> u64 {
    let volume: u64 = key.dims.iter().map(|&d| d as u64).product();
    volume.saturating_mul(key.algorithm.cost_weight())
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Total cache capacity in entries.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Append-only persistence log for canonical cache entries (`None`
    /// disables persistence).  Loaded — and compacted — on start, appended
    /// to write-behind while serving, so a restarted server answers
    /// previously cached requests as hits without recomputation.
    pub persist_path: Option<std::path::PathBuf>,
    /// Eviction policy: LRU (default, byte-stable goldens) or GDSF
    /// (recompute cost scales retention).
    pub eviction: EvictionPolicy,
    /// Online-compaction threshold for the persistence log, in bytes: once
    /// the live log outgrows it, the writer thread rewrites and atomically
    /// swaps the log without a restart.  0 disables online compaction
    /// (load-time compaction still runs).
    pub compact_bytes: u64,
}

/// Default online-compaction threshold (`--compact-bytes`): 64 MiB.
pub const DEFAULT_COMPACT_BYTES: u64 = 64 * 1024 * 1024;

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 1024,
            cache_shards: 8,
            persist_path: None,
            eviction: EvictionPolicy::Lru,
            compact_bytes: DEFAULT_COMPACT_BYTES,
        }
    }
}

/// The caching mapping service.  Cheap to share: wrap it in an [`Arc`] and
/// hand clones to every connection thread.  Dropping the service flushes
/// and closes the persistence log.
pub struct MappingService {
    cache: Arc<ShardedLru<CacheKey, Arc<CacheEntry>>>,
    persist: Option<PersistLog>,
    /// One lock per cache shard, held around `(cache op, log record)` pairs
    /// when persistence is on, so the log's per-shard record order always
    /// matches the order the operations hit the shard — without it, two
    /// workers could touch the same shard and log in the opposite order,
    /// and a replay would reproduce the wrong recency.  The persistence
    /// writer's online compaction takes *all* of them to freeze the cache
    /// while it snapshots (see [`CacheSnapshotter`]).  Unused (and
    /// uncontended) without persistence.
    persist_locks: Arc<Vec<Mutex<()>>>,
    load_report: LoadReport,
}

/// Algorithms tried (in order) when a budgeted request overflows and asks
/// for a fallback: the paper's specialised algorithms, cheapest useful
/// quality first, then Nodecart.
const FALLBACK_ORDER: [Algorithm; 4] = [
    Algorithm::Hyperplane,
    Algorithm::KdTree,
    Algorithm::StencilStrips,
    Algorithm::Nodecart,
];

impl MappingService {
    /// Creates a service with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when `persist_path` is set and the log cannot be loaded or
    /// opened; use [`MappingService::open`] to handle that gracefully.
    pub fn new(cfg: &ServiceConfig) -> Self {
        Self::open(cfg).expect("persistence setup failed")
    }

    /// Creates a service, loading (and compacting) the persistence log when
    /// one is configured.
    pub fn open(cfg: &ServiceConfig) -> Result<Self, String> {
        let cache = Arc::new(ShardedLru::with_policy(
            cfg.cache_capacity,
            cfg.cache_shards,
            cfg.eviction,
        ));
        let persist_locks: Arc<Vec<Mutex<()>>> =
            Arc::new((0..cache.num_shards()).map(|_| Mutex::new(())).collect());
        let (persist, load_report) = match &cfg.persist_path {
            None => (None, LoadReport::default()),
            Some(path) => {
                let report = load_and_compact(path, &cache)?;
                let snapshotter =
                    CacheSnapshotter::new(Arc::clone(&cache), Arc::clone(&persist_locks));
                let log = PersistLog::open_append(path, cfg.compact_bytes, Some(snapshotter))?;
                (Some(log), report)
            }
        };
        Ok(MappingService {
            cache,
            persist,
            persist_locks,
            load_report,
        })
    }

    /// Cache hit/miss counters and entry count.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// What the persistence log replayed at start (all zeros without
    /// persistence).
    pub fn load_report(&self) -> LoadReport {
        self.load_report
    }

    /// Blocks until every persistence record queued so far is on disk.
    /// No-op without persistence.
    pub fn flush_persistence(&self) {
        if let Some(p) = &self.persist {
            p.flush();
        }
    }

    /// Blocks until the persistence log has been compacted (rewritten to
    /// one insert per resident entry and atomically swapped).  Used on
    /// drain/shutdown and by the crash tests to trigger compaction at a
    /// deterministic moment.  No-op without persistence.
    pub fn compact_persistence(&self) {
        if let Some(p) = &self.persist {
            p.compact();
        }
    }

    /// The persistence writer's counters (appends, drops, flushes,
    /// compactions); `None` without persistence.
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.persist.as_ref().map(|p| p.stats())
    }

    /// The `(key, entry)` pairs of one cache shard, least recently used
    /// first, without touching recency (diagnostics; the persistence reload
    /// tests compare these across a restart).
    pub fn cache_shard_entries_lru_first(&self, shard: usize) -> Vec<(CacheKey, Arc<CacheEntry>)> {
        self.cache.shard_entries_lru_first(shard)
    }

    /// Number of cache shards.
    pub fn cache_num_shards(&self) -> usize {
        self.cache.num_shards()
    }

    /// Handles one wire line: a request object or a `{"batch": […]}`
    /// wrapper.  Always returns exactly one line of response JSON (without
    /// the trailing newline).
    ///
    /// Batch items are processed strictly in order: the `cached` flags and
    /// the cache's recency order (and therefore later evictions) are a pure
    /// function of the request sequence, which keeps responses byte-identical
    /// for every thread count — computing items concurrently would race
    /// canonically-equal items on both.  Parallelism lives below (the
    /// engine's rank-parallel fan-out on every miss) and above (the TCP
    /// worker pool, where one pooled worker holds a connection at a time).
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_line_mode(line, false)
    }

    /// Like [`MappingService::handle_line`], but with `degrade` set every
    /// table response is answered cost-only (as if `want_mapping:false`)
    /// and flagged `"degraded":true` — the overloaded server's way of
    /// keeping the admission-control answer flowing while shedding the
    /// expensive serialisation.  Point queries and cost-only requests are
    /// already cheap and are served in full.
    pub fn handle_line_mode(&self, line: &str, degrade: bool) -> String {
        let mut out = String::new();
        self.handle_line_into(line, degrade, &mut out);
        out
    }

    /// Like [`MappingService::handle_line_mode`], but appends the response
    /// line (without the trailing newline) to `out` instead of allocating a
    /// fresh `String`.  Responses stream straight into the output via
    /// [`MapResponse::write_into`] — no intermediate [`Value`] tree is built
    /// anywhere on the serving path (byte-identical output; see the
    /// direct-writer tests in `protocol`) — and the TCP workers reuse one
    /// buffer for a whole turn's worth of responses.
    pub fn handle_line_into(&self, line: &str, degrade: bool, out: &mut String) {
        faultpoint::reach("serve.request");
        let parsed = match Value::parse(line) {
            Ok(v) => v,
            Err(e) => {
                MapResponse {
                    id: None,
                    body: ResponseBody::Error(format!("invalid JSON: {e}")),
                }
                .write_into(out);
                return;
            }
        };
        if let Some(cmd) = parsed.get("admin") {
            self.handle_admin(&parsed, cmd, out);
            return;
        }
        if let Some(batch) = parsed.get("batch") {
            let Some(items) = batch.as_arr() else {
                MapResponse {
                    id: None,
                    body: ResponseBody::Error("\"batch\" must be an array".to_string()),
                }
                .write_into(out);
                return;
            };
            out.push_str("{\"batch\":[");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                self.handle_value_mode(item, degrade).write_into(out);
            }
            out.push_str("]}");
        } else {
            self.handle_value_mode(&parsed, degrade).write_into(out);
        }
    }

    /// Handles an `{"admin": "..."}` control request.  Three commands:
    ///
    /// * `"handoff"`: flush and compact the persistence log, then ship the
    ///   whole compacted log (one insert per resident entry) base64-encoded
    ///   in the response, so a new shard can start warm from it
    ///   (`stencil-serve --handoff ADDR --persist FILE`, and the router's
    ///   reshard choreography).  Requires persistence; without `--persist`
    ///   the command is answered with an error line.
    /// * `"stats"`: one-line cache counters (`hits`, `misses`, `entries`) —
    ///   the per-backend payload the router's stats fan-out aggregates.
    /// * `"absorb"`: the inverse of handoff — a base64 `"log"` of
    ///   persistence insert records is replayed into the cache (and the
    ///   persistence log, when enabled), **skipping keys already resident**
    ///   so a replayed image never perturbs recency of live entries.  The
    ///   router streams moved key ranges through this during a reshard.
    fn handle_admin(&self, v: &Value, cmd: &Value, out: &mut String) {
        let id = v.get("id").cloned();
        let error = |out: &mut String, msg: String| {
            MapResponse {
                id: id.clone(),
                body: ResponseBody::Error(msg),
            }
            .write_into(out)
        };
        match cmd.as_str() {
            Some("handoff") => {
                let Some(p) = &self.persist else {
                    error(out, "handoff requires --persist".to_string());
                    return;
                };
                p.flush();
                p.compact();
                let bytes = match std::fs::read(p.path()) {
                    Ok(bytes) => bytes,
                    Err(e) => {
                        error(out, format!("cannot read persistence log: {e}"));
                        return;
                    }
                };
                let mut fields = Vec::new();
                if let Some(id) = id {
                    fields.push(("id", id));
                }
                fields.push(("status", Value::str("ok")));
                fields.push(("admin", Value::str("handoff")));
                fields.push(("entries", Value::Num(self.cache.stats().len as f64)));
                fields.push(("log_bytes", Value::Num(bytes.len() as f64)));
                fields.push(("log", Value::str(crate::json::base64_encode(&bytes))));
                Value::obj(fields).write_into(out);
            }
            Some("stats") => {
                let stats = self.cache.stats();
                let mut fields = Vec::new();
                if let Some(id) = id {
                    fields.push(("id", id));
                }
                fields.push(("status", Value::str("ok")));
                fields.push(("admin", Value::str("stats")));
                fields.push(("hits", Value::Num(stats.hits as f64)));
                fields.push(("misses", Value::Num(stats.misses as f64)));
                fields.push(("entries", Value::Num(stats.len as f64)));
                Value::obj(fields).write_into(out);
            }
            Some("absorb") => {
                let Some(log) = v.get("log").and_then(Value::as_str) else {
                    error(out, "absorb needs a base64 \"log\" string".to_string());
                    return;
                };
                let bytes = match crate::json::base64_decode(log) {
                    Ok(bytes) => bytes,
                    Err(e) => {
                        error(out, format!("absorb log is not valid base64: {e}"));
                        return;
                    }
                };
                let Ok(text) = String::from_utf8(bytes) else {
                    error(out, "absorb log is not valid UTF-8".to_string());
                    return;
                };
                let (mut inserted, mut skipped) = (0u64, 0u64);
                for line in text.lines().filter(|l| !l.is_empty()) {
                    // touches (recency only) and undecodable lines are
                    // skipped: an absorbed image warms the cache, it never
                    // reorders or poisons it
                    let record = match crate::persist::parse_record(line) {
                        Ok(record) => record,
                        Err(_) => {
                            skipped += 1;
                            continue;
                        }
                    };
                    let crate::persist::Record::Insert(key, entry) = record else {
                        skipped += 1;
                        continue;
                    };
                    if self.cache.contains(&key) {
                        skipped += 1;
                        continue;
                    }
                    let entry = Arc::new(entry);
                    let cost = entry_cost(&key);
                    if let Some(p) = &self.persist {
                        let lock = &self.persist_locks[self.cache.shard_of(&key)];
                        let _guard = lock.lock().expect("persist lock poisoned");
                        p.record_insert(&key, &entry);
                        self.cache.insert_with_cost(key, entry, cost);
                    } else {
                        self.cache.insert_with_cost(key, entry, cost);
                    }
                    inserted += 1;
                }
                let mut fields = Vec::new();
                if let Some(id) = id {
                    fields.push(("id", id));
                }
                fields.push(("status", Value::str("ok")));
                fields.push(("admin", Value::str("absorb")));
                fields.push(("inserted", Value::Num(inserted as f64)));
                fields.push(("skipped", Value::Num(skipped as f64)));
                Value::obj(fields).write_into(out);
            }
            _ => error(
                out,
                format!(
                    "unknown admin command {} (expected \"handoff\", \"stats\" or \"absorb\")",
                    cmd.compact()
                ),
            ),
        }
    }

    /// Handles one parsed request object.
    pub fn handle_value(&self, v: &Value) -> MapResponse {
        self.handle_value_mode(v, false)
    }

    fn handle_value_mode(&self, v: &Value, degrade: bool) -> MapResponse {
        match MapRequest::from_value(v) {
            Ok(req) => self.handle_request_mode(&req, degrade),
            Err(e) => MapResponse {
                id: v.get("id").cloned(),
                body: ResponseBody::Error(e),
            },
        }
    }

    /// Handles one request end to end: canonicalise, cache lookup or
    /// compute, admission control, transport back to the request's own
    /// dimension order.
    pub fn handle_request(&self, req: &MapRequest) -> MapResponse {
        self.handle_request_mode(req, false)
    }

    fn handle_request_mode(&self, req: &MapRequest, degrade: bool) -> MapResponse {
        let canon = canonicalize(&req.dims, &req.stencil);
        let (entry, cached) = match self.lookup_or_compute(req, &canon, req.algorithm, req.seed) {
            Ok(hit) => hit,
            Err(e) => {
                return MapResponse {
                    id: req.id.clone(),
                    body: ResponseBody::Error(e),
                }
            }
        };

        // admission control: the streaming-evaluated cost rides in the entry
        let mut served = (req.algorithm, entry, cached, None);
        if let Some(budget) = req.max_jsum {
            if served.1.j_sum > budget {
                match req.on_over_budget {
                    OverBudget::Reject => {
                        return MapResponse {
                            id: req.id.clone(),
                            body: ResponseBody::Error(format!(
                                "over budget: {} predicts Jsum = {} > max_jsum = {budget}",
                                req.algorithm.wire_name(),
                                served.1.j_sum
                            )),
                        }
                    }
                    OverBudget::Fallback => {
                        let mut found = None;
                        for alg in FALLBACK_ORDER {
                            if alg == req.algorithm {
                                continue;
                            }
                            match self.lookup_or_compute(req, &canon, alg, req.seed) {
                                Ok((entry, cached)) if entry.j_sum <= budget => {
                                    found = Some((alg, entry, cached, Some(req.algorithm)));
                                    break;
                                }
                                // inapplicable or still over budget: keep trying
                                Ok(_) | Err(_) => {}
                            }
                        }
                        match found {
                            Some(f) => served = f,
                            None => {
                                return MapResponse {
                                    id: req.id.clone(),
                                    body: ResponseBody::Error(format!(
                                        "over budget: no algorithm reaches Jsum <= {budget} \
                                         (requested {} predicted {})",
                                        req.algorithm.wire_name(),
                                        served.1.j_sum
                                    )),
                                }
                            }
                        }
                    }
                }
            }
        }

        let (algorithm, entry, cached, fallback_from) = served;
        // overload degradation strips exactly the table payloads — the part
        // whose serialisation cost scales with the grid volume
        let degraded = degrade && req.want_mapping && req.query.is_none();
        let payload = match &req.query {
            // point lookups: read the cached canonical table entry-wise,
            // transporting each queried position through the relabeling —
            // O(|ranks| · d), no table serialisation at all
            Some(Query::NewRankOf(ranks)) => Payload::Points {
                nodes: ranks
                    .iter()
                    .map(|&x| entry.nodes[canon.canonical_index_of(&req.dims, x)])
                    .collect(),
                ranks: ranks.clone(),
            },
            None if !req.want_mapping || degraded => Payload::None,
            None => match req.encoding {
                Encoding::Verbose => {
                    Payload::Table(canon.restore_positions(&req.dims, &entry.nodes))
                }
                Encoding::Compact => Payload::TableCompact(if canon.is_identity_permutation() {
                    // the restored table equals the canonical one, so the
                    // memoised per-entry encoding is reused as-is
                    entry.compact_encoding().to_string()
                } else {
                    encode_nodes_compact(&canon.restore_positions(&req.dims, &entry.nodes))
                }),
            },
        };
        MapResponse {
            id: req.id.clone(),
            body: ResponseBody::Ok {
                algorithm,
                fallback_from,
                cached,
                degraded,
                j_sum: entry.j_sum,
                j_max: entry.j_max,
                payload,
            },
        }
    }

    /// Returns the cache entry for `(canonical request, algorithm)`,
    /// computing and inserting it on a miss.  The boolean is `true` on a
    /// hit.  Concurrent misses on the same key may compute twice; both
    /// compute the identical entry, so the race is benign.
    fn lookup_or_compute(
        &self,
        req: &MapRequest,
        canon: &Canonical,
        algorithm: Algorithm,
        seed: u64,
    ) -> Result<(Arc<CacheEntry>, bool), String> {
        let key = CacheKey::of_canonical(req, canon, algorithm, seed);
        if let Some(p) = &self.persist {
            // hold the shard's persist lock across (lookup, touch record) so
            // the log's per-shard order matches the shard's operation order;
            // touches of an already-MRU key replay as no-ops and are skipped,
            // so a hot key costs one log record ever, not one per hit
            let lock = &self.persist_locks[self.cache.shard_of(&key)];
            let guard = lock.lock().expect("persist lock poisoned");
            if let Some((entry, was_mru)) = self.cache.get_tracking_mru(&key) {
                if !was_mru {
                    p.record_touch(&key);
                }
                return Ok((entry, true));
            }
            drop(guard);
        } else if let Some(entry) = self.cache.get(&key) {
            return Ok((entry, true));
        }
        let problem = MappingProblem::with_periodicity(
            canon.dims.clone(),
            canon.stencil.clone(),
            req.alloc.clone(),
            req.periodic,
        )
        .map_err(|e| format!("inconsistent problem: {e}"))?;
        let mapper: Box<dyn Mapper> = match algorithm {
            Algorithm::Hyperplane => Box::new(Hyperplane::default()),
            Algorithm::KdTree => Box::new(KdTree),
            Algorithm::StencilStrips => Box::new(StencilStrips),
            Algorithm::Nodecart => Box::new(Nodecart),
            Algorithm::Viem => Box::new(GraphMapper::with_seed(seed)),
            Algorithm::Blocked => Box::new(Blocked),
        };
        let mapping = mapper
            .compute(&problem)
            .map_err(|e| format!("{}: {e}", algorithm.wire_name()))?;
        let cost = evaluate_streaming(&canon.dims, &canon.stencil, req.periodic, &mapping);
        let entry = Arc::new(CacheEntry::new(
            mapping
                .node_of_position_slice()
                .iter()
                .map(|&n| n as u32)
                .collect(),
            cost.j_sum,
            cost.j_max,
        ));
        let cost = entry_cost(&key);
        if let Some(p) = &self.persist {
            let lock = &self.persist_locks[self.cache.shard_of(&key)];
            let _guard = lock.lock().expect("persist lock poisoned");
            p.record_insert(&key, &entry);
            self.cache.insert_with_cost(key, Arc::clone(&entry), cost);
        } else {
            self.cache.insert_with_cost(key, Arc::clone(&entry), cost);
        }
        Ok((entry, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> MappingService {
        MappingService::new(&ServiceConfig::default())
    }

    #[test]
    fn serves_a_minimal_request() {
        let s = service();
        let out = s.handle_line(r#"{"id":1,"dims":[12,8],"nodes":8}"#);
        let v = Value::parse(&out).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(v.get("cached").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("id").and_then(Value::as_usize), Some(1));
        let nodes = v.get("nodes").and_then(Value::as_arr).unwrap();
        assert_eq!(nodes.len(), 96);
        // second identical request is a cache hit with the same payload
        let out2 = s.handle_line(r#"{"id":1,"dims":[12,8],"nodes":8}"#);
        let v2 = Value::parse(&out2).unwrap();
        assert_eq!(v2.get("cached").and_then(Value::as_bool), Some(true));
        assert_eq!(v2.get("j_sum"), v.get("j_sum"));
        assert_eq!(v2.get("nodes"), v.get("nodes"));
    }

    #[test]
    fn permuted_request_hits_the_same_entry() {
        let s = service();
        s.handle_line(r#"{"dims":[12,8],"nodes":8,"algorithm":"kdtree"}"#);
        assert_eq!(s.cache_stats().len, 1);
        let out = s.handle_line(r#"{"dims":[8,12],"nodes":8,"algorithm":"kdtree"}"#);
        let v = Value::parse(&out).unwrap();
        assert_eq!(v.get("cached").and_then(Value::as_bool), Some(true));
        assert_eq!(
            s.cache_stats().len,
            1,
            "no second entry for the permutation"
        );
    }

    #[test]
    fn batch_preserves_order_and_ids() {
        let s = service();
        let out = s.handle_line(
            r#"{"batch":[
                {"id":"a","dims":[6,6],"nodes":4,"want_mapping":false},
                {"id":"b","dims":[4,4]},
                {"id":"c","dims":[6,6],"nodes":4,"algorithm":"blocked","want_mapping":false}
            ]}"#,
        );
        let v = Value::parse(&out).unwrap();
        let batch = v.get("batch").and_then(Value::as_arr).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].get("id").and_then(Value::as_str), Some("a"));
        assert_eq!(batch[0].get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(batch[1].get("id").and_then(Value::as_str), Some("b"));
        assert_eq!(
            batch[1].get("status").and_then(Value::as_str),
            Some("error")
        );
        assert_eq!(batch[2].get("id").and_then(Value::as_str), Some("c"));
    }

    #[test]
    fn batch_items_see_earlier_items_inserts_in_order() {
        // Sequential in-line semantics: a canonically-equal later item is a
        // hit on the earlier item's insert, at every thread count.
        let s = service();
        let out = s.handle_line(
            r#"{"batch":[
                {"id":1,"dims":[12,8],"nodes":8,"want_mapping":false},
                {"id":2,"dims":[8,12],"nodes":8,"want_mapping":false}
            ]}"#,
        );
        let v = Value::parse(&out).unwrap();
        let batch = v.get("batch").and_then(Value::as_arr).unwrap();
        assert_eq!(batch[0].get("cached").and_then(Value::as_bool), Some(false));
        assert_eq!(batch[1].get("cached").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn over_budget_rejects_and_falls_back() {
        let s = service();
        // blocked on a tall narrow grid has a hefty Jsum; budget 1 rejects
        let out = s.handle_line(r#"{"dims":[16,4],"nodes":8,"algorithm":"blocked","max_jsum":1}"#);
        let v = Value::parse(&out).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert!(v
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("over budget"));
        // with fallback, a specialised algorithm under a generous budget wins
        let out = s.handle_line(
            r#"{"dims":[16,4],"nodes":8,"algorithm":"blocked","max_jsum":100,
                "on_over_budget":"fallback","want_mapping":false}"#,
        );
        let v = Value::parse(&out).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"), "{out}");
        assert_eq!(
            v.get("fallback_from").and_then(Value::as_str),
            Some("blocked")
        );
        let served = v.get("j_sum").and_then(Value::as_u64).unwrap();
        assert!(served <= 100);
        // impossible budget: even the fallbacks give up
        let out = s.handle_line(
            r#"{"dims":[16,4],"nodes":8,"algorithm":"blocked","max_jsum":0,
                "on_over_budget":"fallback"}"#,
        );
        let v = Value::parse(&out).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
    }

    #[test]
    fn errors_echo_the_request_id() {
        let s = service();
        let out = s.handle_line(r#"{"id":42,"dims":[4,4]}"#);
        let v = Value::parse(&out).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_usize), Some(42));
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        // malformed JSON still yields one parseable error line
        let out = s.handle_line("{nope");
        let v = Value::parse(&out).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
    }

    #[test]
    fn viem_seed_is_part_of_the_key_but_hyperplane_seed_is_not() {
        let s = service();
        s.handle_line(
            r#"{"dims":[12,10],"nodes":10,"algorithm":"viem","seed":1,"want_mapping":false}"#,
        );
        s.handle_line(
            r#"{"dims":[12,10],"nodes":10,"algorithm":"viem","seed":2,"want_mapping":false}"#,
        );
        assert_eq!(s.cache_stats().len, 2);
        s.handle_line(r#"{"dims":[12,10],"nodes":10,"seed":1,"want_mapping":false}"#);
        s.handle_line(r#"{"dims":[12,10],"nodes":10,"seed":2,"want_mapping":false}"#);
        assert_eq!(s.cache_stats().len, 3, "hyperplane ignores the seed");
    }

    #[test]
    fn restored_mapping_matches_direct_computation_cost() {
        // The served mapping for a permuted request must have the same cost
        // as computing directly on the original orientation.
        let s = service();
        let a = s.handle_line(r#"{"dims":[8,12],"nodes":8,"algorithm":"stencil_strips"}"#);
        let va = Value::parse(&a).unwrap();
        use stencil_grid::{Dims, NodeAllocation, Stencil};
        let problem = MappingProblem::new(
            Dims::from_slice(&[8, 12]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(8, 12),
        )
        .unwrap();
        let nodes: Vec<usize> = va
            .get("nodes")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .map(|x| x.as_usize().unwrap())
            .collect();
        let mapping = stencil_mapping::Mapping::from_node_of_position(&problem, &nodes).unwrap();
        let cost = evaluate_streaming(problem.dims(), problem.stencil(), false, &mapping);
        assert_eq!(Some(cost.j_sum), va.get("j_sum").and_then(Value::as_u64));
        assert_eq!(Some(cost.j_max), va.get("j_max").and_then(Value::as_u64));
    }

    #[test]
    fn compact_encoding_matches_the_verbose_table() {
        let s = service();
        let verbose = s.handle_line(r#"{"dims":[12,8],"nodes":8}"#);
        let compact = s.handle_line(r#"{"dims":[12,8],"nodes":8,"encoding":"compact"}"#);
        let vv = Value::parse(&verbose).unwrap();
        let vc = Value::parse(&compact).unwrap();
        assert_eq!(vc.get("encoding").and_then(Value::as_str), Some("compact"));
        assert_eq!(vc.get("cached").and_then(Value::as_bool), Some(true));
        let verbose_nodes: Vec<u32> = vv
            .get("nodes")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .map(|x| x.as_usize().unwrap() as u32)
            .collect();
        let decoded =
            crate::json::decode_nodes_compact(vc.get("nodes").and_then(Value::as_str).unwrap())
                .unwrap();
        assert_eq!(decoded, verbose_nodes);
        // a permuted request decodes to its own orientation's table
        let permuted = s.handle_line(r#"{"dims":[8,12],"nodes":8,"encoding":"compact"}"#);
        let vp = Value::parse(&permuted).unwrap();
        let decoded_p =
            crate::json::decode_nodes_compact(vp.get("nodes").and_then(Value::as_str).unwrap())
                .unwrap();
        let verbose_p = s.handle_line(r#"{"dims":[8,12],"nodes":8}"#);
        let vvp = Value::parse(&verbose_p).unwrap();
        let verbose_p_nodes: Vec<u32> = vvp
            .get("nodes")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .map(|x| x.as_usize().unwrap() as u32)
            .collect();
        assert_eq!(decoded_p, verbose_p_nodes);
    }

    #[test]
    fn new_rank_of_answers_match_the_table() {
        let s = service();
        let full = s.handle_line(r#"{"dims":[12,8],"nodes":8}"#);
        let vf = Value::parse(&full).unwrap();
        let table: Vec<u64> = vf
            .get("nodes")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        let q = s
            .handle_line(r#"{"dims":[12,8],"nodes":8,"query":"new_rank_of","ranks":[0,17,95,17]}"#);
        let vq = Value::parse(&q).unwrap();
        assert_eq!(vq.get("status").and_then(Value::as_str), Some("ok"), "{q}");
        assert_eq!(vq.get("cached").and_then(Value::as_bool), Some(true));
        assert!(vq.get("encoding").is_none());
        let ranks: Vec<u64> = vq
            .get("ranks")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        assert_eq!(ranks, vec![0, 17, 95, 17]);
        let nodes: Vec<u64> = vq
            .get("nodes")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        for (r, n) in ranks.iter().zip(&nodes) {
            assert_eq!(table[*r as usize], *n);
        }
        // a query on a cold entry computes it first (cached:false) and a
        // permuted repeat reads the same canonical entry point-wise
        let q2 = s.handle_line(
            r#"{"dims":[8,12],"nodes":8,"algorithm":"kdtree","query":"new_rank_of","ranks":[5]}"#,
        );
        let vq2 = Value::parse(&q2).unwrap();
        assert_eq!(vq2.get("cached").and_then(Value::as_bool), Some(false));
        let full2 = s.handle_line(r#"{"dims":[8,12],"nodes":8,"algorithm":"kdtree"}"#);
        let vf2 = Value::parse(&full2).unwrap();
        assert_eq!(
            vq2.get("nodes").and_then(Value::as_arr).unwrap()[0],
            vf2.get("nodes").and_then(Value::as_arr).unwrap()[5]
        );
    }

    #[test]
    fn persistence_survives_a_restart() {
        let dir = std::env::temp_dir().join(format!("stencil-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("service-restart.log");
        let _ = std::fs::remove_file(&path);
        let cfg = ServiceConfig {
            persist_path: Some(path.clone()),
            ..ServiceConfig::default()
        };
        let line = r#"{"dims":[12,8],"nodes":8,"algorithm":"kdtree","want_mapping":false}"#;
        let cold_response;
        {
            let s = MappingService::open(&cfg).unwrap();
            cold_response = s.handle_line(line);
            assert!(cold_response.contains("\"cached\":false"));
            // dropping the service flushes and closes the log
        }
        let s = MappingService::open(&cfg).unwrap();
        assert_eq!(s.load_report().entries, 1);
        let warm = s.handle_line(line);
        assert!(warm.contains("\"cached\":true"), "{warm}");
        assert_eq!(
            warm.replace("\"cached\":true", "\"cached\":false"),
            cold_response,
            "reloaded entry serves the identical mapping"
        );
        // the engine was never touched: zero misses on the reloaded service
        assert_eq!(s.cache_stats().misses, 0);
        let _ = std::fs::remove_file(&path);
    }

    /// The acceptance scenario: under GDSF a ~45 ms viem entry outlives a
    /// flood of ~1 ms rank-local entries that overflows the cache many
    /// times, while under LRU the same flood evicts it.
    #[test]
    fn gdsf_mode_retains_viem_entry_under_rank_local_flood() {
        let run = |eviction: EvictionPolicy| {
            let s = MappingService::new(&ServiceConfig {
                cache_capacity: 4,
                cache_shards: 1,
                eviction,
                ..ServiceConfig::default()
            });
            let viem = r#"{"dims":[6,4],"nodes":4,"algorithm":"viem","want_mapping":false}"#;
            s.handle_line(viem);
            // distinct cheap entries, each smaller in volume than the viem
            // grid, so only the algorithm's cost weight can save it
            for n in 2..14usize {
                s.handle_line(&format!(
                    r#"{{"dims":[{n},4],"nodes":{n},"want_mapping":false}}"#
                ));
            }
            let again = s.handle_line(viem);
            Value::parse(&again)
                .unwrap()
                .get("cached")
                .and_then(Value::as_bool)
                .unwrap()
        };
        assert!(run(EvictionPolicy::Gdsf), "GDSF must retain the viem entry");
        assert!(!run(EvictionPolicy::Lru), "LRU must have evicted it");
    }

    #[test]
    fn degraded_mode_strips_tables_and_flags_them() {
        let s = service();
        // table request: payload stripped, flagged
        let out = s.handle_line_mode(r#"{"id":1,"dims":[12,8],"nodes":8}"#, true);
        let v = Value::parse(&out).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(v.get("degraded").and_then(Value::as_bool), Some(true));
        assert!(v.get("nodes").is_none(), "{out}");
        assert!(v.get("j_sum").is_some());
        // cost-only and point queries are already cheap: served in full
        let out = s.handle_line_mode(r#"{"dims":[12,8],"nodes":8,"want_mapping":false}"#, true);
        assert!(!out.contains("degraded"), "{out}");
        let out = s.handle_line_mode(
            r#"{"dims":[12,8],"nodes":8,"query":"new_rank_of","ranks":[3]}"#,
            true,
        );
        let v = Value::parse(&out).unwrap();
        assert!(v.get("nodes").is_some());
        assert!(v.get("degraded").is_none(), "{out}");
        // batch items degrade individually
        let out = s.handle_line_mode(
            r#"{"batch":[{"id":"a","dims":[6,6],"nodes":4},{"id":"b","dims":[6,6],"nodes":4,"want_mapping":false}]}"#,
            true,
        );
        let v = Value::parse(&out).unwrap();
        let batch = v.get("batch").and_then(Value::as_arr).unwrap();
        assert_eq!(
            batch[0].get("degraded").and_then(Value::as_bool),
            Some(true)
        );
        assert!(batch[1].get("degraded").is_none());
        // and degrade=false is byte-identical to the plain entry point
        // (warm the entry first so `cached` agrees between the two calls)
        s.handle_line(r#"{"dims":[4,4],"nodes":4}"#);
        let a = s.handle_line(r#"{"dims":[4,4],"nodes":4}"#);
        let b = s.handle_line_mode(r#"{"dims":[4,4],"nodes":4}"#, false);
        assert_eq!(a, b);
    }

    #[test]
    fn entry_costs_scale_with_volume_and_algorithm() {
        let key = |dims: Vec<usize>, algorithm| CacheKey {
            dims,
            stencil: vec![1, 0, -1, 0],
            periodic: false,
            alloc: vec![4, 4],
            algorithm,
            seed: 0,
        };
        assert_eq!(entry_cost(&key(vec![4, 2], Algorithm::Hyperplane)), 8);
        assert_eq!(entry_cost(&key(vec![4, 2], Algorithm::Viem)), 400);
        assert_eq!(entry_cost(&key(vec![8, 8], Algorithm::KdTree)), 64);
    }

    #[test]
    fn nodecart_inapplicable_reports_error() {
        let s = service();
        // 5 nodes x 5 procs on a 5x5 grid: n = 5 cannot factor into [5,5]
        // beyond trivial splits; craft a heterogeneous alloc instead, which
        // Nodecart rejects outright.
        let out = s.handle_line(r#"{"dims":[4,4],"node_sizes":[6,6,4],"algorithm":"nodecart"}"#);
        let v = Value::parse(&out).unwrap();
        assert_eq!(
            v.get("status").and_then(Value::as_str),
            Some("error"),
            "{out}"
        );
    }
}
