//! Transport frontends: newline-delimited JSON over stdin/stdout or TCP.
//!
//! Both frontends speak the same protocol (see [`crate::protocol`]): one
//! request line in, one response line out, in order.  The stdin frontend
//! makes the service usable in pipelines and offline containers.  The TCP
//! frontend serves concurrent clients with a **fixed-size worker pool** and
//! a readiness loop: connections are registered in a shared run queue,
//! workers pop a connection, drain whatever complete lines its socket has
//! ready (non-blocking reads), answer them in order, and requeue it — so
//! the thread count is fixed at `workers` no matter how many clients are
//! connected, unlike the thread-per-connection frontend it replaced.  A
//! connection is only ever held by one worker at a time, which preserves
//! the per-connection response order (and therefore batch ordering and the
//! byte-identical-across-thread-counts guarantee: responses are produced by
//! the same sequential [`MappingService::handle_line`] calls either way).
//!
//! Both frontends frame lines through [`LineFramer`], which enforces
//! [`MAX_LINE_BYTES`] and answers invalid UTF-8 with an error response
//! instead of dropping the stream — a hostile or broken client can neither
//! balloon memory with an unterminated line nor kill the connection loop
//! with a bad byte.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::{MapResponse, ResponseBody};
use crate::service::MappingService;

/// Maximum bytes of one request line (terminator excluded).  Longer lines
/// are answered with one error response and discarded; the connection stays
/// usable.  4 MiB comfortably fits every legitimate request (a 4800-entry
/// explicit stencil is ~100 KB) while bounding what one line can make the
/// server buffer.
pub const MAX_LINE_BYTES: usize = 4 << 20;

/// One framed request line, or why it cannot be served.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete, UTF-8-valid line (possibly blank).
    Line(String),
    /// The line exceeded [`MAX_LINE_BYTES`] and was discarded.
    TooLong,
    /// The line was not valid UTF-8.
    BadUtf8,
}

/// Incremental newline framing with a size limit, shared by the stdin loop
/// and the TCP worker pool (which reads sockets non-blocking and therefore
/// receives lines in arbitrary chunks).
#[derive(Debug, Default)]
pub struct LineFramer {
    buf: Vec<u8>,
    discarding: bool,
}

impl LineFramer {
    /// Creates an empty framer.
    pub fn new() -> Self {
        Self::default()
    }

    fn take_frame(&mut self) -> Frame {
        let bytes = std::mem::take(&mut self.buf);
        match String::from_utf8(bytes) {
            Ok(line) => Frame::Line(line),
            Err(_) => Frame::BadUtf8,
        }
    }

    /// Feeds `bytes`, appending every completed frame to `frames`.
    pub fn push(&mut self, bytes: &[u8], frames: &mut Vec<Frame>) {
        for &b in bytes {
            if b == b'\n' {
                if self.discarding {
                    self.discarding = false;
                    frames.push(Frame::TooLong);
                } else {
                    frames.push(self.take_frame());
                }
            } else if self.discarding {
                // swallow the rest of an overlong line
            } else {
                self.buf.push(b);
                if self.buf.len() > MAX_LINE_BYTES {
                    self.buf.clear();
                    self.buf.shrink_to_fit();
                    self.discarding = true;
                }
            }
        }
    }

    /// Signals EOF: a trailing unterminated line becomes a final frame.
    pub fn finish(&mut self, frames: &mut Vec<Frame>) {
        if self.discarding {
            self.discarding = false;
            frames.push(Frame::TooLong);
        } else if !self.buf.is_empty() {
            frames.push(self.take_frame());
        }
    }

    /// True while an unterminated line (or an overlong line still being
    /// discarded) is pending.  The TCP pool uses this to distinguish an idle
    /// keep-alive connection (no deadline) from a client that stalled
    /// mid-line (reaped after [`ServeOptions::read_timeout`]).
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty() || self.discarding
    }
}

/// The response line for one frame; `None` for blank lines (skipped by the
/// protocol).  A panic while handling a request is caught and converted into
/// an error response so one poisoned request cannot take down the worker (and
/// with it every connection that worker would have served).
fn frame_response(service: &MappingService, frame: Frame, degrade: bool) -> Option<String> {
    let error = |msg: &str| {
        Some(
            MapResponse {
                id: None,
                body: ResponseBody::Error(msg.to_string()),
            }
            .to_value()
            .compact(),
        )
    };
    match frame {
        Frame::Line(line) => {
            if line.trim().is_empty() {
                None
            } else {
                let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    service.handle_line_mode(&line, degrade)
                }));
                match handled {
                    Ok(response) => Some(response),
                    Err(_) => {
                        eprintln!(
                            "stencil-serve: request handler panicked; answering with an error"
                        );
                        error("internal error while handling the request")
                    }
                }
            }
        }
        Frame::TooLong => error(&format!(
            "request line exceeds the {MAX_LINE_BYTES}-byte limit"
        )),
        Frame::BadUtf8 => error("request line is not valid UTF-8"),
    }
}

/// Serves requests from `input` to `output` until EOF.  Empty lines are
/// ignored; every request line produces exactly one response line, flushed
/// immediately so interactive pipes see answers promptly.  Overlong and
/// non-UTF-8 lines produce error responses instead of terminating the loop.
pub fn serve_io<R: Read, W: Write>(
    service: &MappingService,
    mut input: R,
    mut output: W,
) -> std::io::Result<()> {
    let mut framer = LineFramer::new();
    let mut frames = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        let n = match input.read(&mut chunk) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if n == 0 {
            framer.finish(&mut frames);
        } else {
            framer.push(&chunk[..n], &mut frames);
        }
        for frame in frames.drain(..) {
            if let Some(response) = frame_response(service, frame, false) {
                output.write_all(response.as_bytes())?;
                output.write_all(b"\n")?;
                output.flush()?;
            }
        }
        if n == 0 {
            return Ok(());
        }
    }
}

/// Serves requests from stdin to stdout until EOF (`--stdin` mode).
pub fn serve_stdin(service: &MappingService) -> std::io::Result<()> {
    serve_io(service, std::io::stdin().lock(), std::io::stdout().lock())
}

/// Tuning for the TCP frontend's overload and fault behaviour.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker-pool size (clamped to at least 1).
    pub workers: usize,
    /// Maximum simultaneously admitted connections.  A connection arriving
    /// past the limit is answered with [`OVERLOADED_LINE`] and closed
    /// immediately instead of silently queueing behind a saturated pool.
    pub max_conns: usize,
    /// How long a connection may sit with a *partial* line buffered before
    /// it is reaped.  Idle keep-alive connections (empty framer) are never
    /// reaped — only clients that started a line and stalled mid-way, which
    /// would otherwise pin framer memory forever.
    pub read_timeout: Duration,
    /// Run-queue depth past which responses degrade: mapping requests that
    /// did not ask a point query are answered cost-only (no table payload,
    /// `"degraded":true`) so the saturated pool spends its cycles on answers
    /// rather than table serialisation.  `usize::MAX` disables degradation.
    pub degrade_queue: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 4,
            max_conns: 1024,
            read_timeout: Duration::from_secs(10),
            degrade_queue: usize::MAX,
        }
    }
}

/// The exact line written to a connection shed at admission because the
/// server is at [`ServeOptions::max_conns`].  Well-formed protocol JSON, so
/// clients can distinguish overload from a connection reset.
pub const OVERLOADED_LINE: &str = "{\"status\":\"error\",\"error\":\"overloaded\"}";

/// Decrements the pool's live-connection count when a connection is dropped,
/// wherever that happens (worker close, deadline reap, drain).
struct LiveGuard(Arc<PoolState>);

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.0.live.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One pooled connection: its socket (non-blocking while queued) plus the
/// framing state carrying bytes between turns.
struct Conn {
    stream: TcpStream,
    framer: LineFramer,
    peer: String,
    /// When the currently buffered partial line first appeared; `None`
    /// while no partial line is pending.
    partial_since: Option<Instant>,
    _live: LiveGuard,
}

/// Shared worker-pool state: the run queue of connections with (possibly)
/// pending input, plus overload/drain bookkeeping.
struct PoolState {
    queue: Mutex<VecDeque<Conn>>,
    ready: Condvar,
    /// Admitted-and-not-yet-closed connection count, for shedding.
    live: AtomicUsize,
    /// Set when the accept loop stops: workers finish in-flight lines on
    /// queued connections, then exit instead of requeueing.
    draining: AtomicBool,
    opts: ServeOptions,
}

enum Turn {
    /// Lines were read and answered this turn.
    Progress,
    /// The socket had nothing to read.
    Idle,
    /// EOF or a connection error; the connection is dropped.
    Closed,
}

/// Reads per turn before a connection is requeued, so one firehose client
/// cannot monopolise a worker while other connections wait.
const TURN_READ_BUDGET: usize = 32;

/// How long a worker sleeps after a full idle pass over the queue.  This is
/// the readiness loop's poll interval: the worst-case added latency when
/// every connection is silent, traded against busy-spinning.
const IDLE_SLEEP: Duration = Duration::from_millis(1);

/// Upper bound on how long one blocking response write may stall a worker.
/// Without it, `workers` clients that request large tables and never read
/// their sockets would block every worker in `write_all` forever and stall
/// the whole pool; with it, a reader stalled past the timeout is
/// disconnected (a draining-but-slow reader is fine — the timer restarts
/// with every partial write).
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

fn serve_turn(service: &MappingService, conn: &mut Conn, degrade: bool) -> Turn {
    let mut frames = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut progressed = false;
    for _ in 0..TURN_READ_BUDGET {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.framer.finish(&mut frames);
                let _ = write_responses(service, conn, &mut frames, degrade);
                return Turn::Closed;
            }
            Ok(n) => {
                conn.framer.push(&chunk[..n], &mut frames);
                if !frames.is_empty() {
                    progressed = true;
                    if write_responses(service, conn, &mut frames, degrade).is_err() {
                        return Turn::Closed;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                return if progressed {
                    Turn::Progress
                } else {
                    Turn::Idle
                };
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("stencil-serve: {}: connection error: {e}", conn.peer);
                return Turn::Closed;
            }
        }
    }
    Turn::Progress
}

/// Answers the drained frames in order.  The socket is switched to blocking
/// for the write so back-pressure never corrupts the response order; the
/// per-connection [`WRITE_TIMEOUT`] bounds how long that can hold the
/// worker, so a client that stops reading is disconnected instead of
/// pinning a pool thread.
fn write_responses(
    service: &MappingService,
    conn: &mut Conn,
    frames: &mut Vec<Frame>,
    degrade: bool,
) -> std::io::Result<()> {
    let mut out = String::new();
    for frame in frames.drain(..) {
        if let Some(response) = frame_response(service, frame, degrade) {
            out.push_str(&response);
            out.push('\n');
        }
    }
    if out.is_empty() {
        return Ok(());
    }
    conn.stream.set_nonblocking(false)?;
    let result = conn
        .stream
        .write_all(out.as_bytes())
        .and_then(|()| conn.stream.flush());
    conn.stream.set_nonblocking(true)?;
    result
}

fn worker_loop(service: Arc<MappingService>, state: Arc<PoolState>) {
    let mut idle_streak = 0usize;
    loop {
        let (mut conn, queue_depth) = {
            let mut queue = state.queue.lock().expect("pool queue poisoned");
            loop {
                match queue.pop_front() {
                    Some(conn) => break (conn, queue.len()),
                    None => {
                        if state.draining.load(Ordering::Acquire) {
                            return;
                        }
                        let (guard, _) = state
                            .ready
                            .wait_timeout(queue, Duration::from_millis(20))
                            .expect("pool queue poisoned");
                        queue = guard;
                    }
                }
            }
        };
        if state.draining.load(Ordering::Acquire) {
            // Finish whatever complete lines this connection already sent,
            // then close it; nothing is requeued during a drain.
            while matches!(serve_turn(&service, &mut conn, false), Turn::Progress) {}
            continue;
        }
        // A connection stalled mid-line past the deadline is reaped; idle
        // connections with an empty framer are left alone indefinitely.
        if let Some(since) = conn.partial_since {
            if since.elapsed() >= state.opts.read_timeout {
                eprintln!(
                    "stencil-serve: {}: read deadline exceeded mid-line; dropping connection",
                    conn.peer
                );
                idle_streak = 0;
                continue;
            }
        }
        let degrade = queue_depth >= state.opts.degrade_queue;
        let turn = serve_turn(&service, &mut conn, degrade);
        if conn.framer.has_partial() {
            conn.partial_since.get_or_insert_with(Instant::now);
        } else {
            conn.partial_since = None;
        }
        match turn {
            Turn::Closed => {
                idle_streak = 0;
            }
            Turn::Progress | Turn::Idle => {
                let queue_len = {
                    let mut queue = state.queue.lock().expect("pool queue poisoned");
                    queue.push_back(conn);
                    state.ready.notify_one();
                    queue.len()
                };
                if matches!(turn, Turn::Idle) {
                    idle_streak += 1;
                    if idle_streak >= queue_len {
                        // a full pass found no readable socket: poll, don't spin
                        std::thread::sleep(IDLE_SLEEP);
                        idle_streak = 0;
                    }
                } else {
                    idle_streak = 0;
                }
            }
        }
    }
}

/// Binds `addr` and serves connections forever on a pool of `workers`
/// threads.  Prints the bound address to stderr (useful with port 0).
pub fn serve_tcp<A: ToSocketAddrs>(
    service: Arc<MappingService>,
    addr: A,
    workers: usize,
) -> std::io::Result<()> {
    serve_tcp_with(
        service,
        addr,
        ServeOptions {
            workers,
            ..ServeOptions::default()
        },
        Arc::new(AtomicBool::new(false)),
    )
}

/// Binds `addr` and serves connections with full [`ServeOptions`] control,
/// returning cleanly once `shutdown` is set (the SIGTERM drain path).
pub fn serve_tcp_with<A: ToSocketAddrs>(
    service: Arc<MappingService>,
    addr: A,
    opts: ServeOptions,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("stencil-serve: listening on {}", listener.local_addr()?);
    serve_listener_with(service, listener, opts, shutdown)
}

/// Serves connections accepted from an existing listener (split out so tests
/// can bind an ephemeral port themselves) on a pool of `workers` threads;
/// the calling thread runs the accept loop and never returns under normal
/// operation.  See [`serve_listener_with`] for overload/drain control.
pub fn serve_listener(
    service: Arc<MappingService>,
    listener: TcpListener,
    workers: usize,
) -> std::io::Result<()> {
    serve_listener_with(
        service,
        listener,
        ServeOptions {
            workers,
            ..ServeOptions::default()
        },
        Arc::new(AtomicBool::new(false)),
    )
}

/// Serves connections accepted from `listener` until `shutdown` is set.
///
/// Overload behaviour: a connection arriving while
/// [`ServeOptions::max_conns`] connections are already live is answered with
/// one [`OVERLOADED_LINE`] and closed — load is shed explicitly instead of
/// queueing unboundedly.  When the run queue is deeper than
/// [`ServeOptions::degrade_queue`], responses degrade to cost-only (flagged
/// `"degraded":true`).
///
/// Drain behaviour: once `shutdown` is observed the accept loop stops, the
/// workers finish the complete lines already received on queued connections,
/// every socket is closed, and the call returns `Ok(())` — the caller can
/// then flush and compact persistence before exiting.
pub fn serve_listener_with(
    service: Arc<MappingService>,
    listener: TcpListener,
    opts: ServeOptions,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    let state = Arc::new(PoolState {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        live: AtomicUsize::new(0),
        draining: AtomicBool::new(false),
        opts,
    });
    let mut handles = Vec::new();
    for _ in 0..state.opts.workers.max(1) {
        let service = Arc::clone(&service);
        let state = Arc::clone(&state);
        handles.push(std::thread::spawn(move || worker_loop(service, state)));
    }
    listener.set_nonblocking(true)?;
    while !shutdown.load(Ordering::Acquire) {
        let (stream, addr) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                eprintln!("stencil-serve: accept failed: {e}");
                // persistent accept errors (e.g. EMFILE when out of fds)
                // fail instantly — back off instead of busy-spinning
                std::thread::sleep(Duration::from_millis(100));
                continue;
            }
        };
        let peer = addr.to_string();
        if state.live.load(Ordering::Acquire) >= state.opts.max_conns {
            shed(stream, &peer);
            continue;
        }
        if let Err(e) = stream
            .set_nonblocking(true)
            .and_then(|()| stream.set_write_timeout(Some(WRITE_TIMEOUT)))
        {
            eprintln!("stencil-serve: {peer}: cannot configure socket: {e}");
            continue;
        }
        state.live.fetch_add(1, Ordering::AcqRel);
        let conn = Conn {
            stream,
            framer: LineFramer::new(),
            peer,
            partial_since: None,
            _live: LiveGuard(Arc::clone(&state)),
        };
        let mut queue = state.queue.lock().expect("pool queue poisoned");
        queue.push_back(conn);
        state.ready.notify_one();
        drop(queue);
    }
    state.draining.store(true, Ordering::Release);
    state.ready.notify_all();
    for handle in handles {
        let _ = handle.join();
    }
    Ok(())
}

/// Answers a connection shed at admission with one well-formed error line.
/// Best-effort: the client may already be gone.
fn shed(mut stream: TcpStream, peer: &str) {
    eprintln!("stencil-serve: {peer}: shedding connection (overloaded)");
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.write_all(OVERLOADED_LINE.as_bytes());
    let _ = stream.write_all(b"\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    #[test]
    fn serve_io_answers_line_per_line_and_skips_blanks() {
        let service = MappingService::new(&ServiceConfig::default());
        let input = "\n{\"id\":1,\"dims\":[6,6],\"nodes\":4,\"want_mapping\":false}\n\n{bad\n";
        let mut out = Vec::new();
        serve_io(&service, input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"status\":\"ok\""));
        assert!(lines[1].contains("\"status\":\"error\""));
    }

    #[test]
    fn serve_io_answers_trailing_line_without_newline() {
        let service = MappingService::new(&ServiceConfig::default());
        let input = "{\"id\":1,\"dims\":[4,4],\"nodes\":4,\"want_mapping\":false}";
        let mut out = Vec::new();
        serve_io(&service, input.as_bytes(), &mut out).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("\"status\":\"ok\""));
    }

    #[test]
    fn framer_reassembles_split_lines_and_flags_bad_input() {
        let mut framer = LineFramer::new();
        let mut frames = Vec::new();
        framer.push(b"{\"a\":", &mut frames);
        assert!(frames.is_empty(), "no frame before the newline");
        framer.push(b"1}\n\xff\xfe\n", &mut frames);
        framer.push(b"tail", &mut frames);
        framer.finish(&mut frames);
        assert_eq!(
            frames,
            vec![
                Frame::Line("{\"a\":1}".to_string()),
                Frame::BadUtf8,
                Frame::Line("tail".to_string()),
            ]
        );
    }

    #[test]
    fn framer_discards_overlong_lines_but_keeps_the_stream_usable() {
        let mut framer = LineFramer::new();
        let mut frames = Vec::new();
        let chunk = vec![b'x'; 1 << 20];
        for _ in 0..5 {
            framer.push(&chunk, &mut frames);
        }
        assert!(frames.is_empty(), "still inside the overlong line");
        framer.push(b"\n{\"ok\":1}\n", &mut frames);
        assert_eq!(
            frames,
            vec![Frame::TooLong, Frame::Line("{\"ok\":1}".to_string())]
        );
    }

    #[test]
    fn tcp_roundtrip_shares_the_cache_across_connections() {
        let service = Arc::new(MappingService::new(&ServiceConfig::default()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let _ = serve_listener(service, listener, 2);
            });
        }
        let ask = |line: &str| -> String {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(line.as_bytes()).unwrap();
            conn.write_all(b"\n").unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reply = String::new();
            BufReader::new(conn).read_line(&mut reply).unwrap();
            reply
        };
        let first = ask(r#"{"dims":[6,6],"nodes":4,"want_mapping":false}"#);
        assert!(first.contains("\"cached\":false"), "{first}");
        let second = ask(r#"{"dims":[6,6],"nodes":4,"want_mapping":false}"#);
        assert!(second.contains("\"cached\":true"), "{second}");
        assert_eq!(service.cache_stats().len, 1);
    }
}
