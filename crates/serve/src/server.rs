//! Transport frontends: newline-delimited JSON over stdin/stdout or TCP.
//!
//! Both frontends speak the same protocol (see [`crate::protocol`]): one
//! request line in, one response line out, in order.  The stdin frontend
//! makes the service usable in pipelines and offline containers; the TCP
//! frontend serves concurrent clients, one thread per connection, all
//! sharing one [`MappingService`] (and therefore one cache).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::Arc;

use crate::service::MappingService;

/// Serves requests from `input` to `output` until EOF.  Empty lines are
/// ignored; every request line produces exactly one response line, flushed
/// immediately so interactive pipes see answers promptly.
pub fn serve_io<R: Read, W: Write>(
    service: &MappingService,
    input: R,
    output: W,
) -> std::io::Result<()> {
    let reader = BufReader::new(input);
    let mut writer = BufWriter::new(output);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writer.write_all(service.handle_line(&line).as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// Serves requests from stdin to stdout until EOF (`--stdin` mode).
pub fn serve_stdin(service: &MappingService) -> std::io::Result<()> {
    serve_io(service, std::io::stdin().lock(), std::io::stdout().lock())
}

/// Binds `addr` and serves connections forever, one thread per connection.
/// Prints the bound address to stderr (useful with port 0).
pub fn serve_tcp<A: ToSocketAddrs>(service: Arc<MappingService>, addr: A) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("stencil-serve: listening on {}", listener.local_addr()?);
    serve_listener(service, listener)
}

/// Serves connections accepted from an existing listener (split out so tests
/// can bind an ephemeral port themselves).
pub fn serve_listener(service: Arc<MappingService>, listener: TcpListener) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("stencil-serve: accept failed: {e}");
                continue;
            }
        };
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unknown>".to_string());
            let reader = match stream.try_clone() {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("stencil-serve: {peer}: clone failed: {e}");
                    return;
                }
            };
            if let Err(e) = serve_io(&service, reader, stream) {
                eprintln!("stencil-serve: {peer}: connection error: {e}");
            }
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use std::net::TcpStream;

    #[test]
    fn serve_io_answers_line_per_line_and_skips_blanks() {
        let service = MappingService::new(&ServiceConfig::default());
        let input = "\n{\"id\":1,\"dims\":[6,6],\"nodes\":4,\"want_mapping\":false}\n\n{bad\n";
        let mut out = Vec::new();
        serve_io(&service, input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"status\":\"ok\""));
        assert!(lines[1].contains("\"status\":\"error\""));
    }

    #[test]
    fn tcp_roundtrip_shares_the_cache_across_connections() {
        let service = Arc::new(MappingService::new(&ServiceConfig::default()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                let _ = serve_listener(service, listener);
            });
        }
        let ask = |line: &str| -> String {
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(line.as_bytes()).unwrap();
            conn.write_all(b"\n").unwrap();
            conn.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reply = String::new();
            BufReader::new(conn).read_line(&mut reply).unwrap();
            reply
        };
        let first = ask(r#"{"dims":[6,6],"nodes":4,"want_mapping":false}"#);
        assert!(first.contains("\"cached\":false"), "{first}");
        let second = ask(r#"{"dims":[6,6],"nodes":4,"want_mapping":false}"#);
        assert!(second.contains("\"cached\":true"), "{second}");
        assert_eq!(service.cache_stats().len, 1);
    }
}
