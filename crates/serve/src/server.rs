//! Transport frontends: newline-delimited JSON over stdin/stdout or TCP.
//!
//! Both frontends speak the same protocol (see [`crate::protocol`]): one
//! request line in, one response line out, in order.  The stdin frontend
//! makes the service usable in pipelines and offline containers.  The TCP
//! frontend serves concurrent clients with a **fixed-size worker pool** fed
//! by a readiness frontend with two backends ([`PollBackend`]):
//!
//! * **epoll** (default, Linux): the accept loop doubles as a dispatcher
//!   sharing one `epoll` instance with the workers.  Each connection is
//!   registered one-shot (`EPOLLONESHOT`); when its socket turns readable
//!   the dispatcher moves it from the parked map to the run queue and a
//!   worker wakes, drains the complete lines, answers them in order, and
//!   re-arms the registration.  The run queue only ever holds readable
//!   connections and nobody sleeps on a timer, so idle connections cost
//!   zero CPU no matter how many are parked.
//! * **threadpoll** (portable fallback): every connection stays on the run
//!   queue and workers poll the sockets non-blocking, sleeping briefly after
//!   a full idle pass — idle cost grows with connection count, but nothing
//!   beyond `std` is needed.
//!
//! A connection is only ever held by one worker at a time under either
//! backend, which preserves the per-connection response order (and
//! therefore batch ordering and the byte-identical-across-thread-counts
//! guarantee: responses are produced by the same sequential
//! [`MappingService::handle_line`] calls either way, so transcripts are
//! also byte-identical across backends).
//!
//! Both frontends frame lines through [`LineFramer`], which enforces
//! [`MAX_LINE_BYTES`] and answers invalid UTF-8 with an error response
//! instead of dropping the stream — a hostile or broken client can neither
//! balloon memory with an unterminated line nor kill the connection loop
//! with a bad byte.
//!
//! The frontends are decoupled from what answers the lines through
//! [`LineHandler`]: the same accept/park/frame machinery serves the local
//! [`MappingService`] (`--stdin`, `--listen`) and the consistent-hash
//! [`crate::router::Router`] (`--route`), which forwards each line to a
//! backend shard instead of computing.  The full request lifecycle (accept
//! → epoll park → frame → canonicalise → cache/route → serialise) is
//! documented in `docs/ARCHITECTURE.md`.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::{MapResponse, ResponseBody};
use crate::service::MappingService;
use epoll::Epoll;

/// What the transport frontends serve: anything that turns one request line
/// into one response line.  Implemented by [`MappingService`] (compute or
/// answer from the local cache) and by [`crate::router::Router`] (forward to
/// a backend shard picked by consistent hashing).  Implementations must
/// append exactly one line of response JSON (without the trailing
/// newline) per call and must be callable concurrently from the worker
/// pool.
pub trait LineHandler: Send + Sync {
    /// Appends the response line for `line` (a request object or a
    /// `{"batch": […]}` wrapper) to `out`, without the trailing newline.
    /// `degrade` is the overload hint: table payloads may be stripped
    /// (flagged `"degraded":true`) to shed serialisation cost.
    fn handle_line_into(&self, line: &str, degrade: bool, out: &mut String);
}

impl LineHandler for MappingService {
    fn handle_line_into(&self, line: &str, degrade: bool, out: &mut String) {
        MappingService::handle_line_into(self, line, degrade, out)
    }
}

/// Maximum bytes of one request line (terminator excluded).  Longer lines
/// are answered with one error response and discarded; the connection stays
/// usable.  4 MiB comfortably fits every legitimate request (a 4800-entry
/// explicit stencil is ~100 KB) while bounding what one line can make the
/// server buffer.
pub const MAX_LINE_BYTES: usize = 4 << 20;

/// One framed request line, or why it cannot be served.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete, UTF-8-valid line (possibly blank).
    Line(String),
    /// The line exceeded [`MAX_LINE_BYTES`] and was discarded.
    TooLong,
    /// The line was not valid UTF-8.
    BadUtf8,
}

/// Incremental newline framing with a size limit, shared by the stdin loop
/// and the TCP worker pool (which reads sockets non-blocking and therefore
/// receives lines in arbitrary chunks).
#[derive(Debug, Default)]
pub struct LineFramer {
    buf: Vec<u8>,
    discarding: bool,
}

impl LineFramer {
    /// Creates an empty framer.
    pub fn new() -> Self {
        Self::default()
    }

    fn take_frame(&mut self) -> Frame {
        let bytes = std::mem::take(&mut self.buf);
        match String::from_utf8(bytes) {
            Ok(line) => Frame::Line(line),
            Err(_) => Frame::BadUtf8,
        }
    }

    /// Feeds `bytes`, appending every completed frame to `frames`.
    pub fn push(&mut self, bytes: &[u8], frames: &mut Vec<Frame>) {
        for &b in bytes {
            if b == b'\n' {
                if self.discarding {
                    self.discarding = false;
                    frames.push(Frame::TooLong);
                } else {
                    frames.push(self.take_frame());
                }
            } else if self.discarding {
                // swallow the rest of an overlong line
            } else {
                self.buf.push(b);
                if self.buf.len() > MAX_LINE_BYTES {
                    self.buf.clear();
                    self.buf.shrink_to_fit();
                    self.discarding = true;
                }
            }
        }
    }

    /// Signals EOF: a trailing unterminated line becomes a final frame.
    pub fn finish(&mut self, frames: &mut Vec<Frame>) {
        if self.discarding {
            self.discarding = false;
            frames.push(Frame::TooLong);
        } else if !self.buf.is_empty() {
            frames.push(self.take_frame());
        }
    }

    /// True while an unterminated line (or an overlong line still being
    /// discarded) is pending.  The TCP pool uses this to distinguish an idle
    /// keep-alive connection (no deadline) from a client that stalled
    /// mid-line (reaped after [`ServeOptions::read_timeout`]).
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty() || self.discarding
    }
}

/// Appends the response line (newline-terminated) for one frame to `out`;
/// blank lines append nothing (skipped by the protocol).  A panic while
/// handling a request is caught and converted into an error response so one
/// poisoned request cannot take down the worker (and with it every
/// connection that worker would have served).
fn frame_response(service: &dyn LineHandler, frame: Frame, degrade: bool, out: &mut String) {
    fn error_line(out: &mut String, msg: &str) {
        MapResponse {
            id: None,
            body: ResponseBody::Error(msg.to_string()),
        }
        .write_into(out);
        out.push('\n');
    }
    match frame {
        Frame::Line(line) => {
            if line.trim().is_empty() {
                return;
            }
            let start = out.len();
            let handled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                service.handle_line_into(&line, degrade, out)
            }));
            match handled {
                Ok(()) => out.push('\n'),
                Err(_) => {
                    // discard whatever the handler managed to write before
                    // panicking so the line stays well-formed
                    out.truncate(start);
                    eprintln!("stencil-serve: request handler panicked; answering with an error");
                    error_line(out, "internal error while handling the request");
                }
            }
        }
        Frame::TooLong => error_line(
            out,
            &format!("request line exceeds the {MAX_LINE_BYTES}-byte limit"),
        ),
        Frame::BadUtf8 => error_line(out, "request line is not valid UTF-8"),
    }
}

/// Serves requests from `input` to `output` until EOF.  Empty lines are
/// ignored; every request line produces exactly one response line, flushed
/// immediately so interactive pipes see answers promptly.  Overlong and
/// non-UTF-8 lines produce error responses instead of terminating the loop.
pub fn serve_io<R: Read, W: Write>(
    service: &dyn LineHandler,
    mut input: R,
    mut output: W,
) -> std::io::Result<()> {
    let mut framer = LineFramer::new();
    let mut frames = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut response = String::new();
    loop {
        let n = match input.read(&mut chunk) {
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if n == 0 {
            framer.finish(&mut frames);
        } else {
            framer.push(&chunk[..n], &mut frames);
        }
        for frame in frames.drain(..) {
            response.clear();
            frame_response(service, frame, false, &mut response);
            if !response.is_empty() {
                output.write_all(response.as_bytes())?;
                output.flush()?;
            }
        }
        if n == 0 {
            return Ok(());
        }
    }
}

/// Serves requests from stdin to stdout until EOF (`--stdin` mode).
pub fn serve_stdin(service: &dyn LineHandler) -> std::io::Result<()> {
    serve_io(service, std::io::stdin().lock(), std::io::stdout().lock())
}

/// Readiness backend of the TCP frontend (`--poll-backend`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollBackend {
    /// Edge-notified readiness through one shared `epoll` instance
    /// (default): idle connections cost zero CPU.  Falls back to
    /// [`PollBackend::ThreadPoll`] at runtime where epoll is unavailable
    /// (non-Linux builds).
    #[default]
    Epoll,
    /// The portable polling loop: workers scan all connections non-blocking
    /// with a 1 ms idle sleep, so idle cost grows with connection count.
    ThreadPoll,
}

impl PollBackend {
    /// Parses a `--poll-backend` value.
    pub fn from_name(name: &str) -> Result<PollBackend, String> {
        match name {
            "epoll" => Ok(PollBackend::Epoll),
            "threadpoll" => Ok(PollBackend::ThreadPoll),
            other => Err(format!(
                "unknown poll backend {other:?} (expected epoll or threadpoll)"
            )),
        }
    }

    /// The flag-value name.
    pub fn name(&self) -> &'static str {
        match self {
            PollBackend::Epoll => "epoll",
            PollBackend::ThreadPoll => "threadpoll",
        }
    }
}

/// Tuning for the TCP frontend's overload and fault behaviour.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker-pool size (clamped to at least 1).
    pub workers: usize,
    /// Maximum simultaneously admitted connections.  A connection arriving
    /// past the limit is answered with [`OVERLOADED_LINE`] and closed
    /// immediately instead of silently queueing behind a saturated pool.
    pub max_conns: usize,
    /// How long a connection may sit with a *partial* line buffered before
    /// it is reaped (answered with [`READ_TIMEOUT_LINE`] and closed).  Idle
    /// keep-alive connections (empty framer) are never reaped — only clients
    /// that started a line and stalled mid-way, which would otherwise pin
    /// framer memory forever.
    pub read_timeout: Duration,
    /// Upper bound on how long one blocking response write may stall a
    /// worker.  Without it, `workers` clients that request large tables and
    /// never read their sockets would block every worker in `write_all`
    /// forever and stall the whole pool; with it, a reader stalled past the
    /// timeout is disconnected (a draining-but-slow reader is fine — the
    /// timer restarts with every partial write).
    pub write_timeout: Duration,
    /// Run-queue depth past which responses degrade: mapping requests that
    /// did not ask a point query are answered cost-only (no table payload,
    /// `"degraded":true`) so the saturated pool spends its cycles on answers
    /// rather than table serialisation.  `usize::MAX` disables degradation.
    pub degrade_queue: usize,
    /// Readiness backend.
    pub poll_backend: PollBackend,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 4,
            max_conns: 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(5),
            degrade_queue: usize::MAX,
            poll_backend: PollBackend::default(),
        }
    }
}

/// The exact line written to a connection shed at admission because the
/// server is at [`ServeOptions::max_conns`].  Well-formed protocol JSON, so
/// clients can distinguish overload from a connection reset.  Defined in
/// [`crate::wire`] alongside every other transport error string; re-exported
/// here because the shed path is this module's.
pub use crate::wire::OVERLOADED_LINE;

/// [`OVERLOADED_LINE`] with its terminator, written as **one** buffered
/// `write_all` — two writes under a short timeout could leave a slow client
/// a torn, newline-less line (see `overload_lines_are_single_writes`).
use crate::wire::OVERLOADED_LINE_NL;

/// The exact line written to a connection reaped because it sat on a
/// partial request line past [`ServeOptions::read_timeout`].  Mirrors
/// [`OVERLOADED_LINE`]: the client learns why it was dropped instead of
/// seeing a bare reset.
pub use crate::wire::READ_TIMEOUT_LINE;

/// [`READ_TIMEOUT_LINE`] with its terminator (single buffered write, as
/// with [`OVERLOADED_LINE_NL`]).
use crate::wire::READ_TIMEOUT_LINE_NL;

/// Decrements the pool's live-connection count when a connection is dropped,
/// wherever that happens (worker close, deadline reap, drain).
struct LiveGuard(Arc<PoolState>);

impl Drop for LiveGuard {
    fn drop(&mut self) {
        self.0.live.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Admits one connection against [`ServeOptions::max_conns`] with a
/// compare-exchange increment loop.  The previous load-then-`fetch_add`
/// pair was a TOCTOU: two racing admissions could both pass the load at
/// `max_conns - 1` and overshoot the limit.  The loop only ever increments
/// from a value it has verified is below the limit.
fn try_admit(live: &AtomicUsize, max_conns: usize) -> bool {
    let mut current = live.load(Ordering::Relaxed);
    loop {
        if current >= max_conns {
            return false;
        }
        match live.compare_exchange_weak(current, current + 1, Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(_) => return true,
            Err(actual) => current = actual,
        }
    }
}

/// One pooled connection: its socket (non-blocking while queued) plus the
/// framing state carrying bytes between turns.
struct Conn {
    stream: TcpStream,
    framer: LineFramer,
    peer: String,
    /// When the currently buffered partial line first appeared; `None`
    /// while no partial line is pending.
    partial_since: Option<Instant>,
    /// The connection's epoll token (unused under threadpoll).  Tokens are
    /// never reused, so a stale event for a closed connection can never be
    /// confused with its fd-number successor.
    token: u64,
    /// Whether the fd has been `EPOLL_CTL_ADD`ed already (first park adds,
    /// later parks re-arm the existing one-shot registration).
    registered: bool,
    _live: LiveGuard,
}

/// Shared worker-pool state: the run queue of connections with pending
/// input, parked idle connections (epoll backend), plus overload/drain
/// bookkeeping.
struct PoolState {
    queue: Mutex<VecDeque<Conn>>,
    ready: Condvar,
    /// Connections waiting for readiness under the epoll backend, keyed by
    /// token.  Empty under threadpoll (idle connections stay on the run
    /// queue there).  The park/unpark lock also serialises the one-shot
    /// re-arm against the dispatcher's event lookup, so an event can never
    /// arrive "between" re-arm and insert and get lost.
    parked: Mutex<HashMap<u64, Conn>>,
    /// Admitted-and-not-yet-closed connection count, for shedding.
    live: AtomicUsize,
    /// Set when the accept loop stops: workers finish in-flight lines on
    /// queued connections, then exit instead of requeueing.
    draining: AtomicBool,
    /// The shared epoll instance; `None` under threadpoll (or when epoll is
    /// unavailable at runtime and the frontend fell back).
    epoll: Option<Epoll>,
    opts: ServeOptions,
}

enum Turn {
    /// The read budget ran out with the socket still (possibly) readable;
    /// the connection goes straight back on the run queue.
    Ready,
    /// The socket was drained to `WouldBlock` (`progressed` says whether
    /// any bytes were read first).  The epoll backend parks the connection;
    /// threadpoll requeues it and counts idle passes.
    Drained {
        /// Whether this turn read any bytes before hitting `WouldBlock`.
        progressed: bool,
    },
    /// EOF or a connection error; the connection is dropped.
    Closed,
}

/// Reads per turn before a connection is requeued, so one firehose client
/// cannot monopolise a worker while other connections wait.
const TURN_READ_BUDGET: usize = 32;

/// How long a threadpoll worker sleeps after a full idle pass over the
/// queue.  This is that backend's poll interval: the worst-case added
/// latency when every connection is silent, traded against busy-spinning.
/// The epoll backend has no equivalent — workers there only wake for ready
/// connections.
const IDLE_SLEEP: Duration = Duration::from_millis(1);

fn serve_turn(service: &dyn LineHandler, conn: &mut Conn, degrade: bool) -> Turn {
    let mut frames = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut progressed = false;
    for _ in 0..TURN_READ_BUDGET {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.framer.finish(&mut frames);
                let _ = write_responses(service, conn, &mut frames, degrade);
                return Turn::Closed;
            }
            Ok(n) => {
                conn.framer.push(&chunk[..n], &mut frames);
                progressed = true;
                if !frames.is_empty()
                    && write_responses(service, conn, &mut frames, degrade).is_err()
                {
                    return Turn::Closed;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                return Turn::Drained { progressed };
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("stencil-serve: {}: connection error: {e}", conn.peer);
                return Turn::Closed;
            }
        }
    }
    Turn::Ready
}

/// Answers the drained frames in order, streamed into one buffer and
/// written with a single `write_all`.  The socket is switched to blocking
/// for the write so back-pressure never corrupts the response order; the
/// per-connection [`ServeOptions::write_timeout`] bounds how long that can
/// hold the worker, so a client that stops reading is disconnected instead
/// of pinning a pool thread.
fn write_responses(
    service: &dyn LineHandler,
    conn: &mut Conn,
    frames: &mut Vec<Frame>,
    degrade: bool,
) -> std::io::Result<()> {
    let mut out = String::new();
    for frame in frames.drain(..) {
        frame_response(service, frame, degrade, &mut out);
    }
    if out.is_empty() {
        return Ok(());
    }
    conn.stream.set_nonblocking(false)?;
    let result = conn
        .stream
        .write_all(out.as_bytes())
        .and_then(|()| conn.stream.flush());
    conn.stream.set_nonblocking(true)?;
    result
}

/// Closes a connection that stalled mid-line past the read deadline,
/// answering with one well-formed [`READ_TIMEOUT_LINE`] first (single
/// buffered write, best-effort — the client may already be gone).
fn reap_stalled(mut conn: Conn) {
    eprintln!(
        "stencil-serve: {}: read deadline exceeded mid-line; dropping connection",
        conn.peer
    );
    let _ = conn.stream.set_nonblocking(false);
    let _ = conn.stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = conn.stream.write_all(READ_TIMEOUT_LINE_NL.as_bytes());
}

/// Parks a drained connection until its socket turns readable again: the
/// one-shot registration is (re-)armed and the connection moves to the
/// parked map, both under the parked lock so the dispatcher cannot observe
/// the event before the connection is findable.  Re-arming is
/// level-triggered, so bytes that arrived while the worker held the
/// connection fire immediately.
fn park(state: &PoolState, conn: Conn) {
    let epoll = state
        .epoll
        .as_ref()
        .expect("park requires the epoll backend");
    let mut conn = conn;
    let fd = stream_fd(&conn.stream);
    let mut parked = state.parked.lock().expect("parked map poisoned");
    let armed = if conn.registered {
        epoll.rearm(fd, conn.token)
    } else {
        conn.registered = true;
        epoll.add(fd, conn.token, true)
    };
    match armed {
        Ok(()) => {
            parked.insert(conn.token, conn);
        }
        Err(e) => {
            // dropping the connection closes the fd (and with it any epoll
            // registration)
            eprintln!("stencil-serve: {}: cannot arm readiness: {e}", conn.peer);
        }
    }
}

fn requeue(state: &PoolState, conn: Conn) -> usize {
    let mut queue = state.queue.lock().expect("pool queue poisoned");
    queue.push_back(conn);
    state.ready.notify_one();
    queue.len()
}

fn worker_loop(service: Arc<dyn LineHandler>, state: Arc<PoolState>) {
    let mut idle_streak = 0usize;
    loop {
        let (mut conn, queue_depth) = {
            let mut queue = state.queue.lock().expect("pool queue poisoned");
            loop {
                match queue.pop_front() {
                    Some(conn) => break (conn, queue.len()),
                    None => {
                        if state.draining.load(Ordering::Acquire) {
                            return;
                        }
                        let (guard, _) = state
                            .ready
                            .wait_timeout(queue, Duration::from_millis(20))
                            .expect("pool queue poisoned");
                        queue = guard;
                    }
                }
            }
        };
        if state.draining.load(Ordering::Acquire) {
            // Finish whatever complete lines this connection already sent,
            // then close it; nothing is requeued during a drain.
            while let Turn::Ready | Turn::Drained { progressed: true } =
                serve_turn(&*service, &mut conn, false)
            {}
            continue;
        }
        // Threadpoll keeps idle connections cycling through the run queue,
        // so the mid-line deadline is checked here.  The epoll backend
        // parks idle connections instead; its dispatcher reaps them.
        if state.epoll.is_none() {
            if let Some(since) = conn.partial_since {
                if since.elapsed() >= state.opts.read_timeout {
                    reap_stalled(conn);
                    idle_streak = 0;
                    continue;
                }
            }
        }
        let degrade = queue_depth >= state.opts.degrade_queue;
        let turn = serve_turn(&*service, &mut conn, degrade);
        if conn.framer.has_partial() {
            conn.partial_since.get_or_insert_with(Instant::now);
        } else {
            conn.partial_since = None;
        }
        match turn {
            Turn::Closed => {
                idle_streak = 0;
            }
            Turn::Ready => {
                requeue(&state, conn);
                idle_streak = 0;
            }
            Turn::Drained { progressed } => {
                if state.epoll.is_some() {
                    park(&state, conn);
                    idle_streak = 0;
                } else {
                    let queue_len = requeue(&state, conn);
                    if progressed {
                        idle_streak = 0;
                    } else {
                        idle_streak += 1;
                        if idle_streak >= queue_len {
                            // a full pass found no readable socket: poll,
                            // don't spin
                            std::thread::sleep(IDLE_SLEEP);
                            idle_streak = 0;
                        }
                    }
                }
            }
        }
    }
}

/// Binds `addr` and serves connections forever on a pool of `workers`
/// threads.  Prints the bound address to stderr (useful with port 0).
pub fn serve_tcp<A: ToSocketAddrs>(
    service: Arc<dyn LineHandler>,
    addr: A,
    workers: usize,
) -> std::io::Result<()> {
    serve_tcp_with(
        service,
        addr,
        ServeOptions {
            workers,
            ..ServeOptions::default()
        },
        Arc::new(AtomicBool::new(false)),
    )
}

/// Binds `addr` and serves connections with full [`ServeOptions`] control,
/// returning cleanly once `shutdown` is set (the SIGTERM drain path).
pub fn serve_tcp_with<A: ToSocketAddrs>(
    service: Arc<dyn LineHandler>,
    addr: A,
    opts: ServeOptions,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("stencil-serve: listening on {}", listener.local_addr()?);
    serve_listener_with(service, listener, opts, shutdown)
}

/// Serves connections accepted from an existing listener (split out so tests
/// can bind an ephemeral port themselves) on a pool of `workers` threads;
/// the calling thread runs the accept loop and never returns under normal
/// operation.  See [`serve_listener_with`] for overload/drain control.
pub fn serve_listener(
    service: Arc<dyn LineHandler>,
    listener: TcpListener,
    workers: usize,
) -> std::io::Result<()> {
    serve_listener_with(
        service,
        listener,
        ServeOptions {
            workers,
            ..ServeOptions::default()
        },
        Arc::new(AtomicBool::new(false)),
    )
}

/// Serves connections accepted from `listener` until `shutdown` is set.
///
/// Overload behaviour: a connection arriving while
/// [`ServeOptions::max_conns`] connections are already live is answered with
/// one [`OVERLOADED_LINE`] and closed — load is shed explicitly instead of
/// queueing unboundedly.  When the run queue is deeper than
/// [`ServeOptions::degrade_queue`], responses degrade to cost-only (flagged
/// `"degraded":true`).  A connection stalled mid-line past
/// [`ServeOptions::read_timeout`] is answered with [`READ_TIMEOUT_LINE`]
/// and closed.
///
/// Drain behaviour: once `shutdown` is observed the accept loop stops, the
/// workers finish the complete lines already received on queued connections,
/// every socket is closed, and the call returns `Ok(())` — the caller can
/// then flush and compact persistence before exiting.
pub fn serve_listener_with(
    service: Arc<dyn LineHandler>,
    listener: TcpListener,
    opts: ServeOptions,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    let epoll = match opts.poll_backend {
        PollBackend::Epoll => match Epoll::new() {
            Ok(ep) => Some(ep),
            Err(e) => {
                eprintln!(
                    "stencil-serve: epoll unavailable ({e}); falling back to the threadpoll \
                     backend"
                );
                None
            }
        },
        PollBackend::ThreadPoll => None,
    };
    let state = Arc::new(PoolState {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        parked: Mutex::new(HashMap::new()),
        live: AtomicUsize::new(0),
        draining: AtomicBool::new(false),
        epoll,
        opts,
    });
    let mut handles = Vec::new();
    for _ in 0..state.opts.workers.max(1) {
        let service = Arc::clone(&service);
        let state = Arc::clone(&state);
        handles.push(std::thread::spawn(move || worker_loop(service, state)));
    }
    listener.set_nonblocking(true)?;
    let result = if state.epoll.is_some() {
        dispatch_epoll(&state, &listener, &shutdown)
    } else {
        dispatch_threadpoll(&state, &listener, &shutdown)
    };
    state.draining.store(true, Ordering::Release);
    state.ready.notify_all();
    for handle in handles {
        let _ = handle.join();
    }
    // parked connections have no complete lines pending (they were drained
    // before parking); closing them is the whole drain
    state.parked.lock().expect("parked map poisoned").clear();
    result
}

/// Admits, configures and wraps one accepted connection; `None` when it was
/// shed at admission or could not be configured (the live count is already
/// balanced either way).
fn try_accept(state: &Arc<PoolState>, stream: TcpStream, peer: String, token: u64) -> Option<Conn> {
    if !try_admit(&state.live, state.opts.max_conns) {
        shed(stream, &peer);
        return None;
    }
    let live = LiveGuard(Arc::clone(state));
    if let Err(e) = stream
        .set_nonblocking(true)
        .and_then(|()| stream.set_write_timeout(Some(state.opts.write_timeout)))
    {
        eprintln!("stencil-serve: {peer}: cannot configure socket: {e}");
        return None; // dropping `live` releases the admission slot
    }
    Some(Conn {
        stream,
        framer: LineFramer::new(),
        peer,
        partial_since: None,
        token,
        registered: false,
        _live: live,
    })
}

/// The threadpoll accept loop: poll-accept with a short sleep, push every
/// admitted connection onto the run queue.
fn dispatch_threadpoll(
    state: &Arc<PoolState>,
    listener: &TcpListener,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    while !shutdown.load(Ordering::Acquire) {
        let (stream, addr) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                eprintln!("stencil-serve: accept failed: {e}");
                // persistent accept errors (e.g. EMFILE when out of fds)
                // fail instantly — back off instead of busy-spinning
                std::thread::sleep(Duration::from_millis(100));
                continue;
            }
        };
        if let Some(conn) = try_accept(state, stream, addr.to_string(), 0) {
            requeue(state, conn);
        }
    }
    Ok(())
}

/// The epoll token of the listening socket (connections count from 1).
const LISTENER_TOKEN: u64 = 0;

/// The dispatcher's `epoll_wait` timeout: bounds how stale the shutdown
/// flag and the mid-line reap deadlines can get.  This is *not* a
/// per-connection poll — an idle deployment wakes one thread 20×/s total,
/// independent of connection count.
const DISPATCH_TICK_MS: i32 = 50;

/// The epoll dispatcher: the accept loop and the readiness pump in one
/// thread.  Listener events accept-drain new connections straight onto the
/// run queue; connection events unpark the connection for the workers; each
/// tick also reaps parked connections that stalled mid-line past the read
/// deadline.
fn dispatch_epoll(
    state: &Arc<PoolState>,
    listener: &TcpListener,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    let epoll = state.epoll.as_ref().expect("epoll backend");
    // the listener stays level-triggered (not one-shot): it keeps firing
    // until every pending connection is accepted
    epoll.add(listener_fd(listener), LISTENER_TOKEN, false)?;
    let mut events = Vec::with_capacity(256);
    let mut next_token: u64 = 1;
    while !shutdown.load(Ordering::Acquire) {
        epoll.wait(&mut events, DISPATCH_TICK_MS)?;
        for event in &events {
            let token = event.token;
            if token == LISTENER_TOKEN {
                accept_ready(state, listener, &mut next_token);
            } else {
                let unparked = state
                    .parked
                    .lock()
                    .expect("parked map poisoned")
                    .remove(&token);
                // a token already reaped (or never parked) is stale: ignore
                if let Some(conn) = unparked {
                    requeue(state, conn);
                }
            }
        }
        reap_expired(state);
    }
    Ok(())
}

/// Accepts every pending connection (the listener is level-triggered, so
/// stopping at `WouldBlock` is lossless).
fn accept_ready(state: &Arc<PoolState>, listener: &TcpListener, next_token: &mut u64) {
    loop {
        let (stream, addr) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                eprintln!("stencil-serve: accept failed: {e}");
                // persistent accept errors (e.g. EMFILE) fail instantly —
                // back off instead of busy-spinning on the level-triggered
                // listener event
                std::thread::sleep(Duration::from_millis(100));
                return;
            }
        };
        let token = *next_token;
        *next_token += 1;
        if let Some(conn) = try_accept(state, stream, addr.to_string(), token) {
            // straight to the workers: a fresh socket may already hold a
            // request, and if not the first serve turn parks it
            requeue(state, conn);
        }
    }
}

/// Reaps parked connections whose partial line outlived the read deadline.
/// Sockets are written to and closed outside the parked lock.
fn reap_expired(state: &PoolState) {
    let mut expired = Vec::new();
    {
        let mut parked = state.parked.lock().expect("parked map poisoned");
        let deadline = state.opts.read_timeout;
        let tokens: Vec<u64> = parked
            .iter()
            .filter(|(_, conn)| {
                conn.partial_since
                    .is_some_and(|since| since.elapsed() >= deadline)
            })
            .map(|(&token, _)| token)
            .collect();
        for token in tokens {
            if let Some(conn) = parked.remove(&token) {
                expired.push(conn);
            }
        }
    }
    for conn in expired {
        reap_stalled(conn);
    }
}

#[cfg(unix)]
fn stream_fd(stream: &TcpStream) -> epoll::RawFd {
    use std::os::unix::io::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(unix)]
fn listener_fd(listener: &TcpListener) -> epoll::RawFd {
    use std::os::unix::io::AsRawFd;
    listener.as_raw_fd()
}

#[cfg(not(unix))]
fn stream_fd(_stream: &TcpStream) -> epoll::RawFd {
    unreachable!("the epoll backend is never constructed off-Linux")
}

#[cfg(not(unix))]
fn listener_fd(_listener: &TcpListener) -> epoll::RawFd {
    unreachable!("the epoll backend is never constructed off-Linux")
}

/// Answers a connection shed at admission with one well-formed error line
/// in a single buffered write.  Best-effort: the client may already be gone.
fn shed(mut stream: TcpStream, peer: &str) {
    eprintln!("stencil-serve: {peer}: shedding connection (overloaded)");
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.write_all(OVERLOADED_LINE_NL.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    #[test]
    fn serve_io_answers_line_per_line_and_skips_blanks() {
        let service = MappingService::new(&ServiceConfig::default());
        let input = "\n{\"id\":1,\"dims\":[6,6],\"nodes\":4,\"want_mapping\":false}\n\n{bad\n";
        let mut out = Vec::new();
        serve_io(&service, input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"status\":\"ok\""));
        assert!(lines[1].contains("\"status\":\"error\""));
    }

    #[test]
    fn serve_io_answers_trailing_line_without_newline() {
        let service = MappingService::new(&ServiceConfig::default());
        let input = "{\"id\":1,\"dims\":[4,4],\"nodes\":4,\"want_mapping\":false}";
        let mut out = Vec::new();
        serve_io(&service, input.as_bytes(), &mut out).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("\"status\":\"ok\""));
    }

    #[test]
    fn framer_reassembles_split_lines_and_flags_bad_input() {
        let mut framer = LineFramer::new();
        let mut frames = Vec::new();
        framer.push(b"{\"a\":", &mut frames);
        assert!(frames.is_empty(), "no frame before the newline");
        framer.push(b"1}\n\xff\xfe\n", &mut frames);
        framer.push(b"tail", &mut frames);
        framer.finish(&mut frames);
        assert_eq!(
            frames,
            vec![
                Frame::Line("{\"a\":1}".to_string()),
                Frame::BadUtf8,
                Frame::Line("tail".to_string()),
            ]
        );
    }

    #[test]
    fn framer_discards_overlong_lines_but_keeps_the_stream_usable() {
        let mut framer = LineFramer::new();
        let mut frames = Vec::new();
        let chunk = vec![b'x'; 1 << 20];
        for _ in 0..5 {
            framer.push(&chunk, &mut frames);
        }
        assert!(frames.is_empty(), "still inside the overlong line");
        framer.push(b"\n{\"ok\":1}\n", &mut frames);
        assert_eq!(
            frames,
            vec![Frame::TooLong, Frame::Line("{\"ok\":1}".to_string())]
        );
    }

    #[test]
    fn overload_and_timeout_lines_pair_with_their_single_write_forms() {
        assert_eq!(OVERLOADED_LINE_NL, format!("{OVERLOADED_LINE}\n"));
        assert_eq!(READ_TIMEOUT_LINE_NL, format!("{READ_TIMEOUT_LINE}\n"));
        // both are well-formed protocol error lines
        for line in [OVERLOADED_LINE, READ_TIMEOUT_LINE] {
            let v = crate::json::Value::parse(line).unwrap();
            assert_eq!(
                v.get("status").and_then(crate::json::Value::as_str),
                Some("error")
            );
            assert!(v.get("error").is_some());
        }
    }

    #[test]
    fn poll_backend_names_roundtrip() {
        for backend in [PollBackend::Epoll, PollBackend::ThreadPoll] {
            assert_eq!(PollBackend::from_name(backend.name()).unwrap(), backend);
        }
        assert!(PollBackend::from_name("select").is_err());
        assert_eq!(PollBackend::default(), PollBackend::Epoll);
    }

    #[test]
    fn try_admit_increments_only_below_the_limit() {
        let live = AtomicUsize::new(0);
        assert!(try_admit(&live, 2));
        assert!(try_admit(&live, 2));
        assert!(!try_admit(&live, 2));
        assert_eq!(live.load(Ordering::Relaxed), 2, "no overshoot");
        live.fetch_sub(1, Ordering::AcqRel);
        assert!(try_admit(&live, 2));
        assert!(!try_admit(&live, 0), "zero limit always sheds");
    }

    #[test]
    fn try_admit_never_overshoots_under_contention() {
        // hammer admission at the boundary from many threads; the
        // compare-exchange loop must keep the count at or below the limit
        // at every instant (the old load-then-fetch_add raced here)
        const LIMIT: usize = 4;
        const THREADS: usize = 8;
        const ROUNDS: usize = 5_000;
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let live = Arc::clone(&live);
            let peak = Arc::clone(&peak);
            handles.push(std::thread::spawn(move || {
                for _ in 0..ROUNDS {
                    if try_admit(&live, LIMIT) {
                        let now = live.load(Ordering::Acquire);
                        peak.fetch_max(now, Ordering::AcqRel);
                        live.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(live.load(Ordering::Relaxed), 0);
        let peak = peak.load(Ordering::Relaxed);
        assert!(peak <= LIMIT, "admission overshot the limit: peak {peak}");
    }

    #[test]
    fn tcp_roundtrip_shares_the_cache_across_connections() {
        for backend in [PollBackend::Epoll, PollBackend::ThreadPoll] {
            let service = Arc::new(MappingService::new(&ServiceConfig::default()));
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            {
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    let _ = serve_listener_with(
                        service,
                        listener,
                        ServeOptions {
                            workers: 2,
                            poll_backend: backend,
                            ..ServeOptions::default()
                        },
                        Arc::new(AtomicBool::new(false)),
                    );
                });
            }
            let ask = |line: &str| -> String {
                let mut conn = TcpStream::connect(addr).unwrap();
                conn.write_all(line.as_bytes()).unwrap();
                conn.write_all(b"\n").unwrap();
                conn.shutdown(std::net::Shutdown::Write).unwrap();
                let mut reply = String::new();
                BufReader::new(conn).read_line(&mut reply).unwrap();
                reply
            };
            let first = ask(r#"{"dims":[6,6],"nodes":4,"want_mapping":false}"#);
            assert!(first.contains("\"cached\":false"), "{backend:?}: {first}");
            let second = ask(r#"{"dims":[6,6],"nodes":4,"want_mapping":false}"#);
            assert!(second.contains("\"cached\":true"), "{backend:?}: {second}");
            assert_eq!(service.cache_stats().len, 1);
        }
    }
}
