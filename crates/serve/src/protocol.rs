//! The newline-delimited JSON request/response protocol.
//!
//! Every line the client sends is one JSON document: either a single mapping
//! request object or `{"batch": [request, …]}`.  The service answers with
//! exactly one line per line received — a response object, or
//! `{"batch": [response, …]}` with the responses in request order.
//!
//! ## Request fields
//!
//! | field            | type                  | meaning                                             |
//! |------------------|-----------------------|-----------------------------------------------------|
//! | `id`             | any (optional)        | echoed back verbatim in the response                |
//! | `dims`           | `[int, …]`            | grid dimension sizes (required)                     |
//! | `stencil`        | string or `[[int,…]]` | `"nearest_neighbor"` (default), `"hops"`, `"component"`, or explicit offsets |
//! | `periodic`       | bool                  | torus boundaries (default `false`)                  |
//! | `nodes`          | int                   | homogeneous allocation: node count                  |
//! | `procs_per_node` | int                   | homogeneous allocation: processes per node (default `p / nodes`) |
//! | `node_sizes`     | `[int, …]`            | heterogeneous allocation (alternative to `nodes`)   |
//! | `algorithm`      | string                | `"hyperplane"` (default), `"kdtree"`, `"stencil_strips"`, `"nodecart"`, `"viem"`, `"blocked"` |
//! | `seed`           | int                   | seed of the randomised `viem` pipeline (default `0x71EA`) |
//! | `max_jsum`       | int                   | admission budget: reject/fallback when `Jsum` exceeds it |
//! | `on_over_budget` | string                | `"reject"` (default) or `"fallback"`                |
//! | `want_mapping`   | bool                  | include the `nodes` table in the response (default `true`) |
//! | `encoding`       | string                | node-table wire form: `"verbose"` (default, JSON array) or `"compact"` (base64 delta-varint, see [`crate::json::encode_nodes_compact`]) |
//! | `query`          | string                | `"new_rank_of"`: answer point lookups from the cached mapping instead of serialising any table |
//! | `ranks`          | `[int, …]`            | the grid positions (old row-major ranks) a `new_rank_of` query looks up (required with `query`) |
//!
//! ## Response fields
//!
//! `{"id":…, "status":"ok", "algorithm":…, "cached":bool, "j_sum":…,
//! "j_max":…, "nodes":[…]}` — `nodes[x]` is the compute node of grid
//! position `x` (row-major).  With `"encoding":"compact"` the response
//! carries `"encoding":"compact"` and `nodes` becomes one base64 string
//! (decode with [`crate::json::decode_nodes_compact`]).  A `new_rank_of`
//! query answers `"ranks":[…],"nodes":[…]` instead — `nodes[i]` is the
//! compute node of queried position `ranks[i]`, read point-wise from the
//! cached table.  A fallback response adds
//! `"fallback_from":"<requested algorithm>"`.  A response answered
//! cost-only because the server was shedding load adds `"degraded":true`
//! (see the README's failure-modes section).  Failures are reported as
//! `{"id":…, "status":"error", "error":"…"}`; the connection stays usable.

use crate::json::Value;
use stencil_grid::{Dims, NodeAllocation, Stencil};

/// Mapping algorithms addressable over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Recursive bisection with stencil-aware cut selection (Section V-A).
    Hyperplane,
    /// k-d-tree-style recursive halving (Section V-B).
    KdTree,
    /// Strip decomposition scaled to the stencil bounding box (Section V-C).
    StencilStrips,
    /// Gropp's prime-factorisation Cartesian mapping.
    Nodecart,
    /// VieM-style multilevel partitioning + swap search (expensive).
    Viem,
    /// The scheduler's blocked (identity) mapping.
    Blocked,
}

impl Algorithm {
    /// Parses a wire name.
    pub fn from_wire(name: &str) -> Result<Algorithm, String> {
        match name {
            "hyperplane" => Ok(Algorithm::Hyperplane),
            "kdtree" => Ok(Algorithm::KdTree),
            "stencil_strips" => Ok(Algorithm::StencilStrips),
            "nodecart" => Ok(Algorithm::Nodecart),
            "viem" => Ok(Algorithm::Viem),
            "blocked" => Ok(Algorithm::Blocked),
            other => Err(format!(
                "unknown algorithm {other:?} (expected hyperplane, kdtree, stencil_strips, \
                 nodecart, viem or blocked)"
            )),
        }
    }

    /// The wire name.
    pub fn wire_name(&self) -> &'static str {
        match self {
            Algorithm::Hyperplane => "hyperplane",
            Algorithm::KdTree => "kdtree",
            Algorithm::StencilStrips => "stencil_strips",
            Algorithm::Nodecart => "nodecart",
            Algorithm::Viem => "viem",
            Algorithm::Blocked => "blocked",
        }
    }

    /// Whether the algorithm uses the request seed (only the randomised
    /// `viem` pipeline does; keeping the seed out of the other algorithms'
    /// cache keys avoids pointless cache fragmentation).
    pub fn uses_seed(&self) -> bool {
        matches!(self, Algorithm::Viem)
    }

    /// Relative recompute cost of one grid position under this algorithm,
    /// used by GDSF eviction (entry cost = volume × weight).  The weights
    /// mirror the measured asymmetry from the paper's setting: the
    /// multilevel viem pipeline costs ~45 ms where the rank-local mappers
    /// cost ~1 ms, so a viem entry is worth roughly 50 cheap entries of the
    /// same size.  Deterministic (a pure function of the algorithm), so
    /// costs never need to be persisted — replay re-derives them.
    pub fn cost_weight(&self) -> u64 {
        match self {
            Algorithm::Viem => 50,
            _ => 1,
        }
    }
}

/// The node-table wire form of a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Encoding {
    /// JSON array of integers (the PR 3 wire form, default).
    #[default]
    Verbose,
    /// One base64 string over length-prefixed zigzag delta varints.
    Compact,
}

/// A point-lookup query riding on an otherwise ordinary request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Look up the compute node of each listed grid position (old row-major
    /// rank) — answered from the cached mapping without serialising any
    /// table.
    NewRankOf(Vec<usize>),
}

/// What to do when the computed mapping exceeds the admission budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverBudget {
    /// Answer with an error.
    Reject,
    /// Try the other specialised algorithms and serve the first one within
    /// budget.
    Fallback,
}

/// A parsed mapping request.
#[derive(Debug, Clone, PartialEq)]
pub struct MapRequest {
    /// Client-chosen correlation id, echoed back verbatim.
    pub id: Option<Value>,
    /// Grid dimension sizes.
    pub dims: Dims,
    /// Stencil (`k`-neighborhood).
    pub stencil: Stencil,
    /// Torus boundaries.
    pub periodic: bool,
    /// Node allocation.
    pub alloc: NodeAllocation,
    /// Requested algorithm.
    pub algorithm: Algorithm,
    /// Seed for the randomised pipeline.
    pub seed: u64,
    /// Admission budget on `Jsum`.
    pub max_jsum: Option<u64>,
    /// Budget-exceeded policy.
    pub on_over_budget: OverBudget,
    /// Whether the response should carry the full node table.
    pub want_mapping: bool,
    /// Node-table wire form.
    pub encoding: Encoding,
    /// Point-lookup query replacing the table response, if any.
    pub query: Option<Query>,
}

/// Default seed of the `viem` pipeline (mirrors `GraphMapper::default`).
pub const DEFAULT_SEED: u64 = 0x71EA;

/// Maximum grid volume (total process count) one request may ask for.  A
/// 40-byte line like `{"dims":[65536,65536],"nodes":4}` must not be able to
/// drive the engine into materialising a multi-gigabyte mapping (or
/// overflow the volume product entirely); 2^24 positions is ~3500x the
/// paper's largest instance while keeping the worst-case node table at
/// 64 MiB.
pub const MAX_GRID_VOLUME: usize = 1 << 24;

impl MapRequest {
    /// Parses one request object (not the batch wrapper).
    pub fn from_value(v: &Value) -> Result<MapRequest, String> {
        if !matches!(v, Value::Obj(_)) {
            return Err("request must be a JSON object".to_string());
        }
        let id = v.get("id").cloned();
        let dims_raw = v.get("dims").ok_or("missing required field \"dims\"")?;
        let dims_vec: Vec<usize> = dims_raw
            .as_arr()
            .ok_or("\"dims\" must be an array of positive integers")?
            .iter()
            .map(|x| {
                x.as_usize()
                    .filter(|&d| d > 0)
                    .ok_or("\"dims\" must be an array of positive integers")
            })
            .collect::<Result<_, _>>()?;
        // bound the volume with checked arithmetic *before* anything
        // multiplies the sizes unchecked
        let p = dims_vec
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .filter(|&p| p <= MAX_GRID_VOLUME)
            .ok_or(format!(
                "grid volume exceeds the {MAX_GRID_VOLUME}-position limit"
            ))?;
        let dims = Dims::new(dims_vec).map_err(|e| format!("invalid dims: {e}"))?;
        let ndims = dims.ndims();

        let stencil = match v.get("stencil") {
            None => Stencil::nearest_neighbor(ndims),
            Some(Value::Str(name)) => match name.as_str() {
                "nearest_neighbor" => Stencil::nearest_neighbor(ndims),
                "hops" | "nearest_neighbor_with_hops" => Stencil::nearest_neighbor_with_hops(ndims),
                "component" => {
                    if ndims < 2 {
                        return Err("component stencil requires at least 2 dims".to_string());
                    }
                    Stencil::component(ndims)
                }
                other => return Err(format!("unknown stencil name {other:?}")),
            },
            Some(Value::Arr(offsets)) => {
                let parsed: Vec<Vec<i64>> = offsets
                    .iter()
                    .map(|o| {
                        o.as_arr()
                            .ok_or("stencil offsets must be arrays of integers")?
                            .iter()
                            .map(|x| {
                                x.as_i64()
                                    .ok_or("stencil offsets must be arrays of integers")
                            })
                            .collect::<Result<Vec<i64>, _>>()
                    })
                    .collect::<Result<_, _>>()?;
                Stencil::new(ndims, parsed).map_err(|e| format!("invalid stencil: {e}"))?
            }
            Some(_) => return Err("\"stencil\" must be a name or an offset array".to_string()),
        };

        let periodic = match v.get("periodic") {
            None => false,
            Some(b) => b.as_bool().ok_or("\"periodic\" must be a boolean")?,
        };

        let alloc = match (v.get("node_sizes"), v.get("nodes")) {
            (Some(sizes), _) => {
                let sizes: Vec<usize> = sizes
                    .as_arr()
                    .ok_or("\"node_sizes\" must be an array of positive integers")?
                    .iter()
                    .map(|x| {
                        x.as_usize()
                            .filter(|&s| s > 0)
                            .ok_or("\"node_sizes\" must be an array of positive integers")
                    })
                    .collect::<Result<_, _>>()?;
                NodeAllocation::heterogeneous(sizes)
                    .map_err(|e| format!("invalid node_sizes: {e}"))?
            }
            (None, Some(nodes)) => {
                let nodes = nodes
                    .as_usize()
                    .filter(|&n| n > 0)
                    .ok_or("\"nodes\" must be a positive integer")?;
                let per = match v.get("procs_per_node") {
                    Some(x) => x
                        .as_usize()
                        .filter(|&n| n > 0)
                        .ok_or("\"procs_per_node\" must be a positive integer")?,
                    None => {
                        if !p.is_multiple_of(nodes) {
                            return Err(format!(
                                "p = {p} is not divisible by nodes = {nodes}; give \
                                 \"procs_per_node\" or \"node_sizes\""
                            ));
                        }
                        p / nodes
                    }
                };
                NodeAllocation::homogeneous(nodes, per)
            }
            (None, None) => {
                return Err("missing allocation: give \"nodes\" or \"node_sizes\"".to_string())
            }
        };
        alloc
            .check_total(p)
            .map_err(|e| format!("allocation does not cover the grid: {e}"))?;

        let algorithm = match v.get("algorithm") {
            None => Algorithm::Hyperplane,
            Some(a) => Algorithm::from_wire(a.as_str().ok_or("\"algorithm\" must be a string")?)?,
        };

        let seed = match v.get("seed") {
            None => DEFAULT_SEED,
            Some(s) => s
                .as_u64()
                .ok_or("\"seed\" must be a non-negative integer")?,
        };

        let max_jsum = match v.get("max_jsum") {
            None => None,
            Some(b) => Some(
                b.as_u64()
                    .ok_or("\"max_jsum\" must be a non-negative integer")?,
            ),
        };

        let on_over_budget = match v.get("on_over_budget") {
            None => OverBudget::Reject,
            Some(m) => match m.as_str() {
                Some("reject") => OverBudget::Reject,
                Some("fallback") => OverBudget::Fallback,
                _ => return Err("\"on_over_budget\" must be \"reject\" or \"fallback\"".into()),
            },
        };

        let want_mapping = match v.get("want_mapping") {
            None => true,
            Some(b) => b.as_bool().ok_or("\"want_mapping\" must be a boolean")?,
        };

        let encoding = match v.get("encoding") {
            None => Encoding::Verbose,
            Some(e) => match e.as_str() {
                Some("verbose") => Encoding::Verbose,
                Some("compact") => Encoding::Compact,
                _ => return Err("\"encoding\" must be \"verbose\" or \"compact\"".to_string()),
            },
        };

        let query = match v.get("query") {
            None => {
                if v.get("ranks").is_some() {
                    return Err("\"ranks\" requires \"query\":\"new_rank_of\"".to_string());
                }
                None
            }
            Some(q) => match q.as_str() {
                Some("new_rank_of") => {
                    let ranks: Vec<usize> = v
                        .get("ranks")
                        .ok_or("\"query\":\"new_rank_of\" requires a \"ranks\" array")?
                        .as_arr()
                        .ok_or("\"ranks\" must be an array of grid positions")?
                        .iter()
                        .map(|x| {
                            x.as_usize()
                                .filter(|&r| r < p)
                                .ok_or(format!("\"ranks\" entries must be integers in [0, {p})"))
                        })
                        .collect::<Result<_, _>>()?;
                    Some(Query::NewRankOf(ranks))
                }
                _ => return Err("unknown query (expected \"new_rank_of\")".to_string()),
            },
        };

        Ok(MapRequest {
            id,
            dims,
            stencil,
            periodic,
            alloc,
            algorithm,
            seed,
            max_jsum,
            on_over_budget,
            want_mapping,
            encoding,
            query,
        })
    }
}

/// A response to one request.
#[derive(Debug, Clone, PartialEq)]
pub struct MapResponse {
    /// Echoed request id.
    pub id: Option<Value>,
    /// The outcome.
    pub body: ResponseBody,
}

/// The payload of a [`MapResponse`].
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// A served mapping.
    Ok {
        /// The algorithm whose mapping is served (differs from the request
        /// under budget fallback).
        algorithm: Algorithm,
        /// The requested algorithm, when a budget fallback replaced it.
        fallback_from: Option<Algorithm>,
        /// Whether the canonical cache already held the entry.
        cached: bool,
        /// Whether overload degradation stripped the mapping payload (the
        /// response answers cost-only as if `want_mapping:false`).  Never
        /// set on the stdin path or under normal load, so golden
        /// transcripts are unaffected; rendered only when `true`.
        degraded: bool,
        /// Total inter-node communication edges of the served mapping.
        j_sum: u64,
        /// Bottleneck-node egress of the served mapping.
        j_max: u64,
        /// The mapping payload in the request's chosen form.
        payload: Payload,
    },
    /// A failure; the connection stays usable.
    Error(String),
}

/// How (and whether) a successful response carries the mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Cost-only answer (`want_mapping: false`).
    None,
    /// Verbose `position → node` table in the request's own dimension order.
    Table(Vec<u32>),
    /// The same table in the compact wire form (base64 delta varints).
    TableCompact(String),
    /// Point-lookup answers: `nodes[i]` is the node of position `ranks[i]`.
    Points {
        /// The queried grid positions, echoed back.
        ranks: Vec<usize>,
        /// The compute node of each queried position.
        nodes: Vec<u32>,
    },
}

impl MapResponse {
    /// Renders the response as a JSON value, consuming it — the payload
    /// strings and tables move into the value instead of being cloned a
    /// second time, which matters on the cache-hit path.  (A compact-mode
    /// hit still pays exactly one copy of the memoised encoding out of the
    /// shared cache entry, in `MappingService::handle_request`.)
    pub fn into_value(self) -> Value {
        let mut fields: Vec<(String, Value)> = Vec::new();
        if let Some(id) = self.id {
            fields.push(("id".to_string(), id));
        }
        match self.body {
            ResponseBody::Ok {
                algorithm,
                fallback_from,
                cached,
                degraded,
                j_sum,
                j_max,
                payload,
            } => {
                fields.push(("status".to_string(), Value::str("ok")));
                fields.push(("algorithm".to_string(), Value::str(algorithm.wire_name())));
                if let Some(from) = fallback_from {
                    fields.push(("fallback_from".to_string(), Value::str(from.wire_name())));
                }
                fields.push(("cached".to_string(), Value::Bool(cached)));
                if degraded {
                    fields.push(("degraded".to_string(), Value::Bool(true)));
                }
                fields.push(("j_sum".to_string(), Value::Num(j_sum as f64)));
                fields.push(("j_max".to_string(), Value::Num(j_max as f64)));
                match payload {
                    Payload::None => {}
                    Payload::Table(nodes) => {
                        fields.push((
                            "nodes".to_string(),
                            Value::Arr(nodes.iter().map(|&n| Value::Num(n as f64)).collect()),
                        ));
                    }
                    Payload::TableCompact(encoded) => {
                        fields.push(("encoding".to_string(), Value::str("compact")));
                        fields.push(("nodes".to_string(), Value::Str(encoded)));
                    }
                    Payload::Points { ranks, nodes } => {
                        fields.push((
                            "ranks".to_string(),
                            Value::Arr(ranks.iter().map(|&r| Value::Num(r as f64)).collect()),
                        ));
                        fields.push((
                            "nodes".to_string(),
                            Value::Arr(nodes.iter().map(|&n| Value::Num(n as f64)).collect()),
                        ));
                    }
                }
            }
            ResponseBody::Error(msg) => {
                fields.push(("status".to_string(), Value::str("error")));
                fields.push(("error".to_string(), Value::Str(msg)));
            }
        }
        Value::Obj(fields)
    }

    /// Renders the response as a JSON value without consuming it (clones
    /// the payload; the serving path uses [`MapResponse::write_into`]).
    pub fn to_value(&self) -> Value {
        self.clone().into_value()
    }

    /// Appends the response as compact single-line JSON directly to `out`,
    /// byte-identical to `self.to_value().compact()` but without building
    /// the intermediate [`Value`] tree.  A verbose 4800-entry table costs
    /// one `reserve` and a run of integer pushes here, versus 4800 boxed
    /// `f64` nodes plus a second serialisation walk on the tree path — this
    /// is the serving hot path.
    pub fn write_into(&self, out: &mut String) {
        use crate::json::{write_f64, write_string, write_u32, write_u32_array};
        out.push('{');
        if let Some(id) = &self.id {
            out.push_str("\"id\":");
            id.write_into(out);
            out.push(',');
        }
        match &self.body {
            ResponseBody::Ok {
                algorithm,
                fallback_from,
                cached,
                degraded,
                j_sum,
                j_max,
                payload,
            } => {
                out.push_str("\"status\":\"ok\",\"algorithm\":\"");
                out.push_str(algorithm.wire_name());
                out.push('"');
                if let Some(from) = fallback_from {
                    out.push_str(",\"fallback_from\":\"");
                    out.push_str(from.wire_name());
                    out.push('"');
                }
                out.push_str(if *cached {
                    ",\"cached\":true"
                } else {
                    ",\"cached\":false"
                });
                if *degraded {
                    out.push_str(",\"degraded\":true");
                }
                out.push_str(",\"j_sum\":");
                write_f64(out, *j_sum as f64);
                out.push_str(",\"j_max\":");
                write_f64(out, *j_max as f64);
                match payload {
                    Payload::None => {}
                    Payload::Table(nodes) => {
                        out.push_str(",\"nodes\":");
                        write_u32_array(out, nodes);
                    }
                    Payload::TableCompact(encoded) => {
                        out.push_str(",\"encoding\":\"compact\",\"nodes\":");
                        write_string(out, encoded);
                    }
                    Payload::Points { ranks, nodes } => {
                        out.push_str(",\"ranks\":[");
                        for (i, &r) in ranks.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            write_f64(out, r as f64);
                        }
                        out.push_str("],\"nodes\":[");
                        for (i, &n) in nodes.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            write_u32(out, n);
                        }
                        out.push(']');
                    }
                }
            }
            ResponseBody::Error(msg) => {
                out.push_str("\"status\":\"error\",\"error\":");
                write_string(out, msg);
            }
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<MapRequest, String> {
        MapRequest::from_value(&Value::parse(line).expect("valid json"))
    }

    #[test]
    fn minimal_request_uses_defaults() {
        let r = parse(r#"{"dims":[12,8],"nodes":8}"#).unwrap();
        assert_eq!(r.dims.as_slice(), &[12, 8]);
        assert_eq!(r.alloc.num_nodes(), 8);
        assert_eq!(r.alloc.node_size(0), 12);
        assert_eq!(r.algorithm, Algorithm::Hyperplane);
        assert_eq!(r.stencil, Stencil::nearest_neighbor(2));
        assert!(!r.periodic);
        assert!(r.want_mapping);
        assert_eq!(r.seed, DEFAULT_SEED);
        assert_eq!(r.max_jsum, None);
        assert_eq!(r.on_over_budget, OverBudget::Reject);
        assert_eq!(r.encoding, Encoding::Verbose);
        assert_eq!(r.query, None);
    }

    #[test]
    fn encoding_and_query_fields_parse_and_validate() {
        let r = parse(r#"{"dims":[4,4],"nodes":4,"encoding":"compact"}"#).unwrap();
        assert_eq!(r.encoding, Encoding::Compact);
        let r = parse(r#"{"dims":[4,4],"nodes":4,"encoding":"verbose"}"#).unwrap();
        assert_eq!(r.encoding, Encoding::Verbose);
        let r =
            parse(r#"{"dims":[4,4],"nodes":4,"query":"new_rank_of","ranks":[0,15,7]}"#).unwrap();
        assert_eq!(r.query, Some(Query::NewRankOf(vec![0, 15, 7])));
        for (line, needle) in [
            (r#"{"dims":[4,4],"nodes":4,"encoding":"gzip"}"#, "encoding"),
            (r#"{"dims":[4,4],"nodes":4,"query":"old_rank_of"}"#, "query"),
            (r#"{"dims":[4,4],"nodes":4,"query":"new_rank_of"}"#, "ranks"),
            (
                r#"{"dims":[4,4],"nodes":4,"query":"new_rank_of","ranks":[16]}"#,
                "[0, 16)",
            ),
            (
                r#"{"dims":[4,4],"nodes":4,"query":"new_rank_of","ranks":[-1]}"#,
                "ranks",
            ),
            (r#"{"dims":[4,4],"nodes":4,"ranks":[0]}"#, "requires"),
        ] {
            let err = parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn full_request_parses_every_field() {
        let r = parse(
            r#"{"id":"req-1","dims":[6,6],"stencil":[[1,0],[-1,0]],"periodic":true,
                "node_sizes":[20,16],"algorithm":"viem","seed":7,"max_jsum":100,
                "on_over_budget":"fallback","want_mapping":false}"#,
        )
        .unwrap();
        assert_eq!(r.id, Some(Value::str("req-1")));
        assert!(r.periodic);
        assert_eq!(r.alloc.sizes(), &[20, 16]);
        assert_eq!(r.algorithm, Algorithm::Viem);
        assert_eq!(r.seed, 7);
        assert_eq!(r.max_jsum, Some(100));
        assert_eq!(r.on_over_budget, OverBudget::Fallback);
        assert!(!r.want_mapping);
        assert_eq!(r.stencil.k(), 2);
    }

    #[test]
    fn named_stencils_resolve() {
        assert_eq!(
            parse(r#"{"dims":[4,4],"nodes":4,"stencil":"hops"}"#)
                .unwrap()
                .stencil,
            Stencil::nearest_neighbor_with_hops(2)
        );
        assert_eq!(
            parse(r#"{"dims":[4,4],"nodes":4,"stencil":"component"}"#)
                .unwrap()
                .stencil,
            Stencil::component(2)
        );
        assert!(parse(r#"{"dims":[4,4],"nodes":4,"stencil":"torus"}"#).is_err());
        assert!(parse(r#"{"dims":[4],"nodes":2,"stencil":"component"}"#).is_err());
    }

    #[test]
    fn invalid_requests_are_rejected_with_messages() {
        for (line, needle) in [
            (r#"{"nodes":4}"#, "dims"),
            (r#"{"dims":[0,4],"nodes":4}"#, "dims"),
            (r#"{"dims":[4,4]}"#, "allocation"),
            (r#"{"dims":[4,4],"nodes":3}"#, "not divisible"),
            (
                r#"{"dims":[4,4],"nodes":4,"algorithm":"magic"}"#,
                "unknown algorithm",
            ),
            (
                r#"{"dims":[4,4],"node_sizes":[8,9]}"#,
                "allocation does not cover",
            ),
            (
                r#"{"dims":[4,4],"nodes":4,"on_over_budget":"explode"}"#,
                "on_over_budget",
            ),
            (r#"[1,2]"#, "object"),
        ] {
            let err = parse(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err}");
        }
    }

    #[test]
    fn degraded_flag_renders_only_when_set() {
        let resp = |degraded| MapResponse {
            id: None,
            body: ResponseBody::Ok {
                algorithm: Algorithm::Hyperplane,
                fallback_from: None,
                cached: true,
                degraded,
                j_sum: 2,
                j_max: 1,
                payload: Payload::None,
            },
        };
        assert_eq!(
            resp(true).to_value().compact(),
            r#"{"status":"ok","algorithm":"hyperplane","cached":true,"degraded":true,"j_sum":2,"j_max":1}"#
        );
        assert!(!resp(false).to_value().compact().contains("degraded"));
    }

    #[test]
    fn cost_weights_reflect_the_recompute_asymmetry() {
        assert_eq!(Algorithm::Viem.cost_weight(), 50);
        for alg in [
            Algorithm::Hyperplane,
            Algorithm::KdTree,
            Algorithm::StencilStrips,
            Algorithm::Nodecart,
            Algorithm::Blocked,
        ] {
            assert_eq!(alg.cost_weight(), 1);
        }
    }

    #[test]
    fn algorithm_wire_names_roundtrip() {
        for alg in [
            Algorithm::Hyperplane,
            Algorithm::KdTree,
            Algorithm::StencilStrips,
            Algorithm::Nodecart,
            Algorithm::Viem,
            Algorithm::Blocked,
        ] {
            assert_eq!(Algorithm::from_wire(alg.wire_name()).unwrap(), alg);
        }
        assert!(Algorithm::Viem.uses_seed());
        assert!(!Algorithm::Hyperplane.uses_seed());
    }

    #[test]
    fn responses_render_compact_json() {
        let ok = MapResponse {
            id: Some(Value::Num(3.0)),
            body: ResponseBody::Ok {
                algorithm: Algorithm::KdTree,
                fallback_from: Some(Algorithm::Viem),
                cached: true,
                degraded: false,
                j_sum: 10,
                j_max: 4,
                payload: Payload::Table(vec![0, 0, 1, 1]),
            },
        };
        assert_eq!(
            ok.to_value().compact(),
            r#"{"id":3,"status":"ok","algorithm":"kdtree","fallback_from":"viem","cached":true,"j_sum":10,"j_max":4,"nodes":[0,0,1,1]}"#
        );
        let err = MapResponse {
            id: None,
            body: ResponseBody::Error("boom".to_string()),
        };
        assert_eq!(
            err.to_value().compact(),
            r#"{"status":"error","error":"boom"}"#
        );
    }

    #[test]
    fn direct_writer_matches_tree_writer_for_every_response_shape() {
        let ids = [
            None,
            Some(Value::Num(3.0)),
            Some(Value::str("req \"7\"\n")),
            Some(Value::Null),
            Some(Value::Arr(vec![Value::Num(1.0), Value::Bool(true)])),
        ];
        let payloads = [
            Payload::None,
            Payload::Table(vec![]),
            Payload::Table(vec![0, 47, 4799, u32::MAX]),
            Payload::Table((0..4800u32).map(|x| x / 48).collect()),
            Payload::TableCompact(crate::json::encode_nodes_compact(&[0, 0, 1, 1])),
            Payload::Points {
                ranks: vec![3, 0, 16_777_215],
                nodes: vec![1, 0, 255],
            },
        ];
        let mut shapes = Vec::new();
        for id in &ids {
            for payload in &payloads {
                for (fallback_from, cached, degraded) in
                    [(None, true, false), (Some(Algorithm::Viem), false, true)]
                {
                    shapes.push(MapResponse {
                        id: id.clone(),
                        body: ResponseBody::Ok {
                            algorithm: Algorithm::KdTree,
                            fallback_from,
                            cached,
                            degraded,
                            j_sum: 10,
                            j_max: 4,
                            payload: payload.clone(),
                        },
                    });
                }
            }
            shapes.push(MapResponse {
                id: id.clone(),
                body: ResponseBody::Error("bad \"dims\"\n".to_string()),
            });
        }
        for resp in shapes {
            let mut direct = String::new();
            resp.write_into(&mut direct);
            assert_eq!(direct, resp.to_value().compact(), "{resp:?}");
        }
    }

    #[test]
    fn compact_and_point_payloads_render() {
        let body = |payload| MapResponse {
            id: None,
            body: ResponseBody::Ok {
                algorithm: Algorithm::Hyperplane,
                fallback_from: None,
                cached: false,
                degraded: false,
                j_sum: 2,
                j_max: 1,
                payload,
            },
        };
        assert_eq!(
            body(Payload::None).to_value().compact(),
            r#"{"status":"ok","algorithm":"hyperplane","cached":false,"j_sum":2,"j_max":1}"#
        );
        let encoded = crate::json::encode_nodes_compact(&[0, 0, 1, 1]);
        assert_eq!(
            body(Payload::TableCompact(encoded.clone()))
                .to_value()
                .compact(),
            format!(
                r#"{{"status":"ok","algorithm":"hyperplane","cached":false,"j_sum":2,"j_max":1,"encoding":"compact","nodes":"{encoded}"}}"#
            )
        );
        assert_eq!(
            body(Payload::Points {
                ranks: vec![3, 0],
                nodes: vec![1, 0],
            })
            .to_value()
            .compact(),
            r#"{"status":"ok","algorithm":"hyperplane","cached":false,"j_sum":2,"j_max":1,"ranks":[3,0],"nodes":[1,0]}"#
        );
    }
}
