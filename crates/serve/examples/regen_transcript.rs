//! Regenerates `tests/data/transcript_expected.txt` from
//! `tests/data/transcript_requests.txt`.
//!
//! Run after a *deliberate* protocol change, then review the diff — every
//! changed byte is a wire-visible behaviour change:
//!
//! ```text
//! cargo run --release -p stencil-serve --example regen_transcript
//! ```

use stencil_serve::service::ServiceConfig;
use stencil_serve::transcript::replay;

fn main() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data");
    let requests = std::fs::read_to_string(dir.join("transcript_requests.txt"))
        .expect("reading tests/data/transcript_requests.txt");

    let persist =
        std::env::temp_dir().join(format!("stencil-serve-regen-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&persist);
    let cfg = ServiceConfig {
        persist_path: Some(persist.clone()),
        ..ServiceConfig::default()
    };
    let responses = replay(&requests, &cfg).expect("transcript replay failed");
    let _ = std::fs::remove_file(&persist);

    let mut out = String::new();
    for line in &responses {
        out.push_str(line);
        out.push('\n');
    }
    let path = dir.join("transcript_expected.txt");
    std::fs::write(&path, out).expect("writing transcript_expected.txt");
    println!("wrote {} responses to {}", responses.len(), path.display());
}
