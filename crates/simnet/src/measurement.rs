//! Repeated-measurement harness mirroring the paper's benchmarking protocol
//! (Section VI-B): every exchange is executed 200 times, processes are
//! synchronised with a barrier before each repetition, the maximum time over
//! all processes is recorded, outliers beyond 1.5 IQR are removed and the
//! mean with a 95% confidence interval is reported.
//!
//! The simulator produces a deterministic base time per exchange
//! ([`crate::ExchangeModel`]); this module adds the run-to-run variability a
//! real machine exhibits (seeded, multiplicative noise plus rare system
//! spikes) so that the statistical pipeline operates on realistic samples.

use crate::exchange::ExchangeModel;
use crate::stats::Summary;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stencil_grid::CartGraph;
use stencil_mapping::Mapping;

/// Configuration of the repeated measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Number of repetitions (the paper uses 200).
    pub repetitions: usize,
    /// Relative standard deviation of the per-repetition noise.
    pub noise: f64,
    /// Probability of a system-noise spike (outlier) per repetition.
    pub spike_probability: f64,
    /// Multiplicative magnitude of a spike.
    pub spike_factor: f64,
    /// Seed of the noise generator.
    pub seed: u64,
}

impl Default for Measurement {
    fn default() -> Self {
        Measurement {
            repetitions: 200,
            noise: 0.03,
            spike_probability: 0.01,
            spike_factor: 4.0,
            seed: 0xBEEF,
        }
    }
}

impl Measurement {
    /// Creates a measurement configuration with the paper's repetition count
    /// and a custom seed.
    pub fn with_seed(seed: u64) -> Self {
        Measurement {
            seed,
            ..Default::default()
        }
    }

    /// Produces the raw sample (seconds) for one exchange.
    pub fn sample(
        &self,
        model: &ExchangeModel,
        graph: &CartGraph,
        mapping: &Mapping,
        message_size: usize,
    ) -> Vec<f64> {
        let base = model.exchange_time(graph, mapping, message_size);
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.seed ^ (message_size as u64).wrapping_mul(0x9E3779B97F4A7C15),
        );
        (0..self.repetitions.max(1))
            .map(|_| {
                // symmetric triangular-ish noise around 1.0
                let u: f64 = rng.gen_range(-1.0..1.0);
                let mut t = base * (1.0 + self.noise * u);
                if rng.gen_bool(self.spike_probability.clamp(0.0, 1.0)) {
                    t *= self.spike_factor;
                }
                t.max(0.0)
            })
            .collect()
    }

    /// Runs the full protocol: sample, remove outliers, summarise.
    pub fn measure(
        &self,
        model: &ExchangeModel,
        graph: &CartGraph,
        mapping: &Mapping,
        message_size: usize,
    ) -> Summary {
        Summary::of_filtered(&self.sample(model, graph, mapping, message_size))
    }
}

/// One measured exchange: machine, algorithm, message size and the summary.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredExchange {
    /// Machine name.
    pub machine: String,
    /// Mapping algorithm name.
    pub algorithm: String,
    /// Message size in bytes per neighbor.
    pub message_size: usize,
    /// Summary statistics of the measured exchange times (seconds).
    pub summary: Summary,
}

impl MeasuredExchange {
    /// Convenience constructor running the measurement protocol.
    pub fn run(
        machine_name: &str,
        algorithm: &str,
        model: &ExchangeModel,
        graph: &CartGraph,
        mapping: &Mapping,
        message_size: usize,
        config: &Measurement,
    ) -> Self {
        MeasuredExchange {
            machine: machine_name.to_string(),
            algorithm: algorithm.to_string(),
            message_size,
            summary: config.measure(model, graph, mapping, message_size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use stencil_grid::{Dims, NodeAllocation, Stencil};
    use stencil_mapping::baselines::Blocked;
    use stencil_mapping::{Mapper, MappingProblem};

    fn setup() -> (CartGraph, Mapping, ExchangeModel) {
        let p = MappingProblem::new(
            Dims::from_slice(&[10, 8]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(10, 8),
        )
        .unwrap();
        let g = CartGraph::build(p.dims(), p.stencil(), false);
        let m = Blocked.compute(&p).unwrap();
        (g, m, ExchangeModel::new(&Machine::vsc4()))
    }

    #[test]
    fn sample_has_requested_length_and_is_near_base() {
        let (g, m, model) = setup();
        let cfg = Measurement::default();
        let sample = cfg.sample(&model, &g, &m, 4096);
        assert_eq!(sample.len(), 200);
        let base = model.exchange_time(&g, &m, 4096);
        let within = sample
            .iter()
            .filter(|&&t| (t - base).abs() <= base * 0.05)
            .count();
        assert!(within > 150, "most repetitions stay close to the base time");
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let (g, m, model) = setup();
        let a = Measurement::with_seed(1).measure(&model, &g, &m, 1 << 16);
        let b = Measurement::with_seed(1).measure(&model, &g, &m, 1 << 16);
        let c = Measurement::with_seed(2).measure(&model, &g, &m, 1 << 16);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn outlier_removal_keeps_mean_close_to_base() {
        let (g, m, model) = setup();
        let cfg = Measurement {
            spike_probability: 0.05,
            ..Measurement::with_seed(3)
        };
        let base = model.exchange_time(&g, &m, 1 << 18);
        let summary = cfg.measure(&model, &g, &m, 1 << 18);
        assert!((summary.mean - base).abs() < base * 0.05);
        assert!(summary.n <= cfg.repetitions);
        assert!(summary.mean_ci95 < base * 0.02);
    }

    #[test]
    fn measured_exchange_records_metadata() {
        let (g, m, model) = setup();
        let rec = MeasuredExchange::run(
            "VSC4",
            "Blocked",
            &model,
            &g,
            &m,
            1024,
            &Measurement::with_seed(5),
        );
        assert_eq!(rec.machine, "VSC4");
        assert_eq!(rec.algorithm, "Blocked");
        assert_eq!(rec.message_size, 1024);
        assert!(rec.summary.mean > 0.0);
    }
}
