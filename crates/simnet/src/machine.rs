//! Machine models of the three HPC systems used in the paper's evaluation
//! (Table I) plus a generic constructor for custom clusters.
//!
//! The parameters are *effective* values: the sustained per-node NIC
//! bandwidth an `MPI_Neighbor_alltoall` actually achieves (which is far below
//! the 100 Gbit/s line rate once 48 ranks share the NIC), per-message
//! overheads and intra-node memory bandwidth.  They were calibrated so that
//! the simulated exchange times fall in the same range as the absolute times
//! reported in Tables II–VII; the qualitative behaviour (who wins, crossover
//! points, saturation at large messages) is what the simulation reproduces.

use crate::topology::FatTree;

/// An HPC machine model: node architecture plus interconnect parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// Human-readable machine name.
    pub name: String,
    /// Number of processor cores (processes) per compute node.
    pub cores_per_node: usize,
    /// Effective per-node NIC bandwidth for off-node traffic, in bytes/s.
    pub node_bandwidth: f64,
    /// Per off-node message overhead at the NIC, in seconds.
    pub inter_msg_overhead: f64,
    /// Base latency of a neighborhood collective invocation, in seconds.
    pub base_latency: f64,
    /// Effective aggregated intra-node (shared memory) bandwidth per node,
    /// in bytes/s.
    pub intra_bandwidth: f64,
    /// Per intra-node message overhead, in seconds.
    pub intra_msg_overhead: f64,
    /// The interconnect topology (two-level fat tree).
    pub fat_tree: FatTree,
}

impl Machine {
    /// The Vienna Scientific Cluster 4: dual Intel Skylake Platinum 8174
    /// (48 cores/node), 100 Gbit/s OmniPath, two-level fat tree with a 2:1
    /// blocking factor.
    pub fn vsc4() -> Self {
        Machine {
            name: "VSC4".to_string(),
            cores_per_node: 48,
            node_bandwidth: 0.78e9,
            inter_msg_overhead: 0.16e-6,
            base_latency: 4.0e-6,
            intra_bandwidth: 4.0e9,
            intra_msg_overhead: 0.04e-6,
            fat_tree: FatTree::new(32, 2.0),
        }
    }

    /// SuperMUC-NG: dual Intel Skylake Platinum 8174 (48 cores/node),
    /// OmniPath fat-tree islands with a 1:4 pruning factor between islands.
    pub fn supermuc_ng() -> Self {
        Machine {
            name: "SuperMUC-NG".to_string(),
            cores_per_node: 48,
            node_bandwidth: 0.88e9,
            inter_msg_overhead: 0.21e-6,
            base_latency: 7.0e-6,
            intra_bandwidth: 4.2e9,
            intra_msg_overhead: 0.05e-6,
            fat_tree: FatTree::new(48, 4.0),
        }
    }

    /// JUWELS: dual Intel Xeon Platinum 8168 (48 cores/node), 100 Gbit/s
    /// InfiniBand, two-level fat tree with a 2:1 pruning factor.
    pub fn juwels() -> Self {
        Machine {
            name: "JUWELS".to_string(),
            cores_per_node: 48,
            node_bandwidth: 1.05e9,
            inter_msg_overhead: 0.30e-6,
            base_latency: 9.0e-6,
            intra_bandwidth: 3.5e9,
            intra_msg_overhead: 0.06e-6,
            fat_tree: FatTree::new(24, 2.0),
        }
    }

    /// The three machines of the paper, in the order of the figures.
    pub fn paper_machines() -> Vec<Machine> {
        vec![Self::vsc4(), Self::supermuc_ng(), Self::juwels()]
    }

    /// A generic machine for custom experiments.
    pub fn custom(
        name: &str,
        cores_per_node: usize,
        node_bandwidth: f64,
        intra_bandwidth: f64,
        fat_tree: FatTree,
    ) -> Self {
        Machine {
            name: name.to_string(),
            cores_per_node,
            node_bandwidth,
            inter_msg_overhead: 0.2e-6,
            base_latency: 5.0e-6,
            intra_bandwidth,
            intra_msg_overhead: 0.05e-6,
            fat_tree,
        }
    }

    /// Ratio between effective intra-node and inter-node bandwidth — the
    /// "intra-node communication is (much) faster" assumption of Section II.
    pub fn intra_inter_ratio(&self) -> f64 {
        self.intra_bandwidth / self.node_bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machines_have_48_cores() {
        for m in Machine::paper_machines() {
            assert_eq!(m.cores_per_node, 48);
            assert!(m.node_bandwidth > 0.0);
            assert!(m.intra_bandwidth > m.node_bandwidth);
            assert!(m.intra_inter_ratio() > 1.0);
            assert!(m.base_latency > 0.0 && m.base_latency < 1e-3);
        }
        assert_eq!(Machine::paper_machines().len(), 3);
    }

    #[test]
    fn machines_are_distinct() {
        let v = Machine::vsc4();
        let s = Machine::supermuc_ng();
        let j = Machine::juwels();
        assert_ne!(v, s);
        assert_ne!(s, j);
        assert_eq!(v.name, "VSC4");
        assert_eq!(s.fat_tree.oversubscription, 4.0);
        assert_eq!(j.fat_tree.nodes_per_switch, 24);
    }

    #[test]
    fn custom_machine_builder() {
        let m = Machine::custom("lab", 16, 1e9, 8e9, FatTree::new(16, 1.0));
        assert_eq!(m.cores_per_node, 16);
        assert_eq!(m.name, "lab");
        assert!((m.intra_inter_ratio() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn custom_machine_clone_and_debug() {
        let m = Machine::custom("lab", 16, 1e9, 8e9, FatTree::new(16, 1.0));
        let m2 = m.clone();
        assert_eq!(m, m2);
        assert!(format!("{m:?}").contains("lab"));
    }
}
