//! Statistics used by the evaluation: means and medians with 95% confidence
//! intervals and inter-quartile-range outlier removal (Section VI-B/VI-C of
//! the paper).

/// Arithmetic mean of a sample (0 for an empty sample).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Unbiased sample standard deviation (0 for fewer than two values).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Quantile with linear interpolation, `q ∈ [0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median of a sample.
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// Inter-quartile range `Q3 − Q1`.
pub fn iqr(values: &[f64]) -> f64 {
    quantile(values, 0.75) - quantile(values, 0.25)
}

/// Removes outliers beyond 1.5 inter-quartile ranges from the first and third
/// quartile, as done before every mean/CI reported in the paper.
pub fn remove_outliers(values: &[f64]) -> Vec<f64> {
    if values.len() < 4 {
        return values.to_vec();
    }
    let q1 = quantile(values, 0.25);
    let q3 = quantile(values, 0.75);
    let range = q3 - q1;
    let lo = q1 - 1.5 * range;
    let hi = q3 + 1.5 * range;
    values
        .iter()
        .copied()
        .filter(|&v| v >= lo && v <= hi)
        .collect()
}

/// Half width of the 95% confidence interval of the mean (normal
/// approximation).
pub fn ci95_mean(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    1.96 * std_dev(values) / (values.len() as f64).sqrt()
}

/// Half width of the 95% confidence interval of the median using the
/// Gaussian-based asymptotic approximation (the "notch" formula
/// `1.57 · IQR / √n` referenced in Section VI-C).
pub fn ci95_median(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    1.57 * iqr(values) / (values.len() as f64).sqrt()
}

/// Summary statistics of one sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of retained observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Half width of the 95% CI of the mean.
    pub mean_ci95: f64,
    /// Median.
    pub median: f64,
    /// Half width of the 95% CI of the median (notch approximation).
    pub median_ci95: f64,
    /// Smallest retained observation.
    pub min: f64,
    /// Largest retained observation.
    pub max: f64,
}

impl Summary {
    /// Summarises a sample without any filtering.
    pub fn of(values: &[f64]) -> Self {
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n: values.len(),
            mean: mean(values),
            mean_ci95: ci95_mean(values),
            median: median(values),
            median_ci95: ci95_median(values),
            min: if values.is_empty() { 0.0 } else { min },
            max: if values.is_empty() { 0.0 } else { max },
        }
    }

    /// Summarises a sample after IQR outlier removal (the paper's procedure).
    pub fn of_filtered(values: &[f64]) -> Self {
        Self::of(&remove_outliers(values))
    }

    /// Whether the 95% CIs of the medians of two summaries overlap; when they
    /// do not, the paper treats the difference as statistically significant.
    pub fn median_ci_overlaps(&self, other: &Summary) -> bool {
        let (a_lo, a_hi) = (
            self.median - self.median_ci95,
            self.median + self.median_ci95,
        );
        let (b_lo, b_hi) = (
            other.median - other.median_ci95,
            other.median + other.median_ci95,
        );
        a_lo <= b_hi && b_lo <= a_hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_median_basic() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&v) - 2.5).abs() < 1e-12);
        assert!((median(&v) - 2.5).abs() < 1e-12);
        assert!((median(&[1.0, 2.0, 10.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [0.0, 10.0];
        assert!((quantile(&v, 0.25) - 2.5).abs() < 1e-12);
        assert!((quantile(&v, 1.0) - 10.0).abs() < 1e-12);
        assert!((quantile(&v, 0.0) - 0.0).abs() < 1e-12);
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert!((quantile(&v, 0.5) - 3.0).abs() < 1e-12);
        assert!((iqr(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn std_dev_known_value() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&v) - 2.138089935299395).abs() < 1e-9);
        assert_eq!(std_dev(&[3.0]), 0.0);
    }

    #[test]
    fn outlier_removal_drops_spikes() {
        let mut v = vec![1.0; 20];
        v.push(100.0);
        let filtered = remove_outliers(&v);
        assert_eq!(filtered.len(), 20);
        assert!(filtered.iter().all(|&x| x == 1.0));
        // small samples are passed through unchanged
        assert_eq!(remove_outliers(&[1.0, 100.0]), vec![1.0, 100.0]);
    }

    #[test]
    fn confidence_intervals_shrink_with_sample_size() {
        let small: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(ci95_mean(&large) < ci95_mean(&small));
        assert!(ci95_median(&large) < ci95_median(&small));
        assert_eq!(ci95_mean(&[1.0]), 0.0);
        assert_eq!(ci95_median(&[1.0]), 0.0);
    }

    #[test]
    fn summary_reports_consistent_fields() {
        let v = [3.0, 1.0, 2.0, 4.0, 5.0, 50.0];
        let s = Summary::of(&v);
        assert_eq!(s.n, 6);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 50.0);
        let f = Summary::of_filtered(&v);
        assert_eq!(f.n, 5);
        assert_eq!(f.max, 5.0);
        assert!(f.mean < s.mean);
    }

    #[test]
    fn median_ci_overlap_detection() {
        let a = Summary::of(&[1.0, 1.1, 0.9, 1.05, 0.95]);
        let b = Summary::of(&[5.0, 5.1, 4.9, 5.05, 4.95]);
        assert!(!a.median_ci_overlaps(&b));
        assert!(a.median_ci_overlaps(&a));
        let c = Summary::of(&[1.0, 1.2, 0.8, 1.1, 0.9]);
        assert!(a.median_ci_overlaps(&c));
    }

    proptest! {
        #[test]
        fn prop_outlier_removal_is_subset_and_bounded(
            values in proptest::collection::vec(0.0f64..1000.0, 4..60)
        ) {
            let filtered = remove_outliers(&values);
            prop_assert!(filtered.len() <= values.len());
            prop_assert!(!filtered.is_empty());
            // medians are robust: the median survives outlier removal closely
            let m1 = median(&values);
            let m2 = median(&filtered);
            prop_assert!(quantile(&values, 0.25) <= m1 + 1e-9);
            prop_assert!(m2 >= values.iter().cloned().fold(f64::INFINITY, f64::min) - 1e-9);
        }

        #[test]
        fn prop_mean_between_min_and_max(
            values in proptest::collection::vec(-50.0f64..50.0, 1..40)
        ) {
            let m = mean(&values);
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    }
}
