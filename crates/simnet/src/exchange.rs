//! Analytic cost model for an `MPI_Neighbor_alltoall` exchange under a given
//! process-to-node mapping.
//!
//! For a message size `m` (bytes sent to every stencil neighbor), the
//! completion time of the synchronised exchange is dominated by the slowest
//! resource:
//!
//! * **node NIC** — every compute node must move
//!   `egress_bytes = (off-node out-edges) · m` out and the analogous amount
//!   in; the per-node time is
//!   `base + inter_msg_overhead · msgs + max(egress, ingress) / node_bw`,
//! * **intra-node memory** — the on-node neighbor traffic of the node's
//!   processes flows through shared memory,
//! * **fat-tree core** — traffic between nodes on different leaf switches
//!   shares the oversubscribed uplinks.
//!
//! The operation time is the maximum over all nodes and the core, because the
//! paper synchronises every repetition with a barrier and records the slowest
//! process.  This directly ties the simulated time to the paper's `Jmax`
//! metric (bottleneck node) with a secondary dependence on `Jsum` (core
//! traffic), which is exactly the relationship the measurements exhibit.

use crate::machine::Machine;
use stencil_grid::CartGraph;
use stencil_mapping::metrics::node_traffic;
use stencil_mapping::Mapping;

/// Per-node traffic characterisation of one exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeLoad {
    /// Outgoing off-node messages (directed edges leaving the node).
    pub egress_msgs: u64,
    /// Incoming off-node messages.
    pub ingress_msgs: u64,
    /// Intra-node messages (both endpoints on this node).
    pub intra_msgs: u64,
}

/// Breakdown of the simulated exchange time.
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeBreakdown {
    /// Time of the slowest node's NIC component in seconds.
    pub inter_node: f64,
    /// Time of the slowest node's intra-node component in seconds.
    pub intra_node: f64,
    /// Time of the most loaded fat-tree uplink in seconds.
    pub core: f64,
    /// Constant per-operation latency in seconds.
    pub base: f64,
    /// The resulting operation time in seconds.
    pub total: f64,
}

/// The analytic exchange model for one machine.
#[derive(Debug, Clone)]
pub struct ExchangeModel {
    machine: Machine,
}

impl ExchangeModel {
    /// Creates the model for a machine.
    pub fn new(machine: &Machine) -> Self {
        ExchangeModel {
            machine: machine.clone(),
        }
    }

    /// The machine this model simulates.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Computes the per-node communication loads of an exchange.
    pub fn node_loads(&self, graph: &CartGraph, mapping: &Mapping) -> Vec<NodeLoad> {
        let n_nodes = mapping.num_nodes();
        let mut loads = vec![
            NodeLoad {
                egress_msgs: 0,
                ingress_msgs: 0,
                intra_msgs: 0
            };
            n_nodes
        ];
        for u in 0..graph.num_vertices() {
            let nu = mapping.node_of_position(u);
            for &v in graph.neighbors(u) {
                let nv = mapping.node_of_position(v as usize);
                if nu == nv {
                    loads[nu].intra_msgs += 1;
                } else {
                    loads[nu].egress_msgs += 1;
                    loads[nv].ingress_msgs += 1;
                }
            }
        }
        loads
    }

    /// Simulates one `MPI_Neighbor_alltoall` with `message_size` bytes per
    /// neighbor and returns the detailed time breakdown.
    pub fn exchange_breakdown(
        &self,
        graph: &CartGraph,
        mapping: &Mapping,
        message_size: usize,
    ) -> ExchangeBreakdown {
        let m = message_size as f64;
        let mach = &self.machine;
        let loads = self.node_loads(graph, mapping);

        let mut inter_node: f64 = 0.0;
        let mut intra_node: f64 = 0.0;
        for l in &loads {
            let bytes_out = l.egress_msgs as f64 * m;
            let bytes_in = l.ingress_msgs as f64 * m;
            let msgs = l.egress_msgs.max(l.ingress_msgs) as f64;
            let t_inter =
                mach.inter_msg_overhead * msgs + bytes_out.max(bytes_in) / mach.node_bandwidth;
            let t_intra = mach.intra_msg_overhead * l.intra_msgs as f64
                + l.intra_msgs as f64 * m / mach.intra_bandwidth;
            inter_node = inter_node.max(t_inter);
            intra_node = intra_node.max(t_intra);
        }

        // fat-tree core contention from the inter-node traffic matrix
        let traffic = node_traffic(graph, mapping)
            .into_iter()
            .map(|t| (t.from, t.to, t.edges as f64 * m));
        let core = mach
            .fat_tree
            .core_time(mapping.num_nodes(), mach.node_bandwidth, traffic);

        let base = mach.base_latency;
        let total = base + inter_node.max(intra_node).max(core);
        ExchangeBreakdown {
            inter_node,
            intra_node,
            core,
            base,
            total,
        }
    }

    /// Simulated exchange time in seconds.
    pub fn exchange_time(&self, graph: &CartGraph, mapping: &Mapping, message_size: usize) -> f64 {
        self.exchange_breakdown(graph, mapping, message_size).total
    }

    /// Simulated exchange times for a list of message sizes.
    pub fn exchange_times(
        &self,
        graph: &CartGraph,
        mapping: &Mapping,
        message_sizes: &[usize],
    ) -> Vec<f64> {
        message_sizes
            .iter()
            .map(|&s| self.exchange_time(graph, mapping, s))
            .collect()
    }

    /// Speedup of `mapping` over `reference` for every message size
    /// (the quantity plotted in Figures 6 and 7).
    pub fn speedup_over(
        &self,
        graph: &CartGraph,
        mapping: &Mapping,
        reference: &Mapping,
        message_sizes: &[usize],
    ) -> Vec<f64> {
        message_sizes
            .iter()
            .map(|&s| {
                self.exchange_time(graph, reference, s) / self.exchange_time(graph, mapping, s)
            })
            .collect()
    }
}

/// The message sizes of the speedup plots in Figures 6 and 7 (1 KiB – 4 MiB).
pub fn figure_message_sizes() -> Vec<usize> {
    (10..=22).step_by(2).map(|e| 1usize << e).collect()
}

/// The message sizes of the appendix tables (64 B – 512 KiB).
pub fn table_message_sizes() -> Vec<usize> {
    (6..=19).map(|e| 1usize << e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stencil_grid::{Dims, NodeAllocation, Stencil};
    use stencil_mapping::baselines::{Blocked, RandomMapping};
    use stencil_mapping::hyperplane::Hyperplane;
    use stencil_mapping::stencil_strips::StencilStrips;
    use stencil_mapping::{Mapper, MappingProblem};

    fn headline() -> (MappingProblem, CartGraph) {
        let p = MappingProblem::new(
            Dims::from_slice(&[50, 48]),
            Stencil::nearest_neighbor(2),
            NodeAllocation::homogeneous(50, 48),
        )
        .unwrap();
        let g = CartGraph::build(p.dims(), p.stencil(), false);
        (p, g)
    }

    #[test]
    fn node_loads_match_metrics() {
        let (p, g) = headline();
        let model = ExchangeModel::new(&Machine::vsc4());
        let m = Blocked.compute(&p).unwrap();
        let loads = model.node_loads(&g, &m);
        let cost = stencil_mapping::metrics::evaluate(&g, &m);
        let egress: u64 = loads.iter().map(|l| l.egress_msgs).sum();
        let ingress: u64 = loads.iter().map(|l| l.ingress_msgs).sum();
        assert_eq!(egress, cost.j_sum);
        assert_eq!(ingress, cost.j_sum);
        let max_egress = loads.iter().map(|l| l.egress_msgs).max().unwrap();
        assert_eq!(max_egress, cost.j_max);
        // every directed edge is either intra or inter
        let intra: u64 = loads.iter().map(|l| l.intra_msgs).sum();
        assert_eq!(intra + egress, g.num_directed_edges() as u64);
    }

    #[test]
    fn better_mappings_are_faster_at_large_messages() {
        let (p, g) = headline();
        let model = ExchangeModel::new(&Machine::vsc4());
        let blocked = Blocked.compute(&p).unwrap();
        let hp = Hyperplane::default().compute(&p).unwrap();
        let ss = StencilStrips.compute(&p).unwrap();
        let rnd = RandomMapping::with_seed(1).compute(&p).unwrap();
        let m = 1 << 19;
        let t_blocked = model.exchange_time(&g, &blocked, m);
        let t_hp = model.exchange_time(&g, &hp, m);
        let t_ss = model.exchange_time(&g, &ss, m);
        let t_rnd = model.exchange_time(&g, &rnd, m);
        assert!(t_hp < t_blocked);
        assert!(t_ss < t_blocked);
        assert!(t_rnd > t_blocked, "random must be the slowest mapping");
        // Paper Fig. 6: speedups between roughly 2x and 4x on VSC4.
        let speedup = t_blocked / t_ss;
        assert!(speedup > 1.5 && speedup < 6.0, "speedup = {speedup}");
    }

    #[test]
    fn simulated_times_are_in_the_papers_order_of_magnitude() {
        // Table II: blocked, 512 KiB, nearest neighbor on VSC4: ~64 ms.
        let (p, g) = headline();
        let model = ExchangeModel::new(&Machine::vsc4());
        let blocked = Blocked.compute(&p).unwrap();
        let t = model.exchange_time(&g, &blocked, 1 << 19);
        assert!(t > 0.02 && t < 0.2, "t = {t}");
        // 64-byte messages are latency bound: tens of microseconds.
        let t_small = model.exchange_time(&g, &blocked, 64);
        assert!(t_small > 1e-6 && t_small < 1e-3, "t_small = {t_small}");
    }

    #[test]
    fn small_messages_are_latency_dominated() {
        let (p, g) = headline();
        let model = ExchangeModel::new(&Machine::vsc4());
        let blocked = Blocked.compute(&p).unwrap();
        let b = model.exchange_breakdown(&g, &blocked, 64);
        // bandwidth terms are negligible for 64-byte messages
        assert!(b.total < 1e-3);
        let big = model.exchange_breakdown(&g, &blocked, 1 << 22);
        assert!(big.total > 100.0 * b.total);
        assert!(big.inter_node > big.intra_node);
        assert!(b.total >= b.base);
    }

    #[test]
    fn time_is_monotone_in_message_size_and_jmax() {
        let (p, g) = headline();
        let model = ExchangeModel::new(&Machine::supermuc_ng());
        let blocked = Blocked.compute(&p).unwrap();
        let sizes = figure_message_sizes();
        let times = model.exchange_times(&g, &blocked, &sizes);
        for w in times.windows(2) {
            assert!(w[1] >= w[0], "time must grow with message size");
        }
    }

    #[test]
    fn speedup_over_blocked_matches_ratio() {
        let (p, g) = headline();
        let model = ExchangeModel::new(&Machine::juwels());
        let blocked = Blocked.compute(&p).unwrap();
        let hp = Hyperplane::default().compute(&p).unwrap();
        let sizes = vec![1 << 12, 1 << 19];
        let speedups = model.speedup_over(&g, &hp, &blocked, &sizes);
        for (i, &s) in sizes.iter().enumerate() {
            let expect = model.exchange_time(&g, &blocked, s) / model.exchange_time(&g, &hp, s);
            assert!((speedups[i] - expect).abs() < 1e-12);
            assert!(speedups[i] >= 1.0);
        }
    }

    #[test]
    fn message_size_lists_match_paper() {
        let fig = figure_message_sizes();
        assert_eq!(fig.first(), Some(&1024));
        assert_eq!(fig.last(), Some(&4194304));
        assert_eq!(fig.len(), 7);
        let tab = table_message_sizes();
        assert_eq!(tab.first(), Some(&64));
        assert_eq!(tab.last(), Some(&524288));
        assert_eq!(tab.len(), 14);
    }

    #[test]
    fn component_stencil_reaches_large_speedups() {
        // Fig. 6 bottom: optimal mappings of the component stencil are up to
        // an order of magnitude faster than blocked.
        let p = MappingProblem::new(
            Dims::from_slice(&[50, 48]),
            Stencil::component(2),
            NodeAllocation::homogeneous(50, 48),
        )
        .unwrap();
        let g = CartGraph::build(p.dims(), p.stencil(), false);
        let model = ExchangeModel::new(&Machine::vsc4());
        let blocked = Blocked.compute(&p).unwrap();
        let ss = StencilStrips.compute(&p).unwrap();
        let speedup =
            model.exchange_time(&g, &blocked, 1 << 19) / model.exchange_time(&g, &ss, 1 << 19);
        assert!(speedup > 3.0, "speedup = {speedup}");
    }
}
