//! # cluster-sim
//!
//! Machine and network models used to *simulate* the communication
//! experiments of *"Efficient Process-to-Node Mapping Algorithms for Stencil
//! Computations"* (Hunold et al., CLUSTER 2020).
//!
//! The paper measures the time of an `MPI_Neighbor_alltoall` exchange on
//! three production systems (VSC4, SuperMUC-NG and JUWELS).  This repository
//! has no access to those machines, so the crate substitutes an analytic cost
//! model that preserves the mechanism the paper exploits:
//!
//! * intra-node communication is much faster than inter-node communication,
//! * every compute node's NIC egress/ingress is the scarce resource, so the
//!   *bottleneck node* (`Jmax` of the mapping) dominates the exchange time,
//! * the two-level fat-tree core adds contention when traffic has to leave a
//!   leaf switch (blocking/pruning factors of the three machines),
//! * small messages are dominated by per-message overheads.
//!
//! The crate also provides the statistical machinery of Section VI-B
//! (repeated measurements, inter-quartile outlier removal, means/medians with
//! 95% confidence intervals) so that the benchmark harness can produce the
//! same tables and figures as the paper.
//!
//! ```
//! use stencil_grid::{Dims, Stencil, NodeAllocation, CartGraph};
//! use stencil_mapping::{MappingProblem, Mapper, baselines::Blocked, hyperplane::Hyperplane};
//! use cluster_sim::{Machine, ExchangeModel};
//!
//! let problem = MappingProblem::new(
//!     Dims::from_slice(&[50, 48]),
//!     Stencil::nearest_neighbor(2),
//!     NodeAllocation::homogeneous(50, 48),
//! ).unwrap();
//! let graph = CartGraph::build(problem.dims(), problem.stencil(), false);
//! let machine = Machine::vsc4();
//! let model = ExchangeModel::new(&machine);
//!
//! let blocked = model.exchange_time(&graph, &Blocked.compute(&problem).unwrap(), 1 << 19);
//! let reordered = model.exchange_time(&graph, &Hyperplane::default().compute(&problem).unwrap(), 1 << 19);
//! assert!(reordered < blocked);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod exchange;
pub mod machine;
pub mod measurement;
pub mod stats;
pub mod topology;

pub use exchange::ExchangeModel;
pub use machine::Machine;
pub use measurement::{MeasuredExchange, Measurement};
pub use stats::Summary;
pub use topology::FatTree;
