//! Two-level fat-tree interconnect model.
//!
//! All three machines of the paper connect their nodes through a two-level
//! fat tree: leaf switches connect a fixed number of nodes and are linked to
//! the core through uplinks whose aggregate capacity is *oversubscribed*
//! (blocking factor 2:1 on VSC4 and JUWELS, island pruning 1:4 on
//! SuperMUC-NG).  Traffic between nodes attached to the same leaf switch only
//! uses the switch; traffic between different leaf switches competes for the
//! uplinks.

/// A two-level fat tree described by its leaf-switch radix and the
/// oversubscription (blocking/pruning) factor of the uplinks.
#[derive(Debug, Clone, PartialEq)]
pub struct FatTree {
    /// Number of compute nodes attached to one leaf switch.
    pub nodes_per_switch: usize,
    /// Oversubscription factor of the uplinks (1.0 = non-blocking,
    /// 2.0 = half the injection bandwidth is available towards the core, …).
    pub oversubscription: f64,
}

impl FatTree {
    /// Creates a fat tree model.
    pub fn new(nodes_per_switch: usize, oversubscription: f64) -> Self {
        assert!(nodes_per_switch > 0, "a switch connects at least one node");
        assert!(
            oversubscription >= 1.0,
            "oversubscription factor must be >= 1"
        );
        FatTree {
            nodes_per_switch,
            oversubscription,
        }
    }

    /// The leaf switch a node is attached to (nodes are cabled consecutively,
    /// which matches how schedulers allocate contiguous node ranges).
    #[inline]
    pub fn switch_of_node(&self, node: usize) -> usize {
        node / self.nodes_per_switch
    }

    /// Number of leaf switches needed for `num_nodes` nodes.
    pub fn num_switches(&self, num_nodes: usize) -> usize {
        num_nodes.div_ceil(self.nodes_per_switch)
    }

    /// Aggregate uplink bandwidth of one leaf switch, given the per-node NIC
    /// bandwidth.
    pub fn uplink_bandwidth(&self, node_bandwidth: f64) -> f64 {
        self.nodes_per_switch as f64 * node_bandwidth / self.oversubscription
    }

    /// Computes the per-switch uplink traffic (bytes crossing from each leaf
    /// switch towards the core, i.e. towards nodes on other switches) from a
    /// sparse inter-node traffic matrix given in bytes.
    ///
    /// Returns one entry per leaf switch.
    pub fn uplink_traffic(
        &self,
        num_nodes: usize,
        traffic: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Vec<f64> {
        let mut load = vec![0.0f64; self.num_switches(num_nodes)];
        for (from, to, bytes) in traffic {
            let sf = self.switch_of_node(from);
            let st = self.switch_of_node(to);
            if sf != st {
                load[sf] += bytes;
            }
        }
        load
    }

    /// The time the core network needs to carry the given inter-node traffic:
    /// the most loaded leaf uplink divided by its bandwidth.
    pub fn core_time(
        &self,
        num_nodes: usize,
        node_bandwidth: f64,
        traffic: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> f64 {
        let loads = self.uplink_traffic(num_nodes, traffic);
        let max_load = loads.iter().copied().fold(0.0f64, f64::max);
        max_load / self.uplink_bandwidth(node_bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn switch_assignment_is_consecutive() {
        let ft = FatTree::new(32, 2.0);
        assert_eq!(ft.switch_of_node(0), 0);
        assert_eq!(ft.switch_of_node(31), 0);
        assert_eq!(ft.switch_of_node(32), 1);
        assert_eq!(ft.num_switches(50), 2);
        assert_eq!(ft.num_switches(100), 4);
        assert_eq!(ft.num_switches(64), 2);
    }

    #[test]
    fn uplink_bandwidth_reflects_oversubscription() {
        let non_blocking = FatTree::new(32, 1.0);
        let blocking = FatTree::new(32, 2.0);
        assert!((non_blocking.uplink_bandwidth(1e9) - 32e9).abs() < 1.0);
        assert!((blocking.uplink_bandwidth(1e9) - 16e9).abs() < 1.0);
    }

    #[test]
    fn uplink_traffic_only_counts_cross_switch_bytes() {
        let ft = FatTree::new(2, 2.0);
        // 4 nodes on 2 switches; traffic 0->1 stays local, 1->2 crosses.
        let loads = ft.uplink_traffic(4, vec![(0, 1, 100.0), (1, 2, 50.0), (3, 2, 10.0)]);
        assert_eq!(loads.len(), 2);
        assert!((loads[0] - 50.0).abs() < 1e-9);
        assert!((loads[1] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn core_time_scales_with_oversubscription() {
        let traffic = vec![(0usize, 40usize, 1e9), (40, 0, 1e9)];
        let fast = FatTree::new(32, 1.0).core_time(64, 1e9, traffic.clone());
        let slow = FatTree::new(32, 4.0).core_time(64, 1e9, traffic);
        assert!(slow > fast);
        assert!((slow / fast - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_radix() {
        FatTree::new(0, 2.0);
    }

    #[test]
    #[should_panic]
    fn rejects_sub_unity_oversubscription() {
        FatTree::new(8, 0.5);
    }

    proptest! {
        #[test]
        fn prop_local_traffic_never_loads_uplinks(
            nodes_per_switch in 1usize..16, a in 0usize..64, b in 0usize..64,
        ) {
            let ft = FatTree::new(nodes_per_switch, 2.0);
            let loads = ft.uplink_traffic(64, vec![(a, b, 123.0)]);
            let total: f64 = loads.iter().sum();
            if ft.switch_of_node(a) == ft.switch_of_node(b) {
                prop_assert!(total == 0.0);
            } else {
                prop_assert!((total - 123.0).abs() < 1e-9);
            }
        }
    }
}
