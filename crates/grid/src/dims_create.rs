//! Balanced grid factorisation in the spirit of `MPI_Dims_create`.
//!
//! The experimental evaluation of the paper creates all grids "according to
//! the `MPI_Dims_create` specifications, that is with the sizes of the
//! dimensions being as close as possible to each other".  This module
//! provides such a factorisation (searching exhaustively over divisor
//! combinations, which is cheap for realistic process counts) together with a
//! prime factorisation helper shared by the `Nodecart` and `Hyperplane`
//! algorithms.

/// Returns the prime factors of `x` in ascending order (with multiplicity).
///
/// `prime_factors(1)` and `prime_factors(0)` return an empty vector.
pub fn prime_factors(mut x: usize) -> Vec<usize> {
    let mut factors = Vec::new();
    if x < 2 {
        return factors;
    }
    let mut d = 2usize;
    while d * d <= x {
        while x.is_multiple_of(d) {
            factors.push(d);
            x /= d;
        }
        d += if d == 2 { 1 } else { 2 };
    }
    if x > 1 {
        factors.push(x);
    }
    factors
}

/// All divisors of `x` in ascending order.
pub fn divisors(x: usize) -> Vec<usize> {
    let mut small = Vec::new();
    let mut large = Vec::new();
    let mut d = 1usize;
    while d * d <= x {
        if x.is_multiple_of(d) {
            small.push(d);
            if d != x / d {
                large.push(x / d);
            }
        }
        d += 1;
    }
    large.reverse();
    small.extend(large);
    small
}

/// Computes a balanced factorisation of `nnodes` into `ndims` factors, i.e.
/// dimension sizes whose product is `nnodes` and which are as close to each
/// other as possible.  The result is sorted in non-increasing order, matching
/// the `MPI_Dims_create` convention.
///
/// The factorisation minimises the largest dimension and, among those,
/// maximises the smallest dimension.
///
/// # Panics
///
/// Panics if `nnodes == 0` or `ndims == 0`.
pub fn dims_create(nnodes: usize, ndims: usize) -> Vec<usize> {
    assert!(nnodes > 0, "nnodes must be positive");
    assert!(ndims > 0, "ndims must be positive");
    if ndims == 1 {
        return vec![nnodes];
    }
    let mut best: Option<Vec<usize>> = None;
    let mut current = Vec::with_capacity(ndims);
    search(nnodes, ndims, usize::MAX, &mut current, &mut best);
    let mut dims = best.expect("a factorisation always exists (1s are allowed)");
    dims.sort_unstable_by(|a, b| b.cmp(a));
    dims
}

/// Recursive helper: choose dimension sizes in non-increasing order.
fn search(
    remaining: usize,
    slots: usize,
    upper: usize,
    current: &mut Vec<usize>,
    best: &mut Option<Vec<usize>>,
) {
    if slots == 1 {
        if remaining <= upper {
            current.push(remaining);
            consider(current, best);
            current.pop();
        }
        return;
    }
    for d in divisors(remaining) {
        if d > upper {
            break;
        }
        // The remaining slots must be able to hold factors no larger than `d`
        // (non-increasing order); prune if even d^(slots-1) is too small.
        if pow_at_least(d, slots - 1, remaining / d) {
            current.push(d);
            search(remaining / d, slots - 1, d, current, best);
            current.pop();
        }
    }
}

/// Returns true if `base^exp >= target` without overflowing.
fn pow_at_least(base: usize, exp: usize, target: usize) -> bool {
    let mut acc: u128 = 1;
    for _ in 0..exp {
        acc = acc.saturating_mul(base as u128);
        if acc >= target as u128 {
            return true;
        }
    }
    acc >= target as u128
}

/// Keeps the better of two candidate factorisations:
/// smaller maximum first, then larger minimum, then lexicographically
/// smaller sorted-descending sequence for determinism.
fn consider(candidate: &[usize], best: &mut Option<Vec<usize>>) {
    let mut cand = candidate.to_vec();
    cand.sort_unstable_by(|a, b| b.cmp(a));
    let better = match best {
        None => true,
        Some(b) => {
            let (cmax, cmin) = (cand[0], *cand.last().unwrap());
            let (bmax, bmin) = (b[0], *b.last().unwrap());
            (cmax, std::cmp::Reverse(cmin), &cand) < (bmax, std::cmp::Reverse(bmin), b)
        }
    };
    if better {
        *best = Some(cand);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn prime_factors_basic() {
        assert_eq!(prime_factors(0), Vec::<usize>::new());
        assert_eq!(prime_factors(1), Vec::<usize>::new());
        assert_eq!(prime_factors(2), vec![2]);
        assert_eq!(prime_factors(48), vec![2, 2, 2, 2, 3]);
        assert_eq!(prime_factors(97), vec![97]);
        assert_eq!(prime_factors(2400), vec![2, 2, 2, 2, 2, 3, 5, 5]);
    }

    #[test]
    fn divisors_basic() {
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(49), vec![1, 7, 49]);
    }

    #[test]
    fn dims_create_matches_paper_instances() {
        // N = 50 nodes x 48 procs = 2400 processes -> 50 x 48 grid
        assert_eq!(dims_create(2400, 2), vec![50, 48]);
        // N = 100 nodes x 48 procs = 4800 processes -> 75 x 64 grid
        assert_eq!(dims_create(4800, 2), vec![75, 64]);
    }

    #[test]
    fn dims_create_simple_cases() {
        assert_eq!(dims_create(12, 1), vec![12]);
        assert_eq!(dims_create(12, 2), vec![4, 3]);
        assert_eq!(dims_create(12, 3), vec![3, 2, 2]);
        assert_eq!(dims_create(16, 2), vec![4, 4]);
        assert_eq!(dims_create(16, 4), vec![2, 2, 2, 2]);
        assert_eq!(dims_create(7, 2), vec![7, 1]);
        assert_eq!(dims_create(1, 3), vec![1, 1, 1]);
    }

    #[test]
    fn dims_create_prefers_balance_over_greedy() {
        // 4800 = 80 * 60 = 75 * 64; 75x64 is more balanced.
        assert_eq!(dims_create(4800, 2), vec![75, 64]);
        // 36 = 6*6 not 9*4 or 12*3
        assert_eq!(dims_create(36, 2), vec![6, 6]);
        // 96 three ways: best is 6,4,4
        assert_eq!(dims_create(96, 3), vec![6, 4, 4]);
    }

    #[test]
    #[should_panic]
    fn dims_create_rejects_zero_nodes() {
        dims_create(0, 2);
    }

    #[test]
    #[should_panic]
    fn dims_create_rejects_zero_dims() {
        dims_create(8, 0);
    }

    proptest! {
        #[test]
        fn prop_product_preserved(n in 1usize..3000, d in 1usize..4) {
            let dims = dims_create(n, d);
            prop_assert_eq!(dims.len(), d);
            prop_assert_eq!(dims.iter().product::<usize>(), n);
        }

        #[test]
        fn prop_non_increasing(n in 1usize..3000, d in 1usize..5) {
            let dims = dims_create(n, d);
            for w in dims.windows(2) {
                prop_assert!(w[0] >= w[1]);
            }
        }

        #[test]
        fn prop_prime_factors_multiply_back(n in 2usize..10_000) {
            let f = prime_factors(n);
            prop_assert_eq!(f.iter().product::<usize>(), n);
            // all factors are prime
            for &x in &f {
                prop_assert!(prime_factors(x).len() == 1);
            }
        }

        #[test]
        fn prop_divisors_divide(n in 1usize..5_000) {
            for d in divisors(n) {
                prop_assert_eq!(n % d, 0);
            }
        }
    }
}
