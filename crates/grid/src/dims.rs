//! Dimension sizes of a Cartesian process grid.

use crate::coords::{coord_to_rank, rank_to_coord, Coord};
use crate::GridError;

/// The dimension sizes `D = [d_0, …, d_{d-1}]` of a Cartesian process grid.
///
/// The grid comprises `p = Π d_i` processes.  Processes are assigned to grid
/// positions in row-major order (the last dimension varies fastest), exactly
/// as in the paper (Section II) and in MPI Cartesian communicators.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Dims {
    sizes: Vec<usize>,
}

impl Dims {
    /// Creates a new set of dimension sizes.
    ///
    /// Returns an error if `sizes` is empty or contains a zero.
    pub fn new(sizes: Vec<usize>) -> Result<Self, GridError> {
        if sizes.is_empty() {
            return Err(GridError::EmptyDims);
        }
        if sizes.contains(&0) {
            return Err(GridError::ZeroDimension);
        }
        Ok(Dims { sizes })
    }

    /// Creates dimension sizes without validation. Panics on invalid input.
    ///
    /// Convenience for tests and literals where validity is obvious.
    pub fn from_slice(sizes: &[usize]) -> Self {
        Self::new(sizes.to_vec()).expect("invalid dimension sizes")
    }

    /// Number of dimensions `d`.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.sizes.len()
    }

    /// The size of dimension `i`.
    #[inline]
    pub fn size(&self, i: usize) -> usize {
        self.sizes[i]
    }

    /// The dimension sizes as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.sizes
    }

    /// Total number of grid cells (processes) `p = Π d_i`.
    #[inline]
    pub fn volume(&self) -> usize {
        self.sizes.iter().product()
    }

    /// Index of the largest dimension (first one on ties).
    pub fn largest_dim(&self) -> usize {
        let mut best = 0;
        for (i, &d) in self.sizes.iter().enumerate() {
            if d > self.sizes[best] {
                best = i;
            }
        }
        let _ = best;
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &d)| (d, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Returns a copy with dimension `dim` replaced by `new_size`.
    pub fn with_dim(&self, dim: usize, new_size: usize) -> Self {
        let mut sizes = self.sizes.clone();
        sizes[dim] = new_size;
        Dims { sizes }
    }

    /// Converts a row-major rank to its grid coordinate.
    #[inline]
    pub fn coord_of(&self, rank: usize) -> Coord {
        rank_to_coord(rank, &self.sizes)
    }

    /// Converts a grid coordinate to its row-major rank.
    #[inline]
    pub fn rank_of(&self, coord: &[usize]) -> usize {
        coord_to_rank(coord, &self.sizes)
    }

    /// Checks whether a coordinate lies inside the grid.
    pub fn contains(&self, coord: &[usize]) -> bool {
        coord.len() == self.ndims() && coord.iter().zip(&self.sizes).all(|(&c, &d)| c < d)
    }

    /// Iterates over all grid coordinates in row-major (rank) order.
    pub fn iter_coords(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.volume()).map(move |r| self.coord_of(r))
    }

    /// Applies a (possibly negative) offset to a coordinate.
    ///
    /// Returns the target coordinate or `None` if the target falls outside of
    /// the grid.  When `periodic` is `true`, coordinates wrap around in every
    /// dimension (torus).
    pub fn offset_coord(&self, coord: &[usize], offset: &[i64], periodic: bool) -> Option<Coord> {
        debug_assert_eq!(coord.len(), self.ndims());
        debug_assert_eq!(offset.len(), self.ndims());
        let mut out = Vec::with_capacity(self.ndims());
        for i in 0..self.ndims() {
            let d = self.sizes[i] as i64;
            let t = coord[i] as i64 + offset[i];
            if periodic {
                out.push(t.rem_euclid(d) as usize);
            } else if t < 0 || t >= d {
                return None;
            } else {
                out.push(t as usize);
            }
        }
        Some(out)
    }

    /// The row-major rank of `coord + offset`, or `None` if the target falls
    /// outside of the grid (non-periodic case).
    ///
    /// This is the allocation-free fusion of [`Dims::offset_coord`] and
    /// [`Dims::rank_of`] used by the streaming metrics evaluator and the
    /// parallel graph builder: the target rank is accumulated directly, so no
    /// intermediate coordinate vector is materialised.
    #[inline]
    pub fn rank_after_offset(
        &self,
        coord: &[usize],
        offset: &[i64],
        periodic: bool,
    ) -> Option<usize> {
        debug_assert_eq!(coord.len(), self.ndims());
        debug_assert_eq!(offset.len(), self.ndims());
        let mut rank = 0usize;
        for i in 0..self.ndims() {
            let d = self.sizes[i] as i64;
            let t = coord[i] as i64 + offset[i];
            let t = if periodic {
                t.rem_euclid(d)
            } else if t < 0 || t >= d {
                return None;
            } else {
                t
            };
            rank = rank * self.sizes[i] + t as usize;
        }
        Some(rank)
    }
}

impl std::fmt::Display for Dims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.sizes.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl std::ops::Index<usize> for Dims {
    type Output = usize;
    fn index(&self, i: usize) -> &usize {
        &self.sizes[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_rejects_invalid() {
        assert_eq!(Dims::new(vec![]), Err(GridError::EmptyDims));
        assert_eq!(Dims::new(vec![4, 0]), Err(GridError::ZeroDimension));
        assert!(Dims::new(vec![4, 3]).is_ok());
    }

    #[test]
    fn volume_and_sizes() {
        let d = Dims::from_slice(&[50, 48]);
        assert_eq!(d.volume(), 2400);
        assert_eq!(d.ndims(), 2);
        assert_eq!(d.size(0), 50);
        assert_eq!(d[1], 48);
        assert_eq!(d.as_slice(), &[50, 48]);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Dims::from_slice(&[4, 3, 2]).to_string(), "[4x3x2]");
    }

    #[test]
    fn largest_dim_prefers_first_on_tie() {
        assert_eq!(Dims::from_slice(&[4, 4, 2]).largest_dim(), 0);
        assert_eq!(Dims::from_slice(&[2, 8, 4]).largest_dim(), 1);
        assert_eq!(Dims::from_slice(&[7]).largest_dim(), 0);
    }

    #[test]
    fn rank_coord_roundtrip_row_major() {
        let d = Dims::from_slice(&[5, 4]);
        // row-major: rank = r0 * 4 + r1
        assert_eq!(d.coord_of(0), vec![0, 0]);
        assert_eq!(d.coord_of(1), vec![0, 1]);
        assert_eq!(d.coord_of(4), vec![1, 0]);
        assert_eq!(d.rank_of(&[1, 0]), 4);
        assert_eq!(d.rank_of(&[4, 3]), 19);
        for r in 0..d.volume() {
            assert_eq!(d.rank_of(&d.coord_of(r)), r);
        }
    }

    #[test]
    fn with_dim_replaces_size() {
        let d = Dims::from_slice(&[5, 4]);
        assert_eq!(d.with_dim(0, 2).as_slice(), &[2, 4]);
        assert_eq!(d.with_dim(1, 7).as_slice(), &[5, 7]);
    }

    #[test]
    fn contains_checks_bounds() {
        let d = Dims::from_slice(&[3, 3]);
        assert!(d.contains(&[0, 0]));
        assert!(d.contains(&[2, 2]));
        assert!(!d.contains(&[3, 0]));
        assert!(!d.contains(&[0, 3]));
        assert!(!d.contains(&[0]));
    }

    #[test]
    fn offset_coord_non_periodic() {
        let d = Dims::from_slice(&[3, 3]);
        assert_eq!(d.offset_coord(&[1, 1], &[1, 0], false), Some(vec![2, 1]));
        assert_eq!(d.offset_coord(&[2, 1], &[1, 0], false), None);
        assert_eq!(d.offset_coord(&[0, 0], &[-1, 0], false), None);
    }

    #[test]
    fn rank_after_offset_matches_offset_coord() {
        let d = Dims::from_slice(&[4, 3, 2]);
        let offsets: [[i64; 3]; 5] = [[1, 0, 0], [-1, 0, 0], [0, -2, 1], [3, 2, -1], [-7, 9, 4]];
        for periodic in [false, true] {
            for r in 0..d.volume() {
                let c = d.coord_of(r);
                for off in &offsets {
                    let expected = d.offset_coord(&c, off, periodic).map(|t| d.rank_of(&t));
                    assert_eq!(d.rank_after_offset(&c, off, periodic), expected);
                }
            }
        }
    }

    #[test]
    fn offset_coord_periodic_wraps() {
        let d = Dims::from_slice(&[3, 4]);
        assert_eq!(d.offset_coord(&[2, 3], &[1, 1], true), Some(vec![0, 0]));
        assert_eq!(d.offset_coord(&[0, 0], &[-1, -1], true), Some(vec![2, 3]));
        assert_eq!(d.offset_coord(&[0, 0], &[-7, 9], true), Some(vec![2, 1]));
    }

    #[test]
    fn iter_coords_is_rank_ordered() {
        let d = Dims::from_slice(&[2, 3]);
        let coords: Vec<_> = d.iter_coords().collect();
        assert_eq!(coords.len(), 6);
        assert_eq!(coords[0], vec![0, 0]);
        assert_eq!(coords[5], vec![1, 2]);
        for (r, c) in coords.iter().enumerate() {
            assert_eq!(d.rank_of(c), r);
        }
    }

    proptest! {
        #[test]
        fn prop_rank_coord_roundtrip(sizes in proptest::collection::vec(1usize..8, 1..4), extra in 0usize..1000) {
            let d = Dims::new(sizes).unwrap();
            let r = extra % d.volume();
            let c = d.coord_of(r);
            prop_assert!(d.contains(&c));
            prop_assert_eq!(d.rank_of(&c), r);
        }

        #[test]
        fn prop_periodic_offset_stays_in_grid(
            sizes in proptest::collection::vec(1usize..7, 1..4),
            seed in 0usize..10_000,
            offs in proptest::collection::vec(-5i64..5, 1..4)
        ) {
            let d = Dims::new(sizes).unwrap();
            let r = seed % d.volume();
            let c = d.coord_of(r);
            let mut off = offs;
            off.resize(d.ndims(), 0);
            let t = d.offset_coord(&c, &off, true).unwrap();
            prop_assert!(d.contains(&t));
        }
    }
}
