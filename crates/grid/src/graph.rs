//! The Cartesian communication graph induced by a grid and a stencil.
//!
//! Every grid cell (process) is a vertex; for every offset `R` of the stencil
//! and every vertex `v` there is a directed edge `(v, v + R)` provided the
//! target lies inside the grid (or always, when the grid is periodic).  The
//! paper assumes unit edge weights and sparse communication (`k ≪ p`).

use crate::{Dims, GridError, Stencil};
use rayon::prelude::*;

/// A sparse directed communication graph over the cells of a Cartesian grid,
/// stored in compressed sparse row (CSR) form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CartGraph {
    dims: Dims,
    periodic: bool,
    /// CSR row offsets, length `p + 1`.
    xadj: Vec<usize>,
    /// CSR column indices (neighbor ranks).
    adjncy: Vec<u32>,
}

impl CartGraph {
    /// Builds the communication graph for `dims` and `stencil`.
    ///
    /// When `periodic` is true the grid wraps around in every dimension.
    /// Out-of-grid targets are silently dropped in the non-periodic case,
    /// matching the MPI semantics of `MPI_PROC_NULL` neighbors.
    ///
    /// # Panics
    ///
    /// Panics if the stencil dimensionality does not match the grid; use
    /// [`CartGraph::try_build`] for a fallible variant.
    pub fn build(dims: &Dims, stencil: &Stencil, periodic: bool) -> Self {
        Self::try_build(dims, stencil, periodic).expect("stencil/grid dimension mismatch")
    }

    /// Fallible variant of [`CartGraph::build`].
    ///
    /// Rows are constructed in parallel: the rank range is split into
    /// contiguous chunks, every chunk builds its adjacency segment with a
    /// reused scratch coordinate (no per-rank allocation), and the segments
    /// are stitched into the final CSR arrays.  The result is identical for
    /// every thread count.
    pub fn try_build(dims: &Dims, stencil: &Stencil, periodic: bool) -> Result<Self, GridError> {
        stencil.check_dims(dims)?;
        let p = dims.volume();
        let k = stencil.k();
        let chunk_size = chunk_size_for(p);
        let num_chunks = p.div_ceil(chunk_size).max(1);

        // Per chunk: the packed adjacency segment and the degree of each rank.
        let segments: Vec<(Vec<u32>, Vec<u32>)> = (0..num_chunks)
            .into_par_iter()
            .map(|c| {
                let lo = c * chunk_size;
                let hi = ((c + 1) * chunk_size).min(p);
                let mut adj = Vec::with_capacity((hi - lo) * k);
                let mut degrees = Vec::with_capacity(hi - lo);
                let mut coord = vec![0usize; dims.ndims()];
                for rank in lo..hi {
                    crate::coords::rank_to_coord_into(rank, dims.as_slice(), &mut coord);
                    let before = adj.len();
                    for off in stencil.offsets() {
                        if let Some(t) = dims.rank_after_offset(&coord, off, periodic) {
                            if t != rank {
                                adj.push(t as u32);
                            }
                        }
                    }
                    degrees.push((adj.len() - before) as u32);
                }
                (adj, degrees)
            })
            .collect();

        let total_edges: usize = segments.iter().map(|(a, _)| a.len()).sum();
        let mut xadj = Vec::with_capacity(p + 1);
        let mut adjncy = Vec::with_capacity(total_edges);
        xadj.push(0usize);
        for (adj, degrees) in &segments {
            for &d in degrees {
                xadj.push(xadj.last().expect("non-empty") + d as usize);
            }
            adjncy.extend_from_slice(adj);
        }
        Ok(CartGraph {
            dims: dims.clone(),
            periodic,
            xadj,
            adjncy,
        })
    }

    /// The grid dimensions this graph was built from.
    #[inline]
    pub fn dims(&self) -> &Dims {
        &self.dims
    }

    /// Whether periodic (torus) boundaries were used.
    #[inline]
    pub fn periodic(&self) -> bool {
        self.periodic
    }

    /// Number of vertices `p`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Total number of directed edges.
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.adjncy.len()
    }

    /// The communication targets of vertex `v` (directed out-neighbors).
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Out-degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Maximum out-degree over all vertices.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterates over all directed edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.num_vertices())
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v as usize)))
    }

    /// Checks whether the graph is symmetric (`(u,v) ∈ E ⇒ (v,u) ∈ E`).
    ///
    /// Symmetric stencils on periodic grids always yield symmetric graphs; on
    /// non-periodic grids symmetry still holds because dropped edges are
    /// dropped in pairs.
    pub fn is_symmetric(&self) -> bool {
        self.edges()
            .all(|(u, v)| self.neighbors(v).contains(&(u as u32)))
    }

    /// The CSR row offsets (length `p + 1`).
    #[inline]
    pub fn xadj(&self) -> &[usize] {
        &self.xadj
    }

    /// The CSR adjacency array.
    #[inline]
    pub fn adjncy(&self) -> &[u32] {
        &self.adjncy
    }
}

/// Chunk size for parallel row construction: large enough to amortise thread
/// hand-off, small enough to give every worker several chunks.
fn chunk_size_for(p: usize) -> usize {
    let workers = rayon::current_num_threads();
    (p / (workers * 4).max(1))
        .clamp(1024, 1 << 16)
        .min(p.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nearest_neighbor_edge_count_2d() {
        // 50x48 grid, non-periodic nearest neighbor:
        // horizontal (dim 1) directed edges: 2 * 50 * 47 = 4700
        // vertical   (dim 0) directed edges: 2 * 48 * 49 = 4704
        let dims = Dims::from_slice(&[50, 48]);
        let g = CartGraph::build(&dims, &Stencil::nearest_neighbor(2), false);
        assert_eq!(g.num_vertices(), 2400);
        assert_eq!(g.num_directed_edges(), 4700 + 4704);
        assert_eq!(g.max_degree(), 4);
        assert!(g.is_symmetric());
    }

    #[test]
    fn periodic_grid_has_full_degree_everywhere() {
        let dims = Dims::from_slice(&[4, 5]);
        let g = CartGraph::build(&dims, &Stencil::nearest_neighbor(2), true);
        for v in 0..g.num_vertices() {
            assert_eq!(g.degree(v), 4);
        }
        assert_eq!(g.num_directed_edges(), 4 * 20);
        assert!(g.is_symmetric());
    }

    #[test]
    fn corner_vertex_degrees_non_periodic() {
        let dims = Dims::from_slice(&[3, 3]);
        let g = CartGraph::build(&dims, &Stencil::nearest_neighbor(2), false);
        // corner (0,0) has 2 neighbors, edge midpoints 3, center 4
        assert_eq!(g.degree(dims.rank_of(&[0, 0])), 2);
        assert_eq!(g.degree(dims.rank_of(&[0, 1])), 3);
        assert_eq!(g.degree(dims.rank_of(&[1, 1])), 4);
    }

    #[test]
    fn component_stencil_only_connects_along_dim0() {
        let dims = Dims::from_slice(&[4, 3]);
        let g = CartGraph::build(&dims, &Stencil::component(2), false);
        for (u, v) in g.edges() {
            let cu = dims.coord_of(u);
            let cv = dims.coord_of(v);
            assert_eq!(cu[1], cv[1], "component stencil must not cross columns");
            assert_eq!((cu[0] as i64 - cv[0] as i64).abs(), 1);
        }
        // 3 columns x 3 links x 2 directions
        assert_eq!(g.num_directed_edges(), 18);
    }

    #[test]
    fn hops_stencil_reaches_distance_three() {
        let dims = Dims::from_slice(&[8, 2]);
        let g = CartGraph::build(&dims, &Stencil::nearest_neighbor_with_hops(2), false);
        let src = dims.rank_of(&[0, 0]);
        let targets: Vec<_> = g
            .neighbors(src)
            .iter()
            .map(|&t| dims.coord_of(t as usize))
            .collect();
        assert!(targets.contains(&vec![3, 0]));
        assert!(targets.contains(&vec![2, 0]));
        assert!(targets.contains(&vec![1, 0]));
        assert!(targets.contains(&vec![0, 1]));
        assert_eq!(targets.len(), 4);
    }

    #[test]
    fn degenerate_small_grid_drops_self_wrap_duplicates() {
        // On a grid of size 1 along a periodic dimension, +1 and -1 wrap to
        // the vertex itself and must be dropped (no self loops).
        let dims = Dims::from_slice(&[1, 4]);
        let g = CartGraph::build(&dims, &Stencil::nearest_neighbor(2), true);
        for v in 0..g.num_vertices() {
            assert!(!g.neighbors(v).contains(&(v as u32)));
        }
    }

    #[test]
    fn try_build_rejects_dimension_mismatch() {
        let dims = Dims::from_slice(&[4, 4, 4]);
        assert!(CartGraph::try_build(&dims, &Stencil::nearest_neighbor(2), false).is_err());
    }

    #[test]
    fn csr_arrays_are_consistent() {
        let dims = Dims::from_slice(&[5, 4]);
        let g = CartGraph::build(&dims, &Stencil::nearest_neighbor(2), false);
        assert_eq!(g.xadj().len(), g.num_vertices() + 1);
        assert_eq!(*g.xadj().last().unwrap(), g.adjncy().len());
        assert_eq!(g.edges().count(), g.num_directed_edges());
    }

    proptest! {
        #[test]
        fn prop_symmetric_stencils_give_symmetric_graphs(
            sizes in proptest::collection::vec(1usize..6, 2..4),
            periodic in proptest::bool::ANY,
        ) {
            let dims = Dims::new(sizes).unwrap();
            let s = Stencil::nearest_neighbor(dims.ndims());
            let g = CartGraph::build(&dims, &s, periodic);
            prop_assert!(g.is_symmetric());
        }

        #[test]
        fn prop_degree_bounded_by_k(
            sizes in proptest::collection::vec(2usize..7, 2..4),
            periodic in proptest::bool::ANY,
        ) {
            let dims = Dims::new(sizes).unwrap();
            let s = Stencil::nearest_neighbor_with_hops(dims.ndims());
            let g = CartGraph::build(&dims, &s, periodic);
            for v in 0..g.num_vertices() {
                prop_assert!(g.degree(v) <= s.k());
            }
        }

        #[test]
        fn prop_edge_targets_in_range(sizes in proptest::collection::vec(1usize..6, 2..4)) {
            let dims = Dims::new(sizes).unwrap();
            let s = Stencil::nearest_neighbor(dims.ndims());
            let g = CartGraph::build(&dims, &s, false);
            for (u, v) in g.edges() {
                prop_assert!(u < g.num_vertices());
                prop_assert!(v < g.num_vertices());
                prop_assert_ne!(u, v);
            }
        }
    }
}
