//! Node allocations: how many processes the scheduler placed on each node.
//!
//! The paper assumes the scheduler hands the application `N` compute nodes
//! with `n_i` processes on node `i` (Σ n_i = p).  Ranks are assigned to nodes
//! in blocks: node 0 owns ranks `0..n_0`, node 1 owns `n_0..n_0+n_1`, and so
//! on.  The mapping algorithms must respect this allocation — they only
//! reorder which *grid position* each rank owns, never which node a rank
//! lives on.

use crate::GridError;

/// The allocation of processes to compute nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeAllocation {
    sizes: Vec<usize>,
    /// Prefix sums of `sizes`, length `N + 1`: node `i` owns ranks
    /// `starts[i]..starts[i+1]`.
    starts: Vec<usize>,
}

impl NodeAllocation {
    /// A homogeneous allocation of `nodes` nodes with `procs_per_node`
    /// processes each (the common `p = N·n` case).
    pub fn homogeneous(nodes: usize, procs_per_node: usize) -> Self {
        Self::heterogeneous(vec![procs_per_node; nodes]).expect("homogeneous allocation")
    }

    /// A heterogeneous allocation with explicit per-node sizes `n_i`.
    pub fn heterogeneous(sizes: Vec<usize>) -> Result<Self, GridError> {
        if sizes.is_empty() || sizes.contains(&0) {
            return Err(GridError::ZeroDimension);
        }
        let mut starts = Vec::with_capacity(sizes.len() + 1);
        let mut acc = 0usize;
        starts.push(0);
        for &n in &sizes {
            acc += n;
            starts.push(acc);
        }
        Ok(NodeAllocation { sizes, starts })
    }

    /// Number of compute nodes `N`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.sizes.len()
    }

    /// Total number of processes `p = Σ n_i`.
    #[inline]
    pub fn total_processes(&self) -> usize {
        *self.starts.last().unwrap()
    }

    /// Number of processes on node `i`.
    #[inline]
    pub fn node_size(&self, node: usize) -> usize {
        self.sizes[node]
    }

    /// Per-node sizes as a slice.
    #[inline]
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Whether every node hosts the same number of processes.
    pub fn is_homogeneous(&self) -> bool {
        self.sizes.windows(2).all(|w| w[0] == w[1])
    }

    /// The node that owns rank `r` under the blocked scheduler allocation.
    #[inline]
    pub fn node_of_rank(&self, rank: usize) -> usize {
        debug_assert!(rank < self.total_processes());
        // partition_point returns the first node whose start exceeds `rank`.
        self.starts.partition_point(|&s| s <= rank) - 1
    }

    /// The contiguous rank range owned by node `i`.
    #[inline]
    pub fn ranks_of_node(&self, node: usize) -> std::ops::Range<usize> {
        self.starts[node]..self.starts[node + 1]
    }

    /// The first rank on the same node as `rank` (the node "leader").
    #[inline]
    pub fn node_leader(&self, rank: usize) -> usize {
        self.starts[self.node_of_rank(rank)]
    }

    /// Rank of `rank` within its node (0-based local index).
    #[inline]
    pub fn local_rank(&self, rank: usize) -> usize {
        rank - self.node_leader(rank)
    }

    /// Mean node size (used by Hyperplane for heterogeneous allocations).
    pub fn mean_size(&self) -> f64 {
        self.total_processes() as f64 / self.num_nodes() as f64
    }

    /// Minimum node size.
    pub fn min_size(&self) -> usize {
        *self.sizes.iter().min().unwrap()
    }

    /// Maximum node size.
    pub fn max_size(&self) -> usize {
        *self.sizes.iter().max().unwrap()
    }

    /// A representative node size used by algorithms that take a single
    /// parameter `n`: the exact size for homogeneous allocations, the
    /// (rounded) mean otherwise.
    pub fn representative_size(&self) -> usize {
        if self.is_homogeneous() {
            self.sizes[0]
        } else {
            self.mean_size().round().max(1.0) as usize
        }
    }

    /// Validates that the allocation covers exactly `p` processes.
    pub fn check_total(&self, p: usize) -> Result<(), GridError> {
        if self.total_processes() != p {
            Err(GridError::AllocationMismatch {
                required: p,
                provided: self.total_processes(),
            })
        } else {
            Ok(())
        }
    }
}

impl std::fmt::Display for NodeAllocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_homogeneous() {
            write!(f, "{} nodes x {} procs", self.num_nodes(), self.sizes[0])
        } else {
            write!(f, "{} nodes, sizes {:?}", self.num_nodes(), self.sizes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn homogeneous_basics() {
        let a = NodeAllocation::homogeneous(50, 48);
        assert_eq!(a.num_nodes(), 50);
        assert_eq!(a.total_processes(), 2400);
        assert!(a.is_homogeneous());
        assert_eq!(a.representative_size(), 48);
        assert_eq!(a.node_of_rank(0), 0);
        assert_eq!(a.node_of_rank(47), 0);
        assert_eq!(a.node_of_rank(48), 1);
        assert_eq!(a.node_of_rank(2399), 49);
        assert_eq!(a.ranks_of_node(1), 48..96);
        assert_eq!(a.local_rank(50), 2);
        assert_eq!(a.node_leader(50), 48);
    }

    #[test]
    fn heterogeneous_basics() {
        let a = NodeAllocation::heterogeneous(vec![3, 4, 2]).unwrap();
        assert_eq!(a.total_processes(), 9);
        assert!(!a.is_homogeneous());
        assert_eq!(a.node_of_rank(2), 0);
        assert_eq!(a.node_of_rank(3), 1);
        assert_eq!(a.node_of_rank(6), 1);
        assert_eq!(a.node_of_rank(7), 2);
        assert_eq!(a.min_size(), 2);
        assert_eq!(a.max_size(), 4);
        assert!((a.mean_size() - 3.0).abs() < 1e-12);
        assert_eq!(a.representative_size(), 3);
        assert_eq!(a.sizes(), &[3, 4, 2]);
    }

    #[test]
    fn rejects_empty_or_zero_sizes() {
        assert!(NodeAllocation::heterogeneous(vec![]).is_err());
        assert!(NodeAllocation::heterogeneous(vec![4, 0, 2]).is_err());
    }

    #[test]
    fn check_total_detects_mismatch() {
        let a = NodeAllocation::homogeneous(5, 4);
        assert!(a.check_total(20).is_ok());
        assert_eq!(
            a.check_total(21),
            Err(GridError::AllocationMismatch {
                required: 21,
                provided: 20
            })
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            NodeAllocation::homogeneous(4, 8).to_string(),
            "4 nodes x 8 procs"
        );
        assert!(NodeAllocation::heterogeneous(vec![1, 2])
            .unwrap()
            .to_string()
            .contains("sizes"));
    }

    proptest! {
        #[test]
        fn prop_node_of_rank_consistent_with_ranges(
            sizes in proptest::collection::vec(1usize..9, 1..12)
        ) {
            let a = NodeAllocation::heterogeneous(sizes).unwrap();
            for node in 0..a.num_nodes() {
                for r in a.ranks_of_node(node) {
                    prop_assert_eq!(a.node_of_rank(r), node);
                    prop_assert!(a.local_rank(r) < a.node_size(node));
                }
            }
            let total: usize = (0..a.num_nodes()).map(|i| a.node_size(i)).sum();
            prop_assert_eq!(total, a.total_processes());
        }
    }
}
