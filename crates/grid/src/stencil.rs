//! Stencil communication patterns (`k`-neighborhoods).
//!
//! A stencil is a list of relative coordinate offsets
//! `S = {R_0, …, R_{k-1}}`; every process communicates with the processes at
//! `coord + R_i` for each offset.  The paper studies three concrete stencils
//! (Fig. 2) which are provided as constructors, but all algorithms accept
//! arbitrary `k`-neighborhoods.

use crate::{Dims, GridError};

/// A relative offset vector `R = [R_0, …, R_{d-1}]`.
pub type Offset = Vec<i64>;

/// A `k`-neighborhood: the set of relative communication targets of every
/// process in the grid.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Stencil {
    ndims: usize,
    offsets: Vec<Offset>,
}

impl Stencil {
    /// Creates a stencil from explicit offsets.
    ///
    /// All offsets must have length `ndims`; the zero offset (self
    /// communication) and duplicate offsets are removed.
    pub fn new(ndims: usize, offsets: Vec<Offset>) -> Result<Self, GridError> {
        if ndims == 0 {
            return Err(GridError::EmptyDims);
        }
        for o in &offsets {
            if o.len() != ndims {
                return Err(GridError::DimensionMismatch {
                    expected: ndims,
                    found: o.len(),
                });
            }
        }
        let mut cleaned: Vec<Offset> = Vec::with_capacity(offsets.len());
        for o in offsets {
            if o.iter().all(|&x| x == 0) {
                continue;
            }
            if !cleaned.contains(&o) {
                cleaned.push(o);
            }
        }
        if cleaned.is_empty() {
            return Err(GridError::EmptyStencil);
        }
        Ok(Stencil {
            ndims,
            offsets: cleaned,
        })
    }

    /// Creates a stencil from a flattened offset list, mirroring the
    /// `MPIX_Cart_stencil_comm` interface of the paper (Listing 1):
    /// `flat` has length `k * ndims`, holding `k` offsets back to back.
    pub fn from_flat(ndims: usize, flat: &[i64]) -> Result<Self, GridError> {
        if ndims == 0 || !flat.len().is_multiple_of(ndims) {
            return Err(GridError::DimensionMismatch {
                expected: ndims,
                found: flat.len(),
            });
        }
        let offsets = flat.chunks(ndims).map(|c| c.to_vec()).collect();
        Self::new(ndims, offsets)
    }

    /// The *nearest neighbor* stencil (Fig. 2a):
    /// `S = {±1_i | 0 ≤ i < d}` — one neighbor in each direction of each
    /// dimension.  This is the stencil implied by MPI Cartesian topologies.
    pub fn nearest_neighbor(ndims: usize) -> Self {
        let mut offsets = Vec::with_capacity(2 * ndims);
        for i in 0..ndims {
            let mut plus = vec![0i64; ndims];
            plus[i] = 1;
            let mut minus = vec![0i64; ndims];
            minus[i] = -1;
            offsets.push(plus);
            offsets.push(minus);
        }
        Stencil { ndims, offsets }
    }

    /// The *component* stencil (Fig. 2b):
    /// `S = {±1_i | 0 ≤ i < d-1}` — nearest neighbors in every dimension
    /// except the last one.  For two dimensions this is a one-dimensional
    /// chain along dimension 0.
    pub fn component(ndims: usize) -> Self {
        assert!(
            ndims >= 2,
            "component stencil requires at least 2 dimensions"
        );
        let mut offsets = Vec::with_capacity(2 * (ndims - 1));
        for i in 0..ndims - 1 {
            let mut plus = vec![0i64; ndims];
            plus[i] = 1;
            let mut minus = vec![0i64; ndims];
            minus[i] = -1;
            offsets.push(plus);
            offsets.push(minus);
        }
        Stencil { ndims, offsets }
    }

    /// A one-dimensional component stencil communicating along an arbitrary
    /// dimension `dim`, used e.g. by the NP-hardness gadget of Theorem IV.3
    /// (`S = {−1_1, 1_1}`).
    pub fn component_along(ndims: usize, dim: usize) -> Self {
        assert!(dim < ndims);
        let mut plus = vec![0i64; ndims];
        plus[dim] = 1;
        let mut minus = vec![0i64; ndims];
        minus[dim] = -1;
        Stencil {
            ndims,
            offsets: vec![plus, minus],
        }
    }

    /// The *nearest neighbor with hops* stencil (Fig. 2c):
    /// `S = {±1_i | 0 ≤ i < d} ∪ {±a·1_0 | a ∈ {2, 3}}` — nearest neighbors
    /// plus two- and three-hop neighbors along the first dimension.
    pub fn nearest_neighbor_with_hops(ndims: usize) -> Self {
        let mut s = Self::nearest_neighbor(ndims);
        for a in [2i64, 3i64] {
            let mut plus = vec![0i64; ndims];
            plus[0] = a;
            let mut minus = vec![0i64; ndims];
            minus[0] = -a;
            s.offsets.push(plus);
            s.offsets.push(minus);
        }
        s
    }

    /// Number of dimensions of the stencil offsets.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.ndims
    }

    /// Number of neighbors `k` described by the stencil.
    #[inline]
    pub fn k(&self) -> usize {
        self.offsets.len()
    }

    /// The offsets of the stencil.
    #[inline]
    pub fn offsets(&self) -> &[Offset] {
        &self.offsets
    }

    /// Returns the flattened offset list (`k * ndims` entries), the inverse of
    /// [`Stencil::from_flat`].
    pub fn to_flat(&self) -> Vec<i64> {
        self.offsets.iter().flatten().copied().collect()
    }

    /// Checks whether the stencil is symmetric, i.e. for every offset `R` the
    /// stencil also contains `-R`.  All paper stencils are symmetric.
    pub fn is_symmetric(&self) -> bool {
        self.offsets.iter().all(|o| {
            let neg: Offset = o.iter().map(|&x| -x).collect();
            self.offsets.contains(&neg)
        })
    }

    /// Validates that the stencil dimensionality matches a grid.
    pub fn check_dims(&self, dims: &Dims) -> Result<(), GridError> {
        if dims.ndims() != self.ndims {
            Err(GridError::DimensionMismatch {
                expected: dims.ndims(),
                found: self.ndims,
            })
        } else {
            Ok(())
        }
    }

    /// The value of Eq. (2) of the paper for every dimension `j`:
    /// `Σ_i cos²(angle(R_i, e_j)) = Σ_i R_{i,j}² / ‖R_i‖²`.
    ///
    /// Small values mean the stencil communicates little along dimension `j`
    /// (the dimension is "orthogonal" to the stencil) which makes `j` a good
    /// candidate for a hyperplane cut.
    pub fn cos2_sums(&self) -> Vec<f64> {
        let mut sums = Vec::new();
        self.cos2_sums_into(&mut sums);
        sums
    }

    /// Allocation-free variant of [`Stencil::cos2_sums`]: clears `out` and
    /// fills it with the per-dimension sums, reusing its capacity.
    pub fn cos2_sums_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.ndims, 0.0);
        for o in &self.offsets {
            let norm2: f64 = o.iter().map(|&x| (x * x) as f64).sum();
            if norm2 == 0.0 {
                continue;
            }
            for j in 0..self.ndims {
                out[j] += (o[j] * o[j]) as f64 / norm2;
            }
        }
    }

    /// The amount of communication across each dimension `j` used by the k-d
    /// tree algorithm: `f_j = |{R ∈ S : R_j ≠ 0}|`.
    pub fn comm_across(&self) -> Vec<usize> {
        let mut f = Vec::new();
        self.comm_across_into(&mut f);
        f
    }

    /// Allocation-free variant of [`Stencil::comm_across`]: clears `out` and
    /// fills it with the per-dimension counts, reusing its capacity.
    pub fn comm_across_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.resize(self.ndims, 0);
        for o in &self.offsets {
            for j in 0..self.ndims {
                if o[j] != 0 {
                    out[j] += 1;
                }
            }
        }
    }

    /// The extension `e_i = max R_i − min R_i` of the stencil along every
    /// dimension (Section V-C), i.e. the side lengths of the bounding box.
    pub fn extents(&self) -> Vec<u64> {
        let mut ext = vec![0u64; self.ndims];
        for j in 0..self.ndims {
            let max = self.offsets.iter().map(|o| o[j]).max().unwrap_or(0);
            let min = self.offsets.iter().map(|o| o[j]).min().unwrap_or(0);
            ext[j] = (max - min) as u64;
        }
        ext
    }

    /// Maximum absolute offset component, a measure of the stencil radius.
    pub fn radius(&self) -> u64 {
        self.offsets
            .iter()
            .flat_map(|o| o.iter().map(|x| x.unsigned_abs()))
            .max()
            .unwrap_or(0)
    }

    /// The dimensions sorted by preference for a hyperplane cut: ascending
    /// value of Eq. (2), ties broken by descending dimension size.
    pub fn preferred_cut_order(&self, dims: &Dims) -> Vec<usize> {
        let sums = self.cos2_sums();
        let mut order: Vec<usize> = (0..self.ndims).collect();
        order.sort_by(|&a, &b| {
            sums[a]
                .partial_cmp(&sums[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| dims.size(b).cmp(&dims.size(a)))
                .then_with(|| a.cmp(&b))
        });
        order
    }
}

impl std::fmt::Display for Stencil {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, o) in self.offsets.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{o:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nearest_neighbor_has_2d_offsets() {
        let s = Stencil::nearest_neighbor(2);
        assert_eq!(s.k(), 4);
        assert!(s.offsets().contains(&vec![1, 0]));
        assert!(s.offsets().contains(&vec![-1, 0]));
        assert!(s.offsets().contains(&vec![0, 1]));
        assert!(s.offsets().contains(&vec![0, -1]));
        let s3 = Stencil::nearest_neighbor(3);
        assert_eq!(s3.k(), 6);
        assert!(s3.is_symmetric());
    }

    #[test]
    fn component_excludes_last_dimension() {
        let s = Stencil::component(2);
        assert_eq!(s.k(), 2);
        assert!(s.offsets().contains(&vec![1, 0]));
        assert!(s.offsets().contains(&vec![-1, 0]));
        let s3 = Stencil::component(3);
        assert_eq!(s3.k(), 4);
        assert!(s3.offsets().iter().all(|o| o[2] == 0));
    }

    #[test]
    fn component_along_selects_dimension() {
        let s = Stencil::component_along(2, 1);
        assert_eq!(s.k(), 2);
        assert!(s.offsets().contains(&vec![0, 1]));
        assert!(s.offsets().contains(&vec![0, -1]));
    }

    #[test]
    fn hops_adds_two_and_three_hops_along_dim0() {
        let s = Stencil::nearest_neighbor_with_hops(2);
        assert_eq!(s.k(), 8);
        for a in [2i64, 3, -2, -3] {
            assert!(s.offsets().contains(&vec![a, 0]));
        }
        assert!(s.is_symmetric());
    }

    #[test]
    fn new_rejects_bad_input_and_dedups() {
        assert!(Stencil::new(0, vec![]).is_err());
        assert!(Stencil::new(2, vec![vec![1]]).is_err());
        // only the zero offset -> empty stencil error
        assert_eq!(
            Stencil::new(2, vec![vec![0, 0]]),
            Err(GridError::EmptyStencil)
        );
        let s = Stencil::new(2, vec![vec![1, 0], vec![1, 0], vec![0, 0], vec![0, 1]]).unwrap();
        assert_eq!(s.k(), 2);
    }

    #[test]
    fn flat_roundtrip() {
        let s = Stencil::nearest_neighbor_with_hops(2);
        let flat = s.to_flat();
        assert_eq!(flat.len(), s.k() * 2);
        let s2 = Stencil::from_flat(2, &flat).unwrap();
        assert_eq!(s, s2);
        assert!(Stencil::from_flat(2, &[1, 0, 1]).is_err());
        assert!(Stencil::from_flat(0, &[]).is_err());
    }

    #[test]
    fn cos2_sums_nearest_neighbor_is_uniform() {
        let s = Stencil::nearest_neighbor(2);
        let sums = s.cos2_sums();
        assert!((sums[0] - 2.0).abs() < 1e-12);
        assert!((sums[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cos2_sums_component_prefers_last_dim_for_cut() {
        let s = Stencil::component(2); // communicates along dim 0 only
        let sums = s.cos2_sums();
        assert!(sums[0] > sums[1]);
        assert_eq!(sums[1], 0.0);
        // the preferred cut dimension is dim 1 (orthogonal to communication)
        let dims = Dims::from_slice(&[6, 6]);
        assert_eq!(s.preferred_cut_order(&dims)[0], 1);
    }

    #[test]
    fn preferred_cut_order_ties_broken_by_size() {
        let s = Stencil::nearest_neighbor(2);
        let dims = Dims::from_slice(&[5, 4]);
        // equal cos2 sums -> larger dimension first
        assert_eq!(s.preferred_cut_order(&dims), vec![0, 1]);
        let dims = Dims::from_slice(&[4, 9]);
        assert_eq!(s.preferred_cut_order(&dims), vec![1, 0]);
    }

    #[test]
    fn comm_across_counts_nonzero_components() {
        let s = Stencil::nearest_neighbor_with_hops(2);
        // dim 0: ±1, ±2, ±3 -> 6 offsets; dim 1: ±1 -> 2 offsets
        assert_eq!(s.comm_across(), vec![6, 2]);
        let c = Stencil::component(2);
        assert_eq!(c.comm_across(), vec![2, 0]);
    }

    #[test]
    fn extents_and_radius() {
        let s = Stencil::nearest_neighbor(2);
        assert_eq!(s.extents(), vec![2, 2]);
        assert_eq!(s.radius(), 1);
        let h = Stencil::nearest_neighbor_with_hops(2);
        assert_eq!(h.extents(), vec![6, 2]);
        assert_eq!(h.radius(), 3);
        let c = Stencil::component(2);
        assert_eq!(c.extents(), vec![2, 0]);
    }

    #[test]
    fn check_dims_validates_dimensionality() {
        let s = Stencil::nearest_neighbor(2);
        assert!(s.check_dims(&Dims::from_slice(&[4, 4])).is_ok());
        assert!(s.check_dims(&Dims::from_slice(&[4, 4, 4])).is_err());
    }

    #[test]
    fn display_lists_offsets() {
        let s = Stencil::component(2);
        let txt = s.to_string();
        assert!(txt.contains("[1, 0]"));
        assert!(txt.contains("[-1, 0]"));
    }

    proptest! {
        #[test]
        fn prop_paper_stencils_are_symmetric(d in 1usize..5) {
            prop_assert!(Stencil::nearest_neighbor(d).is_symmetric());
            prop_assert!(Stencil::nearest_neighbor_with_hops(d).is_symmetric());
            if d >= 2 {
                prop_assert!(Stencil::component(d).is_symmetric());
            }
        }

        #[test]
        fn prop_cos2_sums_total_equals_k(d in 1usize..5) {
            // Each offset contributes exactly 1 across all dimensions
            // (sum of cos^2 over an orthonormal basis is 1).
            let s = Stencil::nearest_neighbor_with_hops(d);
            let total: f64 = s.cos2_sums().iter().sum();
            prop_assert!((total - s.k() as f64).abs() < 1e-9);
        }

        #[test]
        fn prop_flat_roundtrip_random(
            d in 1usize..4,
            raw in proptest::collection::vec(-3i64..4, 1..24)
        ) {
            let usable = raw.len() - raw.len() % d;
            if usable >= d {
                let flat = &raw[..usable];
                if let Ok(s) = Stencil::from_flat(d, flat) {
                    let s2 = Stencil::from_flat(d, &s.to_flat()).unwrap();
                    prop_assert_eq!(s, s2);
                }
            }
        }
    }
}
