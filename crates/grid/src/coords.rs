//! Row-major rank/coordinate conversions.
//!
//! Processes of a Cartesian grid are identified either by their *rank*
//! `0 ≤ r < p` or by their coordinate vector `[r_0, …, r_{d-1}]`.  Following
//! the paper (and the MPI standard), ranks are assigned to coordinates in
//! row-major order, i.e. the **last** dimension varies fastest.

/// A grid coordinate `[r_0, …, r_{d-1}]` with `0 ≤ r_i < d_i`.
pub type Coord = Vec<usize>;

/// Converts a row-major rank into a coordinate for the given dimension sizes.
///
/// # Panics
///
/// Panics in debug builds if `rank` is out of range.
#[inline]
pub fn rank_to_coord(rank: usize, sizes: &[usize]) -> Coord {
    debug_assert!(!sizes.is_empty());
    debug_assert!(rank < sizes.iter().product::<usize>(), "rank out of range");
    let mut coord = vec![0usize; sizes.len()];
    let mut rem = rank;
    for i in (0..sizes.len()).rev() {
        coord[i] = rem % sizes[i];
        rem /= sizes[i];
    }
    coord
}

/// Converts a coordinate into its row-major rank for the given dimension
/// sizes.
///
/// # Panics
///
/// Panics in debug builds if the coordinate is out of range.
#[inline]
pub fn coord_to_rank(coord: &[usize], sizes: &[usize]) -> usize {
    debug_assert_eq!(coord.len(), sizes.len());
    let mut rank = 0usize;
    for i in 0..sizes.len() {
        debug_assert!(coord[i] < sizes[i], "coordinate out of range");
        rank = rank * sizes[i] + coord[i];
    }
    rank
}

/// Writes the coordinate of `rank` into a preallocated buffer, avoiding an
/// allocation.  Useful in hot per-rank loops.
#[inline]
pub fn rank_to_coord_into(rank: usize, sizes: &[usize], out: &mut [usize]) {
    debug_assert_eq!(out.len(), sizes.len());
    let mut rem = rank;
    for i in (0..sizes.len()).rev() {
        out[i] = rem % sizes[i];
        rem /= sizes[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn last_dimension_varies_fastest() {
        let sizes = [3, 4];
        assert_eq!(rank_to_coord(0, &sizes), vec![0, 0]);
        assert_eq!(rank_to_coord(1, &sizes), vec![0, 1]);
        assert_eq!(rank_to_coord(3, &sizes), vec![0, 3]);
        assert_eq!(rank_to_coord(4, &sizes), vec![1, 0]);
        assert_eq!(rank_to_coord(11, &sizes), vec![2, 3]);
    }

    #[test]
    fn coord_to_rank_matches_manual_formula() {
        let sizes = [5, 4, 3];
        // rank = r0 * (4*3) + r1 * 3 + r2
        assert_eq!(coord_to_rank(&[0, 0, 0], &sizes), 0);
        assert_eq!(coord_to_rank(&[1, 0, 0], &sizes), 12);
        assert_eq!(coord_to_rank(&[1, 2, 1], &sizes), 19);
        assert_eq!(coord_to_rank(&[4, 3, 2], &sizes), 59);
    }

    #[test]
    fn into_variant_matches_allocating_variant() {
        let sizes = [4, 3, 2];
        let mut buf = [0usize; 3];
        for r in 0..24 {
            rank_to_coord_into(r, &sizes, &mut buf);
            assert_eq!(buf.to_vec(), rank_to_coord(r, &sizes));
        }
    }

    #[test]
    fn one_dimensional_identity() {
        let sizes = [17];
        for r in 0..17 {
            assert_eq!(rank_to_coord(r, &sizes), vec![r]);
            assert_eq!(coord_to_rank(&[r], &sizes), r);
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(sizes in proptest::collection::vec(1usize..9, 1..5), pick in 0usize..100_000) {
            let p: usize = sizes.iter().product();
            let r = pick % p;
            let c = rank_to_coord(r, &sizes);
            prop_assert_eq!(coord_to_rank(&c, &sizes), r);
        }

        #[test]
        fn prop_lexicographic_order(sizes in proptest::collection::vec(1usize..7, 1..4), pick in 0usize..50_000) {
            // Ranks are ordered lexicographically by coordinate.
            let p: usize = sizes.iter().product();
            if p >= 2 {
                let r = pick % (p - 1);
                let a = rank_to_coord(r, &sizes);
                let b = rank_to_coord(r + 1, &sizes);
                prop_assert!(a < b, "coordinates must be lexicographically increasing");
            }
        }
    }
}
