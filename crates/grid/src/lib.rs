//! # stencil-grid
//!
//! Cartesian process grids, stencil communication patterns and the induced
//! communication graphs, as defined in Section II of
//! *"Efficient Process-to-Node Mapping Algorithms for Stencil Computations"*
//! (Hunold et al., IEEE CLUSTER 2020).
//!
//! The crate provides the vocabulary types shared by every other crate in the
//! workspace:
//!
//! * [`Dims`] — the dimension sizes `D = [d_0, …, d_{d-1}]` of a Cartesian
//!   process grid together with row-major rank/coordinate conversions,
//! * [`Stencil`] — a `k`-neighborhood given as relative offset vectors,
//!   including constructors for the three stencils used throughout the paper
//!   (nearest neighbor, component, nearest neighbor with hops),
//! * [`CartGraph`] — the Cartesian communication graph induced by a grid and
//!   a stencil (optionally with periodic boundaries),
//! * [`NodeAllocation`] — the `N × n` (or heterogeneous) allocation of
//!   processes to compute nodes handed to the application by the scheduler,
//! * [`dims_create()`] — an `MPI_Dims_create`-style balanced factorisation used
//!   to build the grids of the experimental evaluation.
//!
//! # Example
//!
//! ```
//! use stencil_grid::{Dims, Stencil, CartGraph, NodeAllocation};
//!
//! // The headline instance of the paper: a 50 x 48 grid on 50 nodes with
//! // 48 processes each, communicating in a nearest-neighbor pattern.
//! let dims = Dims::new(vec![50, 48]).unwrap();
//! let stencil = Stencil::nearest_neighbor(2);
//! let graph = CartGraph::build(&dims, &stencil, false);
//! let alloc = NodeAllocation::homogeneous(50, 48);
//!
//! assert_eq!(dims.volume(), 2400);
//! assert_eq!(alloc.total_processes(), 2400);
//! assert_eq!(graph.num_vertices(), 2400);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod alloc;
pub mod coords;
pub mod dims;
pub mod dims_create;
pub mod graph;
pub mod stencil;

pub use alloc::NodeAllocation;
pub use coords::{coord_to_rank, rank_to_coord, Coord};
pub use dims::Dims;
pub use dims_create::{dims_create, prime_factors};
pub use graph::CartGraph;
pub use stencil::{Offset, Stencil};

/// Crate-wide error type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// A dimension size of zero was supplied.
    ZeroDimension,
    /// An empty dimension list was supplied.
    EmptyDims,
    /// The stencil dimensionality does not match the grid dimensionality.
    DimensionMismatch {
        /// Dimensionality expected by the grid.
        expected: usize,
        /// Dimensionality found in the offending object.
        found: usize,
    },
    /// A node allocation does not cover the requested number of processes.
    AllocationMismatch {
        /// Number of grid cells (processes) required.
        required: usize,
        /// Number of processes provided by the allocation.
        provided: usize,
    },
    /// A stencil without any offsets was supplied where a non-empty one is
    /// required.
    EmptyStencil,
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::ZeroDimension => write!(f, "dimension sizes must be positive"),
            GridError::EmptyDims => write!(f, "at least one dimension is required"),
            GridError::DimensionMismatch { expected, found } => write!(
                f,
                "dimension mismatch: expected {expected} dimensions, found {found}"
            ),
            GridError::AllocationMismatch { required, provided } => write!(
                f,
                "allocation provides {provided} processes but the grid has {required} cells"
            ),
            GridError::EmptyStencil => write!(f, "stencil must contain at least one offset"),
        }
    }
}

impl std::error::Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = GridError::DimensionMismatch {
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("expected 2"));
        let e = GridError::AllocationMismatch {
            required: 100,
            provided: 90,
        };
        assert!(e.to_string().contains("90"));
        assert!(GridError::ZeroDimension.to_string().contains("positive"));
        assert!(GridError::EmptyDims.to_string().contains("dimension"));
        assert!(GridError::EmptyStencil.to_string().contains("offset"));
    }
}
