//! Plain-text / markdown rendering of experiment results.

/// Formats a duration in seconds with a human-friendly unit (µs / ms / s),
/// matching the magnitude conventions of the paper's tables.
pub fn format_seconds(seconds: f64) -> String {
    if !seconds.is_finite() {
        return "n/a".to_string();
    }
    if seconds < 1e-3 {
        format!("{:.1} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.3} s", seconds)
    }
}

/// Renders a markdown table from a header row and data rows.
pub fn format_markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    let mut sep = String::from("|");
    for &w in &widths {
        sep.push_str(&format!("{:-<1$}|", "", w + 2));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Renders a simple ASCII bar for quick terminal visualisation (used by the
/// figure binaries to sketch the speedup plots).
pub fn ascii_bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || !value.is_finite() {
        return String::new();
    }
    let filled = ((value / max) * width as f64).round().clamp(0.0, width as f64) as usize;
    "#".repeat(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_seconds_selects_units() {
        assert_eq!(format_seconds(0.0000171), "17.1 µs");
        assert_eq!(format_seconds(0.0641), "64.100 ms");
        assert_eq!(format_seconds(2.5), "2.500 s");
        assert_eq!(format_seconds(f64::NAN), "n/a");
    }

    #[test]
    fn markdown_table_aligns_columns() {
        let table = format_markdown_table(
            &["alg", "Jsum"],
            &[
                vec!["Hyperplane".to_string(), "1328".to_string()],
                vec!["k-d Tree".to_string(), "1732".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("alg"));
        assert!(lines[1].starts_with("|---"));
        assert!(lines[2].contains("Hyperplane"));
        // all lines have equal length
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn ascii_bar_scales() {
        assert_eq!(ascii_bar(5.0, 10.0, 10), "#####");
        assert_eq!(ascii_bar(10.0, 10.0, 4), "####");
        assert_eq!(ascii_bar(0.0, 10.0, 4), "");
        assert_eq!(ascii_bar(1.0, 0.0, 4), "");
    }
}
